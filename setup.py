"""Compatibility shim for environments without the ``wheel`` package.

``pip install -e .`` requires PEP 660 wheel builds; fully-offline
environments can instead run ``python setup.py develop`` (setuptools-only)
or drop ``src/`` onto a ``.pth`` file. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
