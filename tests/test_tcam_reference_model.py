"""Differential test: the production TCAM vs a deliberately naive
reference implementation (explicit machine objects, no bitboards)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TCAM
from repro.core.state_machines import BiasedMachine

MASK64 = (1 << 64) - 1


class ReferenceFilter:
    """One filter, spelled out bit by bit."""

    def __init__(self):
        self.machines = [BiasedMachine(2) for _ in range(64)]
        self.previous = 0
        self.valid = False

    def changing_mask(self):
        mask = 0
        for bit, machine in enumerate(self.machines):
            if machine.is_changing:
                mask |= 1 << bit
        return mask

    def mismatch_mask(self, value):
        return ~self.changing_mask() & (value ^ self.previous) & MASK64

    def install(self, value):
        self.machines = [BiasedMachine(2) for _ in range(64)]
        self.previous = value
        self.valid = True

    def update(self, value):
        diff = value ^ self.previous
        for bit, machine in enumerate(self.machines):
            machine.observe(bool(diff >> bit & 1))
        self.previous = value


class ReferenceTCAM:
    """Linear-search nearest-neighbour with the same policies."""

    def __init__(self, entries, threshold):
        self.entries = [ReferenceFilter() for _ in range(entries)]
        self.threshold = threshold
        self.lru = list(range(entries))

    def touch(self, index):
        self.lru.remove(index)
        self.lru.insert(0, index)

    def lookup(self, value):
        value &= MASK64
        closest, best_count = -1, 65
        for index, entry in enumerate(self.entries):
            if not entry.valid:
                continue
            count = entry.mismatch_mask(value).bit_count()
            if count < best_count:
                closest, best_count = index, count
                if count == 0:
                    break
        if closest >= 0 and best_count == 0:
            self.entries[closest].update(value)
            self.touch(closest)
            return False, closest, 0
        if closest < 0:
            index = self.lru[-1]
            self.entries[index].install(value)
            self.touch(index)
            return False, index, 0
        if best_count <= self.threshold:
            self.entries[closest].update(value)
            self.touch(closest)
            return True, closest, best_count
        victim = next((i for i in reversed(self.lru)
                       if not self.entries[i].valid), self.lru[-1])
        self.entries[victim].install(value)
        self.touch(victim)
        return True, closest, best_count


# value streams with reuse (pure random never matches anything)
def streams():
    base_values = st.lists(st.integers(0, MASK64), min_size=2, max_size=5)
    picks = st.lists(st.tuples(st.integers(0, 4),
                               st.integers(0, 15)),
                     min_size=1, max_size=50)
    return st.tuples(base_values, picks)


@settings(max_examples=40, deadline=None)
@given(streams())
def test_production_tcam_matches_reference(data):
    bases, picks = data
    production = TCAM(entries=4, loosen_threshold=4)
    reference = ReferenceTCAM(entries=4, threshold=4)
    for which, jitter in picks:
        value = (bases[which % len(bases)] ^ jitter) & MASK64
        result = production.lookup(value)
        triggered, closest, count = reference.lookup(value)
        assert result.triggered == triggered
        assert result.closest_index == closest
        assert result.mismatch_count == count


@settings(max_examples=30, deadline=None)
@given(streams())
def test_internal_state_tracks_reference(data):
    bases, picks = data
    production = TCAM(entries=3, loosen_threshold=4)
    reference = ReferenceTCAM(entries=3, threshold=4)
    for which, jitter in picks:
        value = (bases[which % len(bases)] ^ jitter) & MASK64
        production.lookup(value)
        reference.lookup(value)
    for prod, ref in zip(production.entries, reference.entries):
        assert prod.valid == ref.valid
        if prod.valid:
            assert prod.previous == ref.previous
            assert prod.changing_mask == ref.changing_mask()
