"""Configuration validation tests."""

import pytest

from repro.config import (FaultHoundConfig, HardwareConfig, PBFSConfig,
                          VALUE_BITS, VALUE_MASK, table2_rows)
from repro.errors import ConfigurationError


def test_value_constants():
    assert VALUE_BITS == 64
    assert VALUE_MASK == (1 << 64) - 1


class TestFaultHoundConfig:
    def test_paper_defaults(self):
        cfg = FaultHoundConfig()
        assert cfg.tcam_entries == 32
        assert cfg.loosen_threshold == 4
        assert cfg.second_level_states == 8
        assert cfg.squash_states == 8
        assert cfg.clustering and cfg.second_level
        assert cfg.squash_detection and cfg.lsq_check

    @pytest.mark.parametrize("kwargs", [
        {"tcam_entries": 0},
        {"loosen_threshold": -1},
        {"loosen_threshold": 65},
        {"first_level_changing_states": 0},
        {"second_level_states": 1},
        {"squash_states": 0},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultHoundConfig(**kwargs)


class TestPBFSConfig:
    def test_paper_defaults(self):
        cfg = PBFSConfig()
        assert cfg.table_entries == 2048
        assert not cfg.biased

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            PBFSConfig(table_entries=0)
        with pytest.raises(ConfigurationError):
            PBFSConfig(clear_interval=0)


class TestHardwareConfig:
    def test_table2_defaults(self):
        hw = HardwareConfig()
        assert hw.issue_queue_size == 40
        assert hw.rob_size == 250
        assert hw.lsq_size == 64
        assert hw.delay_buffer_size == 7
        assert hw.smt_contexts == 2

    def test_needs_enough_physical_registers(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(phys_regs=64, smt_contexts=2)

    def test_rejects_nonpositive_widths(self):
        with pytest.raises(ConfigurationError):
            HardwareConfig(fetch_width=0)
        with pytest.raises(ConfigurationError):
            HardwareConfig(delay_buffer_size=-1)

    def test_table2_rows_render(self):
        rows = table2_rows()
        assert rows["Issue Queue size"] == "40"
        assert "TCAM" in rows["FaultHound filters"]
        assert "2MB" in rows["Private L2"]
