"""Hypothesis property tests over the screening units as black boxes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultHoundConfig, PBFSConfig
from repro.core import (CheckAction, CheckKind, FaultHoundUnit, PBFSUnit)

MASK64 = (1 << 64) - 1
values = st.integers(min_value=0, max_value=MASK64)
pcs = st.integers(min_value=0, max_value=1 << 20)
kinds = st.sampled_from(list(CheckKind))

check_stream = st.lists(st.tuples(kinds, values, pcs),
                        min_size=1, max_size=60)


@settings(max_examples=40, deadline=None)
@given(check_stream)
def test_faulthound_actions_always_valid(stream):
    """Whatever the stream, the unit returns a legal completion action and
    keeps its counters consistent."""
    unit = FaultHoundUnit()
    for kind, value, pc in stream:
        result = unit.check_at_complete(kind, value, pc)
        assert result.action in (CheckAction.NONE, CheckAction.SUPPRESSED,
                                 CheckAction.REPLAY, CheckAction.SQUASH)
        assert result.kind is kind
    assert unit.checks == len(stream)
    assert sum(unit.action_counts.values()) == len(stream)


@settings(max_examples=40, deadline=None)
@given(check_stream)
def test_faulthound_commit_actions_valid(stream):
    unit = FaultHoundUnit()
    for kind, value, pc in stream:
        result = unit.check_at_commit(kind, value, pc)
        assert result.action in (CheckAction.NONE, CheckAction.SUPPRESSED,
                                 CheckAction.SINGLETON)


@settings(max_examples=30, deadline=None)
@given(check_stream)
def test_faulthound_repeated_value_stops_triggering(stream):
    """After any history, checking the same value at the same pc twice in
    a row cannot trigger the second time (the lookup installs/loosens it)."""
    unit = FaultHoundUnit()
    for kind, value, pc in stream:
        unit.check_at_complete(kind, value, pc)
        repeat = unit.check_at_complete(kind, value, pc)
        assert not repeat.triggered


@settings(max_examples=30, deadline=None)
@given(check_stream)
def test_replaying_mode_never_acts(stream):
    unit = FaultHoundUnit()
    unit.replaying = True
    for kind, value, pc in stream:
        assert unit.check_at_complete(kind, value, pc).action \
            is CheckAction.NONE
        assert unit.check_at_commit(kind, value, pc).action \
            is CheckAction.NONE


@settings(max_examples=30, deadline=None)
@given(check_stream)
def test_pbfs_only_squashes_or_passes(stream):
    unit = PBFSUnit(PBFSConfig(biased=True))
    for kind, value, pc in stream:
        action = unit.check_at_complete(kind, value, pc).action
        assert action in (CheckAction.NONE, CheckAction.SQUASH)


@settings(max_examples=30, deadline=None)
@given(check_stream)
def test_pbfs_sticky_same_pc_triggers_at_most_once_per_bit(stream):
    """For a fixed pc and kind, the sticky table cannot trigger more times
    than there are bit positions (each trigger saturates >= 1 counter and
    no clear happens within the stream)."""
    unit = PBFSUnit(PBFSConfig(clear_interval=10**9))
    squashes = 0
    for _, value, _ in stream:
        result = unit.check_at_complete(CheckKind.LOAD_ADDR, value, pc=7)
        squashes += result.action is CheckAction.SQUASH
    assert squashes <= 64


@settings(max_examples=25, deadline=None)
@given(check_stream, check_stream)
def test_units_are_independent_instances(stream_a, stream_b):
    """Two units never share state (regression guard against class-level
    mutable defaults)."""
    a = FaultHoundUnit()
    b = FaultHoundUnit()
    for kind, value, pc in stream_a:
        a.check_at_complete(kind, value, pc)
    assert b.checks == 0
    assert b.addresses.tcam.valid_entries == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(values, min_size=2, max_size=40))
def test_no_clustering_table_same_pc_behaviour(stream):
    """The no-clustering ablation's PC-indexed table must behave like one
    shared filter per pc: deterministic and trigger-consistent."""
    cfg = FaultHoundConfig(clustering=False, second_level=False,
                           squash_detection=False)
    a = FaultHoundUnit(cfg)
    b = FaultHoundUnit(cfg)
    for value in stream:
        ra = a.check_at_complete(CheckKind.STORE_VALUE, value, pc=3)
        rb = b.check_at_complete(CheckKind.STORE_VALUE, value, pc=3)
        assert ra.action == rb.action
