"""Fork determinism: the tandem classifier's central assumption.

The classifier deep-copies a warmed core and compares the copy (with a
fault) against the original (without). That is only sound if a fork with
NO fault behaves *identically* to its parent — same cycles, same commits,
same architectural state — from any starting point.
"""

import copy

import pytest

from repro.core import FaultHoundUnit, PBFSUnit
from repro.config import PBFSConfig
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs


def snapshot(core):
    return (core.stats.committed, core.stats.cycles,
            core.arch_snapshot(),
            core.stats.replay_events, core.stats.rollback_events)


@pytest.mark.parametrize("scheme", [None, "fh", "pbfs"])
@pytest.mark.parametrize("warm", [150, 600])
def test_fault_free_fork_is_identical(scheme, warm):
    unit = {"fh": FaultHoundUnit, None: lambda: None,
            "pbfs": lambda: PBFSUnit(PBFSConfig(biased=True))}[scheme]()
    programs = build_smt_programs(PROFILES["astar"], 4000)
    core = PipelineCore(programs, screening=unit)
    core.run_until_commits(warm)

    fork = copy.deepcopy(core)
    for _ in range(1200):
        if core.all_halted:
            break
        core.step()
        fork.step()
        assert core.stats.committed == fork.stats.committed
    assert snapshot(core) == snapshot(fork)


def test_fork_divergence_only_after_injection():
    programs = build_smt_programs(PROFILES["bzip2"], 4000)
    core = PipelineCore(programs, screening=FaultHoundUnit())
    core.run_until_commits(300)
    fork = copy.deepcopy(core)

    # identical for a while...
    for _ in range(200):
        core.step()
        fork.step()
    assert core.arch_snapshot() == fork.arch_snapshot()

    # ...then corrupt only the fork
    victim = fork.threads[0].committed_rat.get(4)
    fork.inject_prf_bit(victim, 13)
    assert core.prf.read(victim) != fork.prf.read(victim)
    # the parent must be untouched by the fork's fault
    parent_value = core.prf.read(victim)
    for _ in range(100):
        core.step()
    # (the parent may legitimately reuse the register; just confirm the
    # injection itself did not alias into the parent's PRF object)
    assert core.prf is not fork.prf
    assert core.threads[0].memory is not fork.threads[0].memory
