"""Assembler unit tests."""

import pytest

from repro.errors import AssemblyError
from repro.isa import Opcode, assemble
from repro.isa.assembler import disassemble


def test_assemble_basic_alu():
    prog = assemble("""
        movi r1, 5
        addi r2, r1, 3
        add  r3, r1, r2
        halt
    """)
    assert len(prog) == 4
    assert prog.instructions[0].opcode is Opcode.MOVI
    assert prog.instructions[2].rd == 3
    assert prog.instructions[2].rs2 == 2


def test_assemble_labels_resolve_forward_and_backward():
    prog = assemble("""
        top:
        addi r1, r1, 1
        beq  r1, r2, done
        jmp  top
        done:
        halt
    """)
    beq = prog.instructions[1]
    jmp = prog.instructions[2]
    assert beq.imm == 3
    assert jmp.imm == 0
    assert prog.labels == {"top": 0, "done": 3}


def test_assemble_memory_operands():
    prog = assemble("""
        ld r2, 16(r3)
        st r4, -8(r5)
        halt
    """)
    load, store = prog.instructions[0], prog.instructions[1]
    assert load.rd == 2 and load.rs1 == 3 and load.imm == 16
    assert store.rs2 == 4 and store.rs1 == 5 and store.imm == -8


def test_assemble_directives_seed_state():
    prog = assemble("""
        .word 0x100 42
        .reg  r7    9
        halt
    """)
    assert prog.initial_memory == {0x100: 42}
    assert prog.initial_regs == {7: 9}


def test_assemble_comments_and_blank_lines_ignored():
    prog = assemble("""
        # a comment

        nop   # trailing comment
        halt
    """)
    assert len(prog) == 2


@pytest.mark.parametrize("source, fragment", [
    ("bogus r1, r2, r3\nhalt", "unknown mnemonic"),
    ("movi r99, 1\nhalt", "out of range"),
    ("ld r1, r2\nhalt", "offset(base)"),
    ("add r1, r2\nhalt", "needs rd, rs1, rs2"),
    ("nop r1\nhalt", "takes no operands"),
    (".word 5 1\nhalt", "unaligned"),
    ("x:\nx:\nhalt", "duplicate label"),
    ("", "empty program"),
    ("beq r1, r2, 99\nhalt", "outside program"),
])
def test_assemble_rejects_bad_source(source, fragment):
    import re
    with pytest.raises(AssemblyError, match=re.escape(fragment)):
        assemble(source)


def test_assembly_error_carries_line_number():
    try:
        assemble("nop\nbogus\nhalt")
    except AssemblyError as exc:
        assert exc.line_number == 2
    else:
        pytest.fail("expected AssemblyError")


def test_disassemble_round_trip():
    source = """
        movi r1, 7
        ld r2, 0(r1)
        st r2, 8(r1)
        beq r1, r2, 4
        mul r3, r1, r2
        halt
    """
    prog = assemble(source)
    text = disassemble(prog)
    reparsed = assemble(text.replace("@", ""))
    assert reparsed.instructions == prog.instructions
