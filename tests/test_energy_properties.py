"""Energy-model properties: monotonicity and component attribution."""

import pytest

from repro.core import FaultHoundUnit
from repro.energy import DEFAULT_CONSTANTS, EnergyModel
from repro.energy.constants import EnergyConstants
from repro.isa import assemble
from repro.pipeline import PipelineCore


def run(cycles_program, screening=None):
    core = PipelineCore([assemble(cycles_program)], screening=screening)
    core.run(max_cycles=200_000)
    return core


LONG = """
    movi r1, 400
    movi r2, 0x800
loop:
    st   r1, 0(r2)
    ld   r3, 0(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""

SHORT = """
    movi r1, 40
    movi r2, 0x800
loop:
    st   r1, 0(r2)
    ld   r3, 0(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def test_more_work_costs_more_energy():
    model = EnergyModel()
    assert model.compute(run(LONG)).total_pj \
        > model.compute(run(SHORT)).total_pj


def test_energy_scales_roughly_with_instructions():
    model = EnergyModel()
    long_run, short_run = run(LONG), run(SHORT)
    ratio_energy = (model.compute(long_run).total_pj
                    / model.compute(short_run).total_pj)
    ratio_insts = (long_run.stats.committed / short_run.stats.committed)
    assert 0.4 * ratio_insts < ratio_energy < 2.0 * ratio_insts


def test_custom_constants_respected():
    hot = EnergyConstants(leakage_per_cycle_pj=1000.0)
    core = run(SHORT)
    base = EnergyModel().compute(core)
    heavy = EnergyModel(hot).compute(core)
    assert heavy.leakage_pj > base.leakage_pj
    assert heavy.pipeline_pj != 0


def test_screening_energy_attributed_separately():
    model = EnergyModel()
    plain = model.compute(run(SHORT))
    screened = model.compute(run(SHORT, FaultHoundUnit()))
    assert plain.screening_pj == 0.0
    assert screened.screening_pj > 0.0
    # the pipeline component is similar; screening is the new cost
    assert screened.pipeline_pj < 2.0 * plain.pipeline_pj


def test_default_constants_sane():
    k = DEFAULT_CONSTANTS
    assert k.dram_access_pj > k.l2_access_pj > k.l1_access_pj
    assert k.fetch_decode_pj > 0
