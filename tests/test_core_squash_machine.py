"""Squash state-machine tests (paper Section 3.4)."""

import pytest

from repro.core import SquashMachineBank


def test_first_trigger_from_quiet_entry_licenses_squash():
    bank = SquashMachineBank(entries=4)
    assert bank.observe_trigger(2) is True


def test_repeated_trigger_same_entry_suppressed():
    """An entry that keeps being the closest match is exhibiting natural
    value-locality change, not a rename fault."""
    bank = SquashMachineBank(entries=4)
    bank.observe_trigger(1)
    assert bank.observe_trigger(1) is False


def test_identity_change_detected():
    """Rename faults change which filter is closest: a trigger pointing at
    a long-quiet entry is allowed to squash."""
    bank = SquashMachineBank(entries=4)
    for _ in range(10):
        bank.observe_trigger(0)        # entry 0 chronically triggering
    assert bank.observe_trigger(3) is True


def test_entry_needs_seven_quiet_triggers_to_rearm():
    bank = SquashMachineBank(entries=2, num_states=8)
    bank.observe_trigger(0)
    for _ in range(6):
        bank.observe_trigger(1)        # six quiet events for entry 0
    assert bank.observe_trigger(0) is False
    # note: entry 1 is now delinquent itself; drive quiet events via entry 0
    # which is freshly saturated.
    for _ in range(7):
        bank.observe_trigger(0)
    # entry 1 has been quiet 7 times -> re-armed
    assert bank.observe_trigger(1) is True


def test_replaced_entry_loses_squash_rights():
    bank = SquashMachineBank(entries=4)
    # arm entry 2 (never triggered), then replace it: rights revoked.
    bank.entry_replaced(2)
    assert bank.observe_trigger(2) is False


def test_statistics():
    bank = SquashMachineBank(entries=2)
    bank.observe_trigger(0)            # allowed
    bank.observe_trigger(0)            # suppressed
    assert bank.squashes_allowed == 1
    assert bank.squashes_suppressed == 1


def test_state_inspection():
    bank = SquashMachineBank(entries=2, num_states=8)
    bank.observe_trigger(0)
    assert bank.state_of(0) == 7
    assert bank.state_of(1) == 0


def test_rejects_too_few_states():
    with pytest.raises(ValueError):
        SquashMachineBank(entries=2, num_states=1)
