"""Checkpoint/restore subsystem tests.

The tentpole contract: the purpose-built ``clone()`` protocol, the
pickled :class:`CoreCheckpoint`, and the dispatcher's cached golden pass
are pure accelerators — serial, checkpointed-serial, parallel and
warm-cache classification are bit-for-bit identical, and the never-
rewind contract survives the hand-off.
"""

import copy
import pathlib
import pickle
import shutil

import pytest

from repro.faults import CampaignResult
from repro.faults.model import FaultClass
from repro.harness import parallel as parallel_module
from repro.harness.cache import ArtifactCache
from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.harness.parallel import (CheckpointStats, chunk_bounds,
                                    classify_windows_parallel,
                                    window_chunk_task)
from repro.pipeline import (CoreCheckpoint, capture_checkpoint,
                            restore_checkpoint)

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=10, warmup_commits=200,
                         window_commits=100)


def _signature(core):
    """Everything the classifier can observe about a core's evolution."""
    return (
        core.cycle,
        core.stats.committed,
        core.arch_snapshot(),
        tuple(tuple(t.exceptions) for t in core.threads),
        tuple((t.arch_pc, t.committed_count, t.halted)
              for t in core.threads),
        core.screening.trigger_count,
        core.screening.checks,
        core.stats.replay_events,
        core.stats.rollback_events,
        core.stats.singleton_reexecs,
        core.stats.branch_mispredicts,
        tuple(core.declared_faults),
        tuple(core.screen_trigger_cycles),
    )


def _warm_core(scheme="faulthound", commits=400):
    ctx = ExperimentContext(_TINY, jobs=1)
    core = ctx.make_core("mcf", scheme)
    core.run_until_commits(commits)
    return core


# ----------------------------------------------------------------------
# clone protocol
# ----------------------------------------------------------------------
class TestCloneProtocol:
    @pytest.mark.parametrize("scheme", ["baseline", "faulthound", "pbfs"])
    def test_clone_matches_deepcopy_in_lockstep(self, scheme):
        core = _warm_core(scheme)
        via_deepcopy = copy.deepcopy(core)
        via_clone = core.clone()
        for _ in range(1_500):
            core.step()
            via_deepcopy.step()
            via_clone.step()
        assert _signature(via_clone) == _signature(core)
        assert _signature(via_clone) == _signature(via_deepcopy)

    def test_clone_covers_every_attribute(self):
        # Regression guard: a new mutable field added to PipelineCore
        # without a corresponding line in clone() shows up here.
        core = _warm_core()
        assert set(vars(core.clone())) == set(vars(core))

    def test_clone_is_independent(self):
        core = _warm_core()
        twin = core.clone()
        before = _signature(core)
        for _ in range(500):
            twin.step()
        assert _signature(core) == before

    def test_clone_preserves_microop_identity(self):
        # An op resident in several containers (ROB + issue queue +
        # executing list) must map to exactly one clone.
        core = _warm_core()
        twin = core.clone()
        by_uid = {}
        for op in twin.inflight_ops():
            assert by_uid.setdefault(op.uid, op) is op
        originals = {op.uid: op for op in core.inflight_ops()}
        for uid, op in by_uid.items():
            assert op is not originals[uid]


# ----------------------------------------------------------------------
# CoreCheckpoint capture / restore
# ----------------------------------------------------------------------
class TestCoreCheckpoint:
    def test_restore_matches_live_core_in_lockstep(self):
        core = _warm_core()
        checkpoint = CoreCheckpoint.capture(core, window_index=3,
                                            resume_at_commit=500)
        restored = checkpoint.restore()
        for _ in range(1_500):
            core.step()
            restored.step()
        assert _signature(restored) == _signature(core)

    def test_capture_does_not_disturb_the_core(self):
        core = _warm_core()
        control = core.clone()
        CoreCheckpoint.capture(core)
        for _ in range(500):
            core.step()
            control.step()
        assert _signature(core) == _signature(control)

    def test_each_restore_is_independent(self):
        checkpoint = CoreCheckpoint.capture(_warm_core())
        first, second = checkpoint.restore(), checkpoint.restore()
        for _ in range(300):
            first.step()
        assert second.cycle == checkpoint.cycle

    def test_checkpoint_survives_pickling(self):
        # The cache and the pool both ship checkpoints by pickle.
        core = _warm_core()
        checkpoint = CoreCheckpoint.capture(core, window_index=2,
                                            resume_at_commit=300)
        thawed = pickle.loads(pickle.dumps(checkpoint))
        assert thawed.window_index == 2
        assert thawed.resume_at_commit == 300
        assert thawed.nbytes == checkpoint.nbytes
        assert _signature(thawed.restore()) == _signature(core)

    def test_module_level_mirrors(self):
        core = _warm_core()
        checkpoint = capture_checkpoint(core, window_index=1)
        assert checkpoint.window_index == 1
        assert _signature(restore_checkpoint(checkpoint)) == _signature(core)


# ----------------------------------------------------------------------
# never-rewind contract across the hand-off
# ----------------------------------------------------------------------
class TestNeverRewind:
    def _classifier(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        campaign = ctx.build_campaign("mcf")
        return campaign, campaign.classifier(campaign.baseline_factory)

    def test_golden_and_skip_are_mutually_exclusive(self):
        campaign, classifier = self._classifier()
        golden = campaign.baseline_factory()
        with pytest.raises(ValueError, match="not both"):
            classifier.run(campaign.records[2:], skip=campaign.records[:2],
                           golden=golden)

    def test_resume_at_commit_enforces_the_contract(self):
        campaign, classifier = self._classifier()
        golden = campaign.baseline_factory()
        behind = campaign.records[:1]    # injects before the resume point
        with pytest.raises(ValueError, match="never rewinds"):
            classifier.run(behind, golden=golden,
                           resume_at_commit=behind[0].inject_at_commit + 1)

    def test_restored_checkpoint_carries_resume_coordinate(self):
        campaign, classifier = self._classifier()
        bounds = chunk_bounds(len(campaign.records), 2)
        checkpoints = parallel_module.chunk_checkpoints(
            _TINY, ExperimentContext(_TINY, jobs=1).hw, "mcf", None,
            campaign.records, bounds)
        lo = bounds[1][0]
        assert checkpoints[0].resume_at_commit == 0
        assert (checkpoints[1].resume_at_commit
                == campaign.records[lo - 1].inject_at_commit)


# ----------------------------------------------------------------------
# fresh_copy: replay must not disturb characterisation records
# ----------------------------------------------------------------------
class TestFreshCopy:
    def test_fresh_copy_is_deep_enough(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        record = ctx.build_campaign("mcf").records[0]
        record.outcomes["x"] = None
        twin = record.fresh_copy()
        assert twin == record
        twin.applied = False
        twin.fault_class = FaultClass.SDC
        twin.outcomes["y"] = None
        assert record.applied and record.fault_class is None
        assert "y" not in record.outcomes

    def test_replay_leaves_characterization_pristine(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        _, characterization = ctx.campaign("mcf")
        frozen = [r.fresh_copy() for r in characterization.records]
        ctx.coverage("mcf", "faulthound")
        ctx.coverage("mcf", "pbfs")
        assert characterization.records == frozen
        sdc = [r for r in characterization.records
               if r.applied and r.fault_class is FaultClass.SDC]
        assert all(not r.outcomes for r in sdc)


# ----------------------------------------------------------------------
# chunk plumbing edge cases and ordering
# ----------------------------------------------------------------------
class TestChunkEdges:
    def test_zero_count_yields_no_chunks(self):
        assert chunk_bounds(0, 4) == []
        assert chunk_bounds(-3, 4) == []

    def test_fewer_records_than_chunks(self):
        assert chunk_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    def test_single_chunk_covers_everything(self):
        assert chunk_bounds(9, 1) == [(0, 9)]

    def test_empty_records_classify_to_nothing(self):
        ctx = ExperimentContext(_TINY, jobs=2)
        assert classify_windows_parallel(
            _TINY, ctx.hw, "mcf", None, [], ctx._executor) == []


class TestChunkOrdering:
    @pytest.fixture(scope="class")
    def serial_windows(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        campaign = ctx.build_campaign("mcf")
        classifier = campaign.classifier(campaign.baseline_factory)
        return campaign.records, classifier.run(
            [r.fresh_copy() for r in campaign.records])

    def test_chunk_tasks_match_serial_order(self, serial_windows):
        # Legacy 7-tuple (prefix replay) and checkpointed 8-tuple tasks
        # must both reproduce the serial classification, in order.
        records, serial = serial_windows
        ctx = ExperimentContext(_TINY, jobs=1)
        fresh = [r.fresh_copy() for r in records]
        bounds = chunk_bounds(len(fresh), 3)
        legacy = [w for lo, hi in bounds for w in window_chunk_task(
            (_TINY, ctx.hw, "mcf", None, fresh, lo, hi))]
        assert legacy == serial

        fresh = [r.fresh_copy() for r in records]
        checkpoints = parallel_module.chunk_checkpoints(
            _TINY, ctx.hw, "mcf", None, fresh, bounds)
        shipped = [w for (lo, hi), cp in zip(bounds, checkpoints)
                   for w in window_chunk_task(
                       (_TINY, ctx.hw, "mcf", None, fresh, lo, hi, cp))]
        assert shipped == serial


# ----------------------------------------------------------------------
# the acceptance bar: four paths, one answer
# ----------------------------------------------------------------------
def _char_signature(result):
    return [(w.record, w.applied, w.fault_class, w.state_equal,
             w.extra_exceptions, w.hung, w.replays, w.rollbacks,
             w.singletons, w.declared, w.suppressions, w.triggers,
             w.inject_cycle, w.first_trigger_cycle, w.detection_latency)
            for w in result.characterization]


def _cov_signature(result):
    return (result.coverage_results,
            {index: outcome.value
             for index, outcome in result.outcomes.items()},
            result.coverage)


class TestFourPathEquivalence:
    @pytest.fixture(scope="class")
    def serial(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        _, characterization = ctx.campaign("mcf")
        return characterization, ctx.coverage("mcf", "faulthound")

    def test_parallel_checkpointed_and_warm_cache(self, serial, tmp_path):
        serial_char, serial_cov = serial
        cache = ArtifactCache(tmp_path)

        # cold: parallel dispatcher captures checkpoints, persists them
        cold = ExperimentContext(_TINY, jobs=3, cache=cache)
        _, cold_char = cold.campaign("mcf")
        cold_cov = cold.coverage("mcf", "faulthound")
        assert cold_char.throughput.checkpoints_captured > 0
        assert cold_char.throughput.checkpoint_hits == 0
        assert cold_char.throughput.golden_pass_seconds > 0

        # warm: drop the campaign artefacts but keep the checkpoints, so
        # classification re-runs with zero golden stepping
        for kind in ("characterize", "coverage"):
            shutil.rmtree(pathlib.Path(tmp_path) / kind)
        warm = ExperimentContext(_TINY, jobs=3, cache=ArtifactCache(tmp_path))
        _, warm_char = warm.campaign("mcf")
        warm_cov = warm.coverage("mcf", "faulthound")
        assert warm_char.throughput.checkpoint_hits > 0
        assert warm_char.throughput.checkpoints_captured == 0

        # checkpointed-serial: classify straight from a restored boundary
        ctx = ExperimentContext(_TINY, jobs=1)
        campaign = ctx.build_campaign("mcf")
        records = [r.fresh_copy() for r in campaign.records]
        bounds = chunk_bounds(len(records), 3)
        checkpoints = parallel_module.chunk_checkpoints(
            _TINY, ctx.hw, "mcf", None, records, bounds)
        classifier = campaign.classifier(campaign.baseline_factory)
        resumed = []
        for (lo, hi), checkpoint in zip(bounds, checkpoints):
            resumed.extend(classifier.run(
                records[lo:hi], golden=checkpoint.restore(),
                resume_at_commit=checkpoint.resume_at_commit))
        resumed_char = CampaignResult("mcf", "baseline",
                                      [w.record for w in resumed])
        resumed_char.characterization = resumed

        want = _char_signature(serial_char)
        assert _char_signature(cold_char) == want
        assert _char_signature(warm_char) == want
        assert _char_signature(resumed_char) == want
        assert _cov_signature(cold_cov) == _cov_signature(serial_cov)
        assert _cov_signature(warm_cov) == _cov_signature(serial_cov)

        # the audit trail's aggregates agree across every path too
        from repro.obs.audit import audit_records

        def audit(result, phase):
            return [r.as_event() for r in audit_records(result, phase)]

        want_audit = audit(serial_char, "characterize")
        assert audit(cold_char, "characterize") == want_audit
        assert audit(warm_char, "characterize") == want_audit
        assert audit(resumed_char, "characterize") == want_audit
        assert (audit(cold_cov, "coverage")
                == audit(serial_cov, "coverage"))
        assert (audit(warm_cov, "coverage")
                == audit(serial_cov, "coverage"))

    def test_checkpoint_cache_stats_flow_into_metrics(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        ctx = ExperimentContext(_TINY, jobs=2, cache=cache)
        stats = CheckpointStats()
        campaign = ctx.build_campaign("mcf")
        classify_windows_parallel(_TINY, ctx.hw, "mcf", None,
                                  campaign.records, ctx._executor,
                                  cache=cache, ctx=ctx,
                                  checkpoint_stats=stats)
        assert stats.captured == len(chunk_bounds(len(campaign.records), 2))
        assert stats.hits == 0
        rerun = CheckpointStats()
        classify_windows_parallel(_TINY, ctx.hw, "mcf", None,
                                  campaign.records, ctx._executor,
                                  cache=cache, ctx=ctx,
                                  checkpoint_stats=rerun)
        assert rerun.captured == 0
        assert rerun.hits == stats.captured
