"""Last-value vs neighbourhood locality (the paper's Section 2 leeway
argument: fault-tolerance hints need less than value prediction)."""

import pytest

from repro.analysis.locality import (last_value_hit_rate,
                                     neighbourhood_hit_rate)
from repro.workloads import PROFILES, build_program


class TestLastValue:
    def test_constant_stream(self):
        assert last_value_hit_rate([5, 5, 5]) == 1.0

    def test_counter_never_repeats(self):
        assert last_value_hit_rate(list(range(50))) == 0.0

    def test_short_stream(self):
        assert last_value_hit_rate([7]) == 0.0


class TestNeighbourhood:
    def test_explicit_mask(self):
        # values differ only in bit 0, which the mask wildcards
        values = [0b10, 0b11, 0b10, 0b11]
        assert neighbourhood_hit_rate(values, changing_mask=0b1) == 1.0
        assert neighbourhood_hit_rate(values, changing_mask=0) == 0.0

    def test_derived_mask_counter(self):
        # a counter's low bits change often -> derived mask wildcards
        # them; only rare high-bit carries (changing <1% of the time, so
        # not wildcarded) still miss
        values = list(range(200))
        assert neighbourhood_hit_rate(values) > 0.95
        assert last_value_hit_rate(values) == 0.0

    def test_short_stream(self):
        assert neighbourhood_hit_rate([1]) == 0.0


def test_hints_have_more_leeway_than_prediction():
    """Section 2: "fault-tolerance hints have more leeway than value
    prediction" — on real workload store-value streams the neighbourhood
    hit rate must far exceed the last-value hit rate."""
    from repro.isa.interpreter import Interpreter
    program = build_program(PROFILES["dealII"], 4000)
    interp = Interpreter(program)
    interp.trace_memory_ops = True
    interp.run(max_instructions=30_000)
    values = [v for kind, v in interp.mem_trace if kind == "store_value"]
    assert len(values) > 200
    last = last_value_hit_rate(values)
    neighbourhood = neighbourhood_hit_rate(values)
    assert neighbourhood > last + 0.3
    assert neighbourhood > 0.8
