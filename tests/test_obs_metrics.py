"""Metrics-registry tests: instrument semantics, snapshot/merge,
worker-side accumulation, Prometheus export, and the bit-for-bit
guarantee that instrumentation never perturbs campaign results."""

import json

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.obs import (EventLog, MetricsRegistry, NULL_METRICS,
                       WORKER_DIR_ENV, drain_worker_metrics, read_events,
                       snapshot_from_events, to_prometheus, validate_events,
                       worker_metrics)
from repro.obs.metrics import (BYTES_BUCKETS, Histogram,
                               LATENCY_CYCLE_BUCKETS, SECONDS_BUCKETS,
                               _NULL_INSTRUMENT)

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=8, warmup_commits=200,
                         window_commits=100)


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("windows_total")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5
        assert registry.counter("windows_total") is counter  # memoised

    def test_gauge_overwrites_and_incs(self):
        gauge = MetricsRegistry().gauge("workers")
        gauge.set(3)
        gauge.inc(-1)
        assert gauge.value() == 2

    def test_histogram_buckets_are_inclusive_upper_bounds(self):
        histogram = Histogram("latency", (16.0, 32.0, 64.0))
        for value in (0, 16, 17, 32, 100):
            histogram.observe(value)
        # counts are per-bucket: [<=16, <=32, <=64, overflow]
        assert histogram.counts == [2, 2, 0, 1]
        assert histogram.count == 5
        assert histogram.sum == 165

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("bad", (32.0, 16.0))
        with pytest.raises(ValueError, match="ascending"):
            Histogram("bad", ())

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("n")

    def test_histogram_bucket_schema_clash_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", SECONDS_BUCKETS)
        with pytest.raises(ValueError, match="buckets"):
            registry.histogram("h", BYTES_BUCKETS)

    def test_paper_latency_buckets_match_audit_geometry(self):
        # 8 buckets of 16 cycles, same shape as the audit histogram
        assert LATENCY_CYCLE_BUCKETS == tuple(
            16.0 * (i + 1) for i in range(8))


# ----------------------------------------------------------------------
# the NULL registry: metrics-off must cost one attribute access
# ----------------------------------------------------------------------
class TestNullRegistry:
    def test_null_registry_is_inert(self):
        assert NULL_METRICS.enabled is False
        assert len(NULL_METRICS) == 0
        counter = NULL_METRICS.counter("anything")
        counter.inc(99)
        assert counter.value() == 0.0
        NULL_METRICS.histogram("h", (1.0,)).observe(5)
        NULL_METRICS.gauge("g").set(7)
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {},
                                           "histograms": {}}

    def test_null_instruments_are_one_shared_singleton(self):
        assert NULL_METRICS.counter("a") is _NULL_INSTRUMENT
        assert NULL_METRICS.gauge("b") is _NULL_INSTRUMENT
        assert NULL_METRICS.histogram("c") is _NULL_INSTRUMENT

    def test_null_emit_writes_nothing(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        NULL_METRICS.emit(log)
        log.close()
        assert not any(e["type"] == "metrics"
                       for e in read_events(log.path))


# ----------------------------------------------------------------------
# snapshot / merge / emit
# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def test_snapshot_shape_and_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc(2)
        registry.counter("a_total").inc(1)
        registry.gauge("depth").set(4)
        registry.histogram("lat", (16.0, 32.0)).observe(20)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["counters", "gauges", "histograms"]
        assert list(snapshot["counters"]) == ["a_total", "b_total"]
        assert snapshot["gauges"] == {"depth": 4}
        assert snapshot["histograms"]["lat"] == {
            "buckets": [16.0, 32.0], "counts": [0, 1, 0],
            "sum": 20, "count": 1}
        json.dumps(snapshot)    # must be JSON-safe

    def test_merge_adds_counters_and_histogram_cells(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, amount in ((a, 2), (b, 3)):
            registry.counter("n_total").inc(amount)
            registry.gauge("depth").set(amount)
            registry.histogram("lat", (16.0,)).observe(amount)
        a.merge(b.snapshot())
        merged = a.snapshot()
        assert merged["counters"]["n_total"] == 5
        assert merged["gauges"]["depth"] == 3          # last writer wins
        assert merged["histograms"]["lat"]["counts"] == [2, 0]
        assert merged["histograms"]["lat"]["count"] == 2

    def test_merge_rejects_mismatched_histogram_schema(self):
        a = MetricsRegistry()
        a.histogram("lat", (16.0, 32.0))
        with pytest.raises(ValueError, match="mismatched"):
            a.merge({"histograms": {"lat": {"buckets": [16.0, 32.0],
                                            "counts": [1, 1],
                                            "sum": 1, "count": 2}}})

    def test_emit_writes_one_schema_valid_event(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        registry = MetricsRegistry()
        registry.counter("n_total").inc()
        registry.emit(log)
        log.close()
        events = read_events(log.path)
        assert validate_events(events) == []
        metrics_events = [e for e in events if e["type"] == "metrics"]
        assert len(metrics_events) == 1
        assert metrics_events[0]["scope"] == "session"
        assert metrics_events[0]["snapshot"]["counters"]["n_total"] == 1

    def test_empty_registry_emits_nothing(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        MetricsRegistry().emit(log)
        log.close()
        assert not any(e["type"] == "metrics"
                       for e in read_events(log.path))

    def test_snapshot_from_events_merges_all_metrics_events(self):
        events = [
            {"type": "metrics",
             "snapshot": {"counters": {"n_total": 2}}},
            {"type": "other"},
            {"type": "metrics",
             "snapshot": {"counters": {"n_total": 3},
                          "gauges": {"depth": 1}}},
        ]
        merged = snapshot_from_events(events)
        assert merged["counters"]["n_total"] == 5
        assert merged["gauges"]["depth"] == 1


# ----------------------------------------------------------------------
# worker-side accumulation
# ----------------------------------------------------------------------
class TestWorkerMetrics:
    def test_worker_registry_dead_without_spool_env(self, monkeypatch):
        monkeypatch.delenv(WORKER_DIR_ENV, raising=False)
        assert worker_metrics() is NULL_METRICS
        assert drain_worker_metrics() is None

    def test_worker_registry_live_with_spool_env(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(WORKER_DIR_ENV, str(tmp_path))
        registry = worker_metrics()
        assert registry.enabled
        registry.counter("windows_total").inc(3)
        snapshot = drain_worker_metrics()
        assert snapshot["counters"]["windows_total"] == 3
        assert drain_worker_metrics() is None   # drained clean

    def test_parallel_campaign_drains_worker_snapshots(self, tmp_path):
        """Pool workers spool their registries through worker_task_span;
        the parent log ends up carrying mergeable worker snapshots."""
        log = EventLog(tmp_path / "events.jsonl")
        registry = MetricsRegistry()
        ctx = ExperimentContext(_TINY, jobs=2, events=log,
                                metrics=registry)
        ctx.campaign("mcf")
        registry.emit(log)
        log.close()
        events = read_events(log.path)
        assert validate_events(events) == []
        merged = snapshot_from_events(events)
        assert (merged["counters"]["classifier_windows_total"]
                == _TINY.num_faults)


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_counter_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("n_total").inc(2)
        registry.gauge("depth").set(1.5)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_n_total counter\nrepro_n_total 2\n" in text
        assert "# TYPE repro_depth gauge\nrepro_depth 1.5\n" in text

    def test_histogram_becomes_cumulative_le_form(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", (16.0, 32.0))
        for value in (10, 20, 100):
            histogram.observe(value)
        lines = to_prometheus(registry.snapshot()).splitlines()
        assert 'repro_lat_bucket{le="16"} 1' in lines
        assert 'repro_lat_bucket{le="32"} 2' in lines
        assert 'repro_lat_bucket{le="+Inf"} 3' in lines
        assert "repro_lat_sum 130" in lines
        assert "repro_lat_count 3" in lines

    def test_names_are_sanitized(self):
        text = to_prometheus({"counters": {"stage mem-ops": 1}},
                             namespace="x")
        assert "x_stage_mem_ops 1" in text

    def test_empty_snapshot_is_empty_string(self):
        assert to_prometheus({"counters": {}, "gauges": {},
                              "histograms": {}}) == ""


# ----------------------------------------------------------------------
# the contract the whole leg hangs on: metrics never change results
# ----------------------------------------------------------------------
class TestBitForBit:
    def test_campaign_identical_with_metrics_on_and_off(self):
        def outcomes(metrics):
            ctx = ExperimentContext(_TINY, jobs=1, metrics=metrics)
            _, characterization = ctx.campaign("mcf")
            coverage = ctx.coverage("mcf", "faulthound")
            return ([(r.record.index, r.fault_class, r.detection_latency)
                     for r in characterization.characterization],
                    sorted((i, o.value)
                           for i, o in coverage.outcomes.items()))

        plain = outcomes(None)                 # NULL registry path
        instrumented = outcomes(MetricsRegistry())
        assert plain == instrumented
