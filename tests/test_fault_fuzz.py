"""Robustness fuzz: no single-bit fault, anywhere, at any time, may crash
the simulator or hang classification.

Faults are *supposed* to corrupt architectural results; they are never
allowed to corrupt the simulator itself (unhandled exceptions, deadlocks,
structural invariant violations)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FaultHoundUnit
from repro.faults import FaultInjector, FaultSite
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs

sites = st.sampled_from(list(FaultSite))


def make_core(screening=False):
    programs = build_smt_programs(PROFILES["astar"], 3000)
    return PipelineCore(
        programs, screening=FaultHoundUnit() if screening else None)


@settings(max_examples=20, deadline=None)
@given(st.integers(50, 900),        # injection time (commits)
       sites,
       st.integers(0, 63),          # bit
       st.integers(0, 10_000),      # site coordinate
       st.booleans())               # screening on/off
def test_any_single_fault_is_survivable(when, site, bit, coord, screened):
    core = make_core(screened)
    core.run_until_commits(when)
    if site is FaultSite.REGFILE:
        core.inject_prf_bit(coord, bit)
    elif site is FaultSite.RENAME:
        core.inject_rat_bit(coord % len(core.threads),
                            1 + coord % 31, bit % 8)
    else:
        core.inject_lsq_bit(coord % len(core.threads), coord,
                            "value" if coord % 2 else "addr", bit)
    # must terminate: either halts or keeps committing without exceptions
    # from the simulator itself
    core.run(max_cycles=400_000)
    assert core.stats.committed > 0
    # structural invariant: PRF bookkeeping stays conserved
    in_flight = sum(1 for t in core.threads for op in t.rob
                    if op.phys_dest is not None)
    assert in_flight + len(core.free_list) <= core.hw.phys_regs


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**32))
def test_double_fault_is_survivable(seed):
    """Two faults in quick succession (the paper assumes single-bit, but
    the simulator must tolerate worse)."""
    rng = random.Random(seed)
    core = make_core(True)
    core.run_until_commits(rng.randrange(100, 600))
    for _ in range(2):
        core.inject_prf_bit(rng.randrange(core.hw.phys_regs),
                            rng.randrange(64))
        core.inject_rat_bit(rng.randrange(len(core.threads)),
                            rng.randrange(1, 32), rng.randrange(8))
        for _ in range(rng.randrange(1, 50)):
            core.step()
    core.run(max_cycles=400_000)
    assert core.stats.cycles > 0


def test_fault_during_replay_window_is_survivable():
    """Inject while a replay is in flight — the nastiest interleaving."""
    core = make_core(True)
    core.run_until_commits(200)
    injected = False
    for _ in range(30_000):
        core.step()
        if core._replay_pending and not injected:
            core.inject_prf_bit(60, 33)
            core.inject_rat_bit(0, 5, 2)
            injected = True
        if injected and not core._replay_pending:
            break
    core.run(max_cycles=400_000)
    assert core.stats.committed > 0
