"""Fault model, injector and tandem-classifier tests."""

import random

import pytest

from repro.config import FaultHoundConfig, HardwareConfig, PBFSConfig
from repro.core import FaultHoundUnit, NullScreeningUnit, PBFSUnit
from repro.faults import (Campaign, FaultClass, FaultInjector, FaultRecord,
                          FaultSite, RegStatus, SITE_PROPORTIONS,
                          TandemClassifier)
from repro.isa import assemble
from repro.pipeline import PipelineCore

from .program_gen import random_program

HW = HardwareConfig()


def make_core(program, screening=None):
    return PipelineCore([program], hw=HW, screening=screening)


class TestModel:
    def test_site_proportions_sum_to_one(self):
        assert sum(SITE_PROPORTIONS.values()) == pytest.approx(1.0)

    def test_record_describe(self):
        record = FaultRecord(index=0, site=FaultSite.REGFILE,
                             inject_at_commit=100, bit=5, reg=42)
        assert "p42" in record.describe()
        assert "bit5" in record.describe()


class TestInjector:
    def test_plan_is_deterministic(self):
        a = FaultInjector(9, HW.phys_regs, 1).plan(50, 100, 1000)
        b = FaultInjector(9, HW.phys_regs, 1).plan(50, 100, 1000)
        assert [(r.site, r.bit, r.reg) for r in a] == \
               [(r.site, r.bit, r.reg) for r in b]

    def test_plan_roughly_matches_proportions(self):
        records = FaultInjector(3, HW.phys_regs, 2).plan(2000, 0, 10_000)
        counts = {site: 0 for site in FaultSite}
        for record in records:
            counts[record.site] += 1
        assert counts[FaultSite.REGFILE] > counts[FaultSite.RENAME] \
            > counts[FaultSite.LSQ]
        assert counts[FaultSite.RENAME] / 2000 == pytest.approx(0.20, abs=0.04)

    def test_plan_sorted_by_time(self):
        records = FaultInjector(1, HW.phys_regs, 1).plan(100, 0, 5000)
        times = [r.inject_at_commit for r in records]
        assert times == sorted(times)

    def test_rename_bits_bounded_by_pointer_width(self):
        records = FaultInjector(2, HW.phys_regs, 1).plan(500, 0, 100)
        width = (HW.phys_regs - 1).bit_length()
        for record in records:
            if record.site is FaultSite.RENAME:
                assert record.bit < width

    def test_reg_status_free_vs_committed(self):
        core = make_core(assemble("movi r1, 7\nhalt"))
        core.run(max_cycles=10_000)
        committed_phys = core.threads[0].committed_rat.get(1)
        assert FaultInjector.reg_status(core, committed_phys) \
            is RegStatus.COMMITTED
        free_reg = core.free_list._tags[0]
        assert FaultInjector.reg_status(core, free_reg) is RegStatus.FREE

    def test_prf_injection_flips_exactly_one_bit(self):
        core = make_core(assemble("movi r1, 0\nhalt"))
        reg = 10
        before = core.prf.read(reg)
        core.inject_prf_bit(reg, 4)
        assert core.prf.read(reg) == before ^ 16

    def test_rename_injection_changes_mapping(self):
        core = make_core(assemble("movi r1, 1\nmovi r1, 2\nhalt"))
        before = core.threads[0].spec_rat.get(5)
        core.inject_rat_bit(0, 5, 0)
        after = core.threads[0].spec_rat.get(5)
        assert after != before
        assert 0 <= after < HW.phys_regs

    def test_lsq_injection_requires_resident_entry(self):
        core = make_core(assemble("movi r1, 1\nhalt"))
        assert core.inject_lsq_bit(0, 0, "addr", 3) is False


class TestClassifier:
    def _campaign(self, seed=11, n=24, scheme=None, window=100):
        program = random_program(random.Random(seed), body_len=25,
                                 iterations=2000)
        campaign = Campaign(
            "test", lambda: make_core(program),
            num_phys_regs=HW.phys_regs, num_threads=1,
            num_faults=n, seed=seed, warmup_commits=200,
            window_commits=window, max_window_cycles=30_000)
        return program, campaign

    def test_characterization_classes_partition(self):
        _, campaign = self._campaign()
        result = campaign.characterize()
        fractions = [result.class_fraction(c) for c in FaultClass]
        assert sum(fractions) == pytest.approx(1.0)
        assert result.applied_count() > 0

    def test_most_faults_masked(self):
        """The paper's headline characterization: a large majority of
        single-bit faults are masked (~85%)."""
        _, campaign = self._campaign(n=40)
        result = campaign.characterize()
        assert result.class_fraction(FaultClass.MASKED) > 0.5

    def test_faulthound_covers_some_sdc_faults(self):
        program, campaign = self._campaign(n=40)
        characterization = campaign.characterize()
        sdc = sum(1 for r in characterization.characterization
                  if r.applied and r.fault_class is FaultClass.SDC)
        if sdc == 0:
            pytest.skip("campaign produced no SDC faults at this seed")
        coverage = campaign.run_coverage(
            "faulthound",
            lambda: make_core(program, FaultHoundUnit()),
            characterization)
        assert coverage.sdc_count == sdc
        assert 0.0 <= coverage.coverage <= 1.0
        bins = coverage.breakdown()
        assert sum(bins.values()) == pytest.approx(1.0, abs=1e-6)

    def test_null_scheme_covers_nothing_uncorrected(self):
        """Under the null unit an SDC fault stays SDC: nothing recovers it
        and nothing detects it."""
        program, campaign = self._campaign(n=30)
        characterization = campaign.characterize()
        sdc = [r for r in characterization.characterization
               if r.applied and r.fault_class is FaultClass.SDC]
        if not sdc:
            pytest.skip("no SDC faults at this seed")
        coverage = campaign.run_coverage(
            "baseline", lambda: make_core(program), characterization)
        recovered = sum(1 for o in coverage.outcomes.values() if o.is_covered)
        assert recovered == 0

    def test_deterministic_classification(self):
        _, campaign_a = self._campaign(seed=5, n=12)
        _, campaign_b = self._campaign(seed=5, n=12)
        res_a = campaign_a.characterize()
        res_b = campaign_b.characterize()
        assert [w.fault_class for w in res_a.characterization] == \
               [w.fault_class for w in res_b.characterization]


class TestDirectedInjection:
    def test_committed_register_fault_corrupts_stores(self):
        """A fault in a committed register consumed by later stores is SDC
        under the baseline — the classic silent-corruption path."""
        src = """
            movi r5, 1000
            movi r2, 0x100
            movi r1, 50
            loop:
            st   r5, 0(r2)
            addi r2, r2, 8
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """
        program = assemble(src)
        golden = make_core(program)
        golden.run(max_cycles=50_000)

        faulty = make_core(program)
        # run a few loop iterations, then flip a low bit of r5's register
        faulty.run_until_commits(20)
        phys = faulty.threads[0].committed_rat.get(5)
        faulty.inject_prf_bit(phys, 3)
        faulty.run(max_cycles=50_000)
        assert (faulty.threads[0].arch_state_snapshot(faulty.prf)
                != golden.threads[0].arch_state_snapshot(golden.prf))

    def test_store_lsq_value_fault_detected_by_faulthound(self):
        """Corrupting a store value in the LSQ after execution: FaultHound's
        commit-time check triggers a singleton re-execute whose compare
        recovers the correct value from the register file."""
        src = """
            movi r5, 0x12340
            movi r2, 0x100
            movi r1, 200
            loop:
            st   r5, 0(r2)
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """
        program = assemble(src)
        golden = make_core(program, FaultHoundUnit())
        golden.run(max_cycles=100_000)

        faulty = make_core(program, FaultHoundUnit())
        faulty.run_until_commits(300)  # warm the filters well
        injected = False
        for _ in range(2000):
            if faulty.inject_lsq_bit(0, 0, "value", 17):
                injected = True
                break
            faulty.step()
        assert injected
        faulty.run(max_cycles=100_000)
        # the corrupted value was off-neighbourhood: recovered via singleton
        assert (faulty.threads[0].arch_state_snapshot(faulty.prf)
                == golden.threads[0].arch_state_snapshot(golden.prf))
        assert faulty.stats.singleton_reexecs >= 1
