"""Batched lockstep tandem engine tests (``repro.faults.batched``).

The tentpole contract: grouping faults into lane batches is a pure
accelerator. Characterisation windows, coverage results, Figure 11
outcomes, audit aggregates and the golden core's own evolution
(``cycles_elided`` included) are bit-for-bit identical for any
``batch_lanes`` — serial, parallel-chunked and supervised alike — and
masked faults on free registers never leave dormancy (never pay a
clone).
"""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.config import HardwareConfig
from repro.core.screening import NullScreeningUnit, ScreeningUnit
from repro.faults.batched import CoreSoAView, LaneState, assert_unwatched
from repro.faults.campaign import Campaign
from repro.faults.model import (FaultClass, FaultRecord, FaultSite,
                                RegStatus)
from repro.harness.experiment import (SCHEMES, ExperimentConfig,
                                      ExperimentContext)
from repro.harness.parallel import (align_chunk_bounds, chunk_bounds,
                                    classify_windows_parallel)
from repro.harness.supervisor import Supervisor, SupervisorPolicy
from repro.obs.audit import audit_aggregates, audit_records
from repro.pipeline import CoreCheckpoint
from repro.pipeline.core import PipelineCore
from repro.pipeline.issue_queue import DelayBuffer
from repro.workloads import build_smt_programs
from repro.workloads.profiles import PROFILES

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=12, warmup_commits=200,
                         window_commits=100)
#: Same campaign, classified through the batched tandem engine. 5 does
#: not divide 12, so the last batch is a partial group — the ragged
#: edge rides along in every equivalence check below.
_BATCHED = replace(_TINY, batch_lanes=5)


def _char_signature(result):
    return [(w.record, w.applied, w.fault_class, w.state_equal,
             w.extra_exceptions, w.hung, w.replays, w.rollbacks,
             w.singletons, w.declared, w.suppressions, w.triggers,
             w.inject_cycle, w.first_trigger_cycle, w.detection_latency)
            for w in result.characterization]


def _cov_signature(result):
    return (result.coverage_results,
            {index: outcome.value
             for index, outcome in result.outcomes.items()},
            result.coverage)


def _golden_signature(core):
    """Everything observable about the shared golden core after a run —
    the batched engine borrows it for dormant lanes, so its evolution
    must be indistinguishable from the scalar path's."""
    return (core.cycle, core.cycles_elided, core.stats.summary(),
            core.arch_snapshot(),
            tuple((t.arch_pc, t.committed_count, t.halted)
                  for t in core.threads))


# ----------------------------------------------------------------------
# the acceptance bar: batch_lanes 1 vs K, every execution path
# ----------------------------------------------------------------------
class TestBatchedEquivalence:
    @pytest.fixture(scope="class")
    def scalar(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        return characterization, coverage

    @pytest.fixture(scope="class")
    def batched(self):
        ctx = ExperimentContext(_BATCHED, jobs=1)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        return characterization, coverage

    def test_characterization_bit_for_bit(self, scalar, batched):
        assert _char_signature(batched[0]) == _char_signature(scalar[0])

    def test_coverage_bit_for_bit(self, scalar, batched):
        assert _cov_signature(batched[1]) == _cov_signature(scalar[1])

    def test_audit_aggregates_bit_for_bit(self, scalar, batched):
        for phase, slot in (("characterize", 0), ("coverage", 1)):
            want = audit_aggregates(audit_records(scalar[slot], phase))
            got = audit_aggregates(audit_records(batched[slot], phase))
            assert got == want

    def test_golden_core_evolution_matches(self):
        # The dormant fast path shares the golden core across lanes; its
        # cycle count, event-skip tally (cycles_elided) and architectural
        # state must come out exactly as the scalar path leaves them.
        goldens, stats = [], []
        for cfg in (_TINY, _BATCHED):
            ctx = ExperimentContext(cfg, jobs=1)
            campaign = ctx.build_campaign("mcf")
            classifier = campaign.classifier(campaign.baseline_factory)
            golden = campaign.baseline_factory()
            classifier.run([r.fresh_copy() for r in campaign.records],
                           golden=golden)
            goldens.append(golden)
            stats.append(classifier.lane_stats)
        assert _golden_signature(goldens[1]) == _golden_signature(goldens[0])
        # scalar path never enters the lane engine ...
        assert stats[0].lanes == 0
        # ... the batched path routes every record through it, and LSQ
        # faults (no dormant phase to elide) delegate to the scalar path
        assert stats[1].lanes == _TINY.num_faults
        lsq = sum(1 for r in ExperimentContext(_BATCHED, jobs=1)
                  .build_campaign("mcf").records
                  if r.site is FaultSite.LSQ)
        assert stats[1].fallbacks == lsq

    def test_parallel_chunks_match_scalar_serial(self, scalar):
        ctx = ExperimentContext(_BATCHED, jobs=3)
        campaign = ctx.build_campaign("mcf")
        fresh = [r.fresh_copy() for r in campaign.records]
        windows = classify_windows_parallel(_BATCHED, ctx.hw, "mcf", None,
                                            fresh, ctx._executor)
        assert windows == scalar[0].characterization

    def test_supervised_pool_matches_scalar_serial(self, scalar, tmp_path):
        sup = Supervisor(SupervisorPolicy(chunk_windows=3),
                         run_dir=tmp_path / "run")
        ctx = ExperimentContext(_BATCHED, jobs=3, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        sup.close()
        assert sup.status == "complete" and sup.exit_code == 0
        assert (_char_signature(characterization)
                == _char_signature(scalar[0]))
        assert _cov_signature(coverage) == _cov_signature(scalar[1])


# ----------------------------------------------------------------------
# lane lifecycle: masked faults never pay a clone
# ----------------------------------------------------------------------
class TestLaneLifecycle:
    def test_free_register_faults_stay_dormant(self):
        # A wide PRF over the stock workload: most REGFILE faults land
        # in registers that are FREE at arm time. Those lanes must
        # classify as masked without ever materialising a clone.
        hw = HardwareConfig(phys_regs=2048)
        programs = build_smt_programs(PROFILES["mcf"], 3_000, copies=2)

        def factory():
            return PipelineCore(programs, hw=hw,
                                screening=NullScreeningUnit())

        campaign = Campaign("mcf", factory, hw.phys_regs, 2,
                            num_faults=16, seed=11, warmup_commits=200,
                            window_commits=50, batch_lanes=4)
        import random
        rng = random.Random(11)
        campaign.records = [
            FaultRecord(index=i, site=FaultSite.REGFILE,
                        inject_at_commit=200 + i * 50,
                        bit=rng.randrange(64),
                        reg=rng.randrange(hw.phys_regs))
            for i in range(16)]
        classifier = campaign.classifier(factory)
        results = classifier.run(campaign.records)
        stats = classifier.lane_stats

        free = [r for r in results
                if r.record.reg_status is RegStatus.FREE]
        assert free, "plan produced no free-register faults"
        for window in free:
            assert window.fault_class is FaultClass.MASKED
            assert window.state_equal
        # every materialised lane must be one of the non-FREE faults
        assert stats.lanes == len(results)
        assert stats.materialized <= stats.lanes - len(free)
        assert stats.fallbacks == 0   # REGFILE-only plan
        assert stats.dormant + stats.converged >= len(free)
        assert stats.dormant_cycles > 0

    def test_lane_state_enum_is_closed(self):
        # The stats fold and the docs enumerate exactly these phases.
        assert {s.value for s in LaneState} == {
            "dormant", "converged", "materialized"}


# ----------------------------------------------------------------------
# next_event_cycle contract (event-skip soundness under batched lanes)
# ----------------------------------------------------------------------
class TestNextEventCycleContract:
    """The dormant-lane probe leans on event-skip staying sound: a unit
    that acted 'unprompted' between commits could make golden reads the
    SoA probe never saw. Every in-tree screening unit and the delay
    buffer declare themselves event-free; the batched runs above then
    confirm the composed engine agrees with scalar stepping."""

    @pytest.mark.parametrize("scheme", sorted(SCHEMES))
    def test_screening_units_declare_no_autonomous_events(self, scheme):
        unit = SCHEMES[scheme]()
        for now in (0, 1, 999, 60_000):
            assert unit.next_event_cycle(now) is None

    def test_base_class_contract(self):
        assert ScreeningUnit.next_event_cycle(NullScreeningUnit(), 5) is None

    def test_delay_buffer_declares_no_autonomous_events(self):
        buffer = DelayBuffer(capacity=2)
        assert buffer.next_event_cycle(0) is None
        # still None while occupied: aging is driven by completions and
        # evictions by dispatches, never by the passage of cycles
        buffer.push(SimpleNamespace(in_delay_buffer=False, uid=1))
        buffer.push(SimpleNamespace(in_delay_buffer=False, uid=2))
        assert len(buffer) == 2
        for now in (1, 10, 10_000):
            assert buffer.next_event_cycle(now) is None


# ----------------------------------------------------------------------
# chunk alignment: lane batches and windows never split
# ----------------------------------------------------------------------
def _plan(commits):
    return [FaultRecord(index=i, site=FaultSite.REGFILE,
                        inject_at_commit=commit, bit=0, reg=1)
            for i, commit in enumerate(commits)]


class TestAlignChunkBounds:
    def test_empty_bounds(self):
        assert align_chunk_bounds([], []) == []

    def test_distinct_plans_pass_through_unchanged(self):
        records = _plan([10, 20, 30, 40, 50, 60, 70])
        bounds = chunk_bounds(len(records), 3)
        assert align_chunk_bounds(bounds, records) == bounds

    def test_cut_inside_window_snaps_down(self):
        records = _plan([10, 20, 20, 30])
        assert align_chunk_bounds([(0, 2), (2, 4)], records) \
            == [(0, 1), (1, 4)]

    def test_cut_on_window_start_stays_put(self):
        records = _plan([10, 10, 20, 20, 30])
        bounds = [(0, 2), (2, 4), (4, 5)]
        assert align_chunk_bounds(bounds, records) == bounds

    def test_collapsed_cut_drops_empty_chunk(self):
        records = _plan([10, 10, 10, 20])
        assert align_chunk_bounds([(0, 2), (2, 4)], records) == [(0, 4)]

    def test_cuts_only_move_within_their_run(self):
        # Non-contiguous runs (the supervisor's gap list): the cut at 7
        # snaps inside its own run; the gap [3, 5) is never re-entered.
        records = _plan([10, 20, 30, 40, 50, 60, 70, 70, 80])
        got = align_chunk_bounds([(0, 1), (1, 3), (5, 7), (7, 9)],
                                 records)
        assert got == [(0, 1), (1, 3), (5, 6), (6, 9)]

    def test_coverage_is_preserved(self):
        records = _plan([10, 10, 20, 20, 20, 30, 40, 40])
        bounds = chunk_bounds(len(records), 4)
        aligned = align_chunk_bounds(bounds, records)
        indices = [i for lo, hi in aligned for i in range(lo, hi)]
        assert indices == list(range(len(records)))
        for lo, hi in aligned:
            assert lo < hi
            if lo > 0:      # no window straddles a chunk edge
                assert (records[lo].inject_at_commit
                        != records[lo - 1].inject_at_commit)


# ----------------------------------------------------------------------
# SoA mirrors and watch-guard plumbing
# ----------------------------------------------------------------------
def _warm_core(commits=400):
    ctx = ExperimentContext(_TINY, jobs=1)
    core = ctx.make_core("mcf", "baseline")
    core.run_until_commits(commits)
    return core


class TestSoAViewAndWatches:
    def test_soa_view_is_cached_per_core(self):
        core = _warm_core()
        assert core.soa_view() is core.soa_view()
        assert core.clone()._soa_view is None

    def test_identical_cores_have_no_divergent_fields(self):
        core = _warm_core()
        twin = core.clone()
        assert CoreSoAView(core).divergent_fields(CoreSoAView(twin)) == []

    def test_prf_mutation_is_detected(self):
        core = _warm_core()
        twin = core.clone()
        twin.inject_prf_bit(3, 17)
        # out-of-band injection does not move the activity stamp — the
        # compare path must be forced to re-mirror
        fields = CoreSoAView(core).divergent_fields(CoreSoAView(twin),
                                                    force=True)
        assert fields == ["prf_values"]

    def test_stepping_diverges_rob_columns(self):
        core = _warm_core()
        twin = core.clone()
        twin.run_until_commits(twin.stats.committed + 20)
        fields = CoreSoAView(core).divergent_fields(CoreSoAView(twin))
        assert "prf_values" in fields or "rob_uid" in fields

    def test_assert_unwatched_passes_on_clean_core(self):
        assert_unwatched(_warm_core())

    def test_assert_unwatched_catches_prf_watch(self):
        core = _warm_core()
        core.prf.write = core.prf.write     # instance-level shadow
        with pytest.raises(RuntimeError, match="PRF write watch"):
            assert_unwatched(core)
        with pytest.raises(RuntimeError):
            CoreCheckpoint.capture(core)    # checkpoint guard fires too
        del core.prf.write
        assert_unwatched(core)
        assert CoreCheckpoint.capture(core).restore() is not None

    def test_assert_unwatched_catches_rename_watch(self):
        core = _warm_core()
        rat = core.threads[0].spec_rat
        rat.set = rat.set
        with pytest.raises(RuntimeError, match="rename-table watch"):
            assert_unwatched(core)
        del rat.set
        assert_unwatched(core)
