"""Assembler round-trip property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, assemble
from repro.isa.assembler import disassemble

from .program_gen import random_program


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_disassemble_reassemble_fixpoint(seed):
    """disassemble() output, reassembled, yields identical instructions —
    and a second round trip is a fixpoint."""
    program = random_program(random.Random(seed), body_len=18)
    text = disassemble(program).replace("@", "")
    once = assemble(text)
    assert once.instructions == program.instructions
    text_again = disassemble(once).replace("@", "")
    assert assemble(text_again).instructions == once.instructions


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(list(Opcode)),
       st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
       st.integers(-(1 << 20), (1 << 20) - 1))
def test_single_instruction_round_trip(opcode, rd, rs1, rs2, imm):
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE,
                  Opcode.JMP):
        imm = 0  # branch target must be in range for a 1-instruction body
    inst = Instruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm)
    text = str(inst).replace("@", "")
    program = assemble(text + "\nhalt" if opcode is not Opcode.HALT
                       else text)
    decoded = program.instructions[0]
    assert decoded.opcode is inst.opcode
    uses_imm = opcode in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI,
                          Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
                          Opcode.MOVI, Opcode.LD, Opcode.ST,
                          Opcode.BEQ, Opcode.BNE, Opcode.BLT,
                          Opcode.BGE, Opcode.JMP)
    if uses_imm:
        assert decoded.imm == inst.imm
    # operand fields that the opcode actually uses must round-trip
    if inst.writes_reg:
        assert decoded.rd == inst.rd
    for got, want in zip(decoded.source_regs(), inst.source_regs()):
        assert got == want


def test_whitespace_and_case_insensitivity():
    a = assemble("ADD r1, r2, r3\nHALT")
    b = assemble("  add   r1 ,r2,  r3\nhalt")
    assert a.instructions == b.instructions
