"""Golden-interpreter unit tests."""

import pytest

from repro.config import VALUE_MASK
from repro.isa import Interpreter, Opcode, assemble
from repro.isa.interpreter import run_program
from repro.isa.semantics import MEMORY_LIMIT, alu_result, branch_taken


def run(src, **kwargs):
    return run_program(assemble(src), **kwargs)


def test_movi_and_add():
    state = run("""
        movi r1, 11
        movi r2, 31
        add  r3, r1, r2
        halt
    """)
    assert state.regs[3] == 42
    assert state.halted


def test_r0_is_hardwired_zero():
    state = run("""
        movi r0, 123
        add  r1, r0, r0
        halt
    """)
    assert state.regs[0] == 0
    assert state.regs[1] == 0


def test_arithmetic_wraps_64_bits():
    state = run("""
        movi r1, -1
        addi r2, r1, 1
        halt
    """)
    assert state.regs[1] == VALUE_MASK
    assert state.regs[2] == 0


def test_load_store_round_trip():
    state = run("""
        movi r1, 0x1000
        movi r2, 77
        st   r2, 0(r1)
        ld   r3, 0(r1)
        halt
    """)
    assert state.regs[3] == 77
    assert state.memory[0x1000] == 77


def test_uninitialized_memory_reads_zero():
    state = run("""
        movi r1, 0x2000
        ld   r2, 0(r1)
        halt
    """)
    assert state.regs[2] == 0


def test_loop_with_backward_branch():
    state = run("""
        movi r1, 10
        movi r2, 0
        loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    assert state.regs[2] == sum(range(1, 11))


def test_branch_comparisons_are_unsigned():
    assert branch_taken(Opcode.BLT, 1, VALUE_MASK)
    assert not branch_taken(Opcode.BLT, VALUE_MASK, 1)
    assert branch_taken(Opcode.BGE, VALUE_MASK, 1)


def test_shift_amount_masked_to_six_bits():
    assert alu_result(Opcode.SLL, 1, 64, 0) == 1
    assert alu_result(Opcode.SLLI, 1, 0, 65) == 2


def test_misaligned_access_is_noisy_exception():
    interp = Interpreter(assemble("""
        movi r1, 3
        ld   r2, 0(r1)
        halt
    """))
    interp.run()
    assert len(interp.exceptions) == 1
    assert interp.exceptions[0].address == 3
    assert interp.state.halted


def test_out_of_segment_access_is_noisy_exception():
    interp = Interpreter(assemble(f"""
        movi r1, {MEMORY_LIMIT}
        st   r1, 0(r1)
        halt
    """))
    interp.run()
    assert len(interp.exceptions) == 1


def test_run_respects_max_instructions():
    state = run("""
        loop:
        addi r1, r1, 1
        jmp loop
        halt
    """, max_instructions=25)
    assert not state.halted
    assert state.instret == 25


def test_running_off_program_end_halts():
    state = run_program(assemble("nop\nnop"))
    assert state.halted


def test_mem_trace_records_load_store_streams():
    interp = Interpreter(assemble("""
        movi r1, 0x800
        movi r2, 5
        st   r2, 0(r1)
        ld   r3, 0(r1)
        halt
    """))
    interp.trace_memory_ops = True
    interp.run()
    kinds = [kind for kind, _ in interp.mem_trace]
    assert kinds == ["store_addr", "store_value", "load_addr"]


def test_snapshot_equal_for_equal_states():
    src = """
        movi r1, 2
        movi r2, 0x100
        st   r1, 0(r2)
        halt
    """
    assert run(src).snapshot() == run(src).snapshot()


def test_snapshot_ignores_zero_memory_words():
    zeroed = run("""
        movi r1, 0x100
        st   r0, 0(r1)
        movi r1, 0
        halt
    """)
    untouched = run("""
        movi r1, 0
        nop
        nop
        halt
    """)
    assert zeroed.snapshot() == untouched.snapshot()


def test_initial_state_seeding():
    state = run("""
        .reg r5 1000
        .word 0x40 7
        ld r6, 0x40(r0)
        halt
    """)
    assert state.regs[5] == 1000
    assert state.regs[6] == 7
