"""Random, guaranteed-terminating program generator for differential tests.

Programs have the shape:

    <register/memory seeding>
    outer loop (countdown in r1):
        random body: ALU ops, loads/stores in a bounded segment,
        forward conditional skips (never backward, so no extra loops)
    halt

Termination is structural: the only back-edge is the countdown loop and
every other branch jumps forward.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa import Instruction, Opcode, Program

_ALU_RR = [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
           Opcode.SLT, Opcode.MUL, Opcode.FADD, Opcode.FMUL]
_ALU_RI = [Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
           Opcode.SLLI, Opcode.SRLI]

#: Registers the random body may use freely. r1 is the loop counter and
#: r2 the memory base; both are read-only for body instructions.
_BODY_REGS = list(range(3, 16))
_SEGMENT_WORDS = 64


def random_program(rng: random.Random, body_len: int = 20,
                   iterations: int = 8, seed_regs: bool = True) -> Program:
    """Build a random terminating program."""
    instructions: List[Instruction] = [
        Instruction(Opcode.MOVI, rd=1, imm=iterations),
        Instruction(Opcode.MOVI, rd=2, imm=0x1000),
    ]
    if seed_regs:
        for reg in _BODY_REGS[:6]:
            instructions.append(
                Instruction(Opcode.MOVI, rd=reg, imm=rng.randrange(0, 1 << 16)))
    loop_top = len(instructions)

    body: List[Instruction] = []
    for _ in range(body_len):
        body.append(_random_body_instruction(rng, len(body), body_len))
    # resolve forward-skip placeholders now that body length is fixed
    resolved: List[Instruction] = []
    for index, inst in enumerate(body):
        if inst.is_branch and inst.opcode is not Opcode.JMP:
            target = loop_top + min(inst.imm, body_len)
            resolved.append(Instruction(inst.opcode, rs1=inst.rs1,
                                        rs2=inst.rs2, imm=target))
        else:
            resolved.append(inst)
    instructions.extend(resolved)

    back_edge_pc = loop_top + body_len
    instructions.append(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-1))
    instructions.append(Instruction(Opcode.BNE, rs1=1, rs2=0,
                                    imm=loop_top))
    instructions.append(Instruction(Opcode.HALT))
    assert instructions[back_edge_pc].opcode is Opcode.ADDI
    return Program(instructions=instructions, name="random")


def _random_body_instruction(rng: random.Random, position: int,
                             body_len: int) -> Instruction:
    roll = rng.random()
    if roll < 0.45:
        if rng.random() < 0.6:
            return Instruction(rng.choice(_ALU_RR),
                               rd=rng.choice(_BODY_REGS),
                               rs1=rng.choice(_BODY_REGS),
                               rs2=rng.choice(_BODY_REGS))
        imm = rng.randrange(0, 64)
        return Instruction(rng.choice(_ALU_RI),
                           rd=rng.choice(_BODY_REGS),
                           rs1=rng.choice(_BODY_REGS), imm=imm)
    if roll < 0.62:
        offset = 8 * rng.randrange(_SEGMENT_WORDS)
        return Instruction(Opcode.LD, rd=rng.choice(_BODY_REGS),
                           rs1=2, imm=offset)
    if roll < 0.78:
        offset = 8 * rng.randrange(_SEGMENT_WORDS)
        return Instruction(Opcode.ST, rs2=rng.choice(_BODY_REGS),
                           rs1=2, imm=offset)
    if roll < 0.9 and position < body_len - 1:
        # forward conditional skip; imm holds a body-relative target that
        # random_program resolves to an absolute pc
        skip_to = rng.randrange(position + 1, body_len + 1)
        op = rng.choice([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE])
        return Instruction(op, rs1=rng.choice(_BODY_REGS),
                           rs2=rng.choice(_BODY_REGS), imm=skip_to)
    return Instruction(Opcode.MOVI, rd=rng.choice(_BODY_REGS),
                       imm=rng.randrange(0, 1 << 12))
