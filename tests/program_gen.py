"""Compatibility shim: the random program generator was promoted into
``repro.workloads.programs`` so the ``repro verify`` fuzz harness can use
it outside the test tree. Import it from there; this module only keeps
existing ``tests.program_gen`` imports working."""

from repro.workloads.programs import GEN_PROFILES, random_program

__all__ = ["GEN_PROFILES", "random_program"]
