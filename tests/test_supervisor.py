"""Tests for the resilient campaign supervisor.

The contract under test: supervision is a pure reliability layer — on a
healthy machine the supervised serial, supervised pool, crash-retried
and resumed-after-SIGKILL paths all yield bit-for-bit the results of the
plain serial classifier, and a deterministically poisonous window is
bisected and quarantined without taking its neighbours down with it.

Worker chaos is injected through the ``REPRO_CHAOS_*`` environment
variables read by :func:`repro.harness.supervisor.chaos_probe`, which
runs only inside pool workers (never in-process), so the injected
SIGKILLs exercise exactly the `BrokenProcessPool` machinery a real
worker death would.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness import (ExperimentConfig, ExperimentContext, Supervisor,
                           SupervisorPolicy, read_poisoned,
                           summarize_run_dir)
from repro.harness.supervisor import (CampaignAborted, CampaignJournal,
                                      EXIT_ABORTED, EXIT_QUARANTINE,
                                      _chaos_indices)

# geometry matching `repro campaign mcf --faults 10`: produces a small
# but non-empty SDC set, so the coverage phase is exercised for real
_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=2_200,
                         num_faults=10, warmup_commits=400,
                         window_commits=150, max_window_cycles=60_000)

_FAST_BACKOFF = dict(backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(scope="module")
def serial_reference():
    ctx = ExperimentContext(_TINY, jobs=1)
    _, characterization = ctx.campaign("mcf")
    coverage = ctx.coverage("mcf", "faulthound")
    return characterization, coverage


# ----------------------------------------------------------------------
# equivalence on a healthy machine
# ----------------------------------------------------------------------
class TestSupervisedEquivalence:
    def test_supervised_serial_matches_serial(self, serial_reference):
        s_char, s_cov = serial_reference
        sup = Supervisor(SupervisorPolicy(chunk_windows=3))
        ctx = ExperimentContext(_TINY, jobs=1, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        assert characterization.characterization == s_char.characterization
        assert coverage.coverage_results == s_cov.coverage_results
        assert sup.status == "complete" and sup.exit_code == 0

    def test_supervised_pool_matches_serial(self, serial_reference,
                                            tmp_path):
        s_char, s_cov = serial_reference
        sup = Supervisor(SupervisorPolicy(chunk_windows=3),
                         run_dir=tmp_path / "run")
        ctx = ExperimentContext(_TINY, jobs=3, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        sup.close()
        assert characterization.characterization == s_char.characterization
        assert coverage.coverage_results == s_cov.coverage_results
        assert sup.status == "complete" and sup.exit_code == 0
        # supervisor instrumentation reaches the throughput record
        assert characterization.throughput.retries == 0
        assert characterization.throughput.quarantined == 0
        records = list(CampaignJournal.read(tmp_path / "run"))
        types = [r["type"] for r in records]
        assert "plan" in types and "chunk_done" in types
        assert types.count("phase_done") == 2    # characterize + coverage

    def test_transient_crashes_retried_to_convergence(
            self, serial_reference, monkeypatch):
        """Random worker SIGKILLs are retried (on rebuilt pools) until
        every chunk lands; nobody is quarantined, results identical."""
        s_char, _ = serial_reference
        monkeypatch.setenv("REPRO_CHAOS_CRASH_RATE", "0.3")
        sup = Supervisor(SupervisorPolicy(max_retries=6, chunk_windows=2,
                                          **_FAST_BACKOFF))
        ctx = ExperimentContext(_TINY, jobs=3, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        assert characterization.characterization == s_char.characterization
        assert sup.status == "complete"
        assert not sup.quarantined
        retries = sum(r.retries for r in sup.reports)
        rebuilds = sum(r.pool_rebuilds for r in sup.reports)
        assert retries > 0 or rebuilds > 0


# ----------------------------------------------------------------------
# serial backoff must not block dispatch
# ----------------------------------------------------------------------
class TestSerialBackoff:
    def test_ready_chunks_dispatch_while_one_backs_off(
            self, serial_reference, monkeypatch):
        """Regression: the serial path used to ``time.sleep`` through a
        failed chunk's whole backoff delay and then retry it at the
        front, so one flaky chunk stalled every ready chunk behind it.
        Now a backing-off chunk is skipped and revisited: the very next
        dispatch after the failure must be a *different* chunk, and the
        failed one still completes (from its rewind clone) later."""
        s_char, _ = serial_reference
        from repro.faults.classifier import TandemClassifier
        real_run = TandemClassifier.run
        calls, tripped = [], []

        def spy(self, records, **kwargs):
            calls.append(records[0].index)
            if records[0].index == 0 and not tripped:
                tripped.append(True)
                raise RuntimeError("injected transient failure")
            return real_run(self, records, **kwargs)

        monkeypatch.setattr(TandemClassifier, "run", spy)
        sup = Supervisor(SupervisorPolicy(max_retries=3, chunk_windows=3,
                                          backoff_base=0.75,
                                          backoff_max=1.0))
        ctx = ExperimentContext(_TINY, jobs=1, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        assert sup.status == "complete"
        assert not sup.quarantined
        assert characterization.characterization == s_char.characterization
        # first dispatch was chunk 0 and it failed; with 0 backing off
        # for >= 0.75 s the dispatcher moved on instead of sleeping
        assert calls[0] == 0
        assert calls[1] != 0, (
            "a chunk in backoff was retried immediately instead of "
            "letting ready chunks dispatch")
        assert 0 in calls[1:]       # ...and the chunk was revisited


# ----------------------------------------------------------------------
# poison-window quarantine
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_poison_window_quarantined_alone(self, serial_reference,
                                             monkeypatch, tmp_path):
        """A deterministically crashing window is bisected down and
        quarantined; its innocent pool-mates all complete bit-for-bit."""
        s_char, _ = serial_reference
        monkeypatch.setenv("REPRO_CHAOS_POISON", "baseline:4")
        run_dir = tmp_path / "run"
        sup = Supervisor(SupervisorPolicy(max_retries=1, chunk_windows=3,
                                          **_FAST_BACKOFF),
                         run_dir=run_dir)
        ctx = ExperimentContext(_TINY, jobs=3, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        sup.close()
        assert sup.status == "complete-with-quarantine"
        assert sup.exit_code == EXIT_QUARANTINE
        assert [q.index for q in sup.quarantined] == [4]
        assert sup.quarantined[0].reason == "crash"
        expected = [w for i, w in enumerate(s_char.characterization)
                    if i != 4]
        assert characterization.characterization == expected
        assert characterization.quarantined == sup.quarantined
        assert characterization.throughput.quarantined == 1
        # the quarantine is journalled and in poisoned.jsonl
        poisoned = read_poisoned(run_dir)
        assert len(poisoned) == 1 and poisoned[0]["index"] == 4
        assert '"index": 4' in (run_dir / "poisoned.jsonl").read_text()
        summary = summarize_run_dir(run_dir)
        assert summary["poisoned"] == 1
        assert summary["poisoned_windows"][0]["index"] == 4

    def test_hung_window_times_out_and_quarantines(self, serial_reference,
                                                   monkeypatch, tmp_path):
        """A worker that never returns trips the hard watchdog deadline
        instead of wedging the campaign."""
        s_char, _ = serial_reference
        monkeypatch.setenv("REPRO_CHAOS_HANG", "baseline:2")
        sup = Supervisor(SupervisorPolicy(max_retries=1, bisect_retries=0,
                                          chunk_windows=3,
                                          chunk_timeout=1.5,
                                          soft_timeout_factor=0.0,
                                          **_FAST_BACKOFF),
                         run_dir=tmp_path / "run")
        ctx = ExperimentContext(_TINY, jobs=3, supervisor=sup)
        _, characterization = ctx.campaign("mcf")
        sup.close()
        assert sup.status == "complete-with-quarantine"
        assert [q.index for q in sup.quarantined] == [2]
        assert sup.quarantined[0].reason == "timeout"
        assert sum(r.timeouts for r in sup.reports) > 0
        expected = [w for i, w in enumerate(s_char.characterization)
                    if i != 2]
        assert characterization.characterization == expected

    def test_chaos_index_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS_POISON",
                           "baseline:4, faulthound:2, 7")
        var = "REPRO_CHAOS_POISON"
        assert _chaos_indices(var, "baseline") == [4, 7]
        assert _chaos_indices(var, "faulthound") == [2, 7]
        assert _chaos_indices(var, "pbfs") == [7]
        monkeypatch.delenv("REPRO_CHAOS_POISON")
        assert _chaos_indices(var, "baseline") == []


# ----------------------------------------------------------------------
# graceful degradation: the downshift ladder
# ----------------------------------------------------------------------
class TestDownshiftLadder:
    def test_build_failure_walks_8_4_2_1_inprocess(
            self, serial_reference, monkeypatch, tmp_path):
        """When the pool cannot be built at all, the supervisor halves
        the worker count step by step (8 -> 4 -> 2 -> 1) and finally
        degrades to in-process execution — emitting a ``degradation``
        event at every rung — instead of aborting, and the results are
        still bit-for-bit the serial reference."""
        from repro.obs import EventLog, read_events
        s_char, _ = serial_reference
        monkeypatch.setattr(
            Supervisor, "_build_pool",
            lambda self, phase_ctx, workers, report: None)
        events_path = tmp_path / "events.jsonl"
        events = EventLog(events_path)
        sup = Supervisor(SupervisorPolicy(pool_break_limit=1,
                                          chunk_windows=3,
                                          **_FAST_BACKOFF))
        ctx = ExperimentContext(_TINY, jobs=8, supervisor=sup,
                                events=events)
        _, characterization = ctx.campaign("mcf")
        events.close()
        assert characterization.characterization == s_char.characterization
        assert sup.status == "complete"
        assert not sup.quarantined
        assert sup._force_serial
        ladder = [(e["jobs_from"], e["jobs_to"])
                  for e in read_events(events_path)
                  if e.get("type") == "degradation"]
        assert ladder == [(8, 4), (4, 2), (2, 1), (1, 0)]
        assert sum(r.downshifts for r in sup.reports) == 4

    def test_submit_failure_downshifts_without_charging_chunks(
            self, serial_reference, monkeypatch, tmp_path):
        """A pool that builds but whose ``submit`` raises walks the
        same ladder through the rebuild path; the failed submissions
        never charge chunk attempts, so nothing is quarantined."""
        from repro.obs import EventLog, read_events

        class _BrokenPool:
            def submit(self, *args, **kwargs):
                raise OSError("injected submit failure")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        s_char, _ = serial_reference
        monkeypatch.setattr(
            Supervisor, "_build_pool",
            lambda self, phase_ctx, workers, report: _BrokenPool())
        events_path = tmp_path / "events.jsonl"
        events = EventLog(events_path)
        sup = Supervisor(SupervisorPolicy(pool_break_limit=1,
                                          chunk_windows=3, max_retries=1,
                                          **_FAST_BACKOFF))
        ctx = ExperimentContext(_TINY, jobs=4, supervisor=sup,
                                events=events)
        _, characterization = ctx.campaign("mcf")
        events.close()
        assert characterization.characterization == s_char.characterization
        assert sup.status == "complete"
        assert not sup.quarantined
        assert sup._force_serial
        ladder = [(e["jobs_from"], e["jobs_to"])
                  for e in read_events(events_path)
                  if e.get("type") == "degradation"]
        assert ladder == [(4, 2), (2, 1), (1, 0)]
        assert sum(r.pool_rebuilds for r in sup.reports) >= 3

    def test_degraded_path_never_caches_partial_results(
            self, serial_reference, monkeypatch, tmp_path):
        """The in-process fallback honours the no-partial-caching rule:
        a phase that quarantined a window on the degraded path must not
        publish its reduced result to the artifact cache."""
        from repro.faults.classifier import TandemClassifier
        from repro.harness import ArtifactCache
        monkeypatch.setattr(
            Supervisor, "_build_pool",
            lambda self, phase_ctx, workers, report: None)
        real_run = TandemClassifier.run

        def poisoned(self, records, **kwargs):
            if any(record.index == 0 for record in records):
                raise RuntimeError("injected deterministic poison")
            return real_run(self, records, **kwargs)

        monkeypatch.setattr(TandemClassifier, "run", poisoned)
        cache = ArtifactCache(tmp_path / "cache")
        sup = Supervisor(SupervisorPolicy(pool_break_limit=1,
                                          max_retries=1, chunk_windows=3,
                                          **_FAST_BACKOFF))
        ctx = ExperimentContext(_TINY, jobs=2, supervisor=sup,
                                cache=cache)
        _, characterization = ctx.campaign("mcf")
        assert sup.status == "complete-with-quarantine"
        assert [q.index for q in sup.quarantined] == [0]
        assert characterization.quarantined == sup.quarantined
        assert not list((tmp_path / "cache").rglob("characterize/*.pkl"))


# ----------------------------------------------------------------------
# drain / abort
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_aborts_with_resume_hint(self, tmp_path):
        run_dir = tmp_path / "run"
        sup = Supervisor(SupervisorPolicy(chunk_windows=3),
                         run_dir=run_dir)
        sup.request_drain()
        ctx = ExperimentContext(_TINY, jobs=1, supervisor=sup)
        with pytest.raises(CampaignAborted) as excinfo:
            ctx.campaign("mcf")
        sup.close()
        assert sup.status == "aborted"
        assert sup.exit_code == EXIT_ABORTED
        assert "repro resume" in str(excinfo.value)

    def test_graceful_handler_requests_drain(self):
        before = signal.getsignal(signal.SIGTERM)
        sup = Supervisor(SupervisorPolicy())
        with sup.graceful():
            os.kill(os.getpid(), signal.SIGTERM)
            # the handler runs synchronously on the main thread
            assert sup.drain
        # original disposition restored on exit
        assert signal.getsignal(signal.SIGTERM) == before


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_truncated_tail_is_noted(self, tmp_path):
        """A torn final line (writer SIGKILLed mid-append) is surfaced
        as a synthetic ``truncated_tail`` record — visible to audits,
        ignored by resume's replay — instead of being silently dropped
        or failing the read."""
        journal = CampaignJournal(tmp_path)
        journal.append({"type": "plan", "chunks": 4})
        journal.append({"type": "chunk_done", "key": "k", "lo": 0,
                        "hi": 3, "windows": 3, "attempt": 1})
        journal.close()
        torn = '{"type": "chunk_done", "key": "trunc'
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write(torn)
        records = list(CampaignJournal.read(tmp_path))
        assert [r["type"] for r in records] == [
            "plan", "chunk_done", "truncated_tail"]
        note = records[-1]
        assert note["line"] == 3
        assert note["bytes"] == len(torn.encode("utf-8"))

    def test_interior_corruption_is_loud(self, tmp_path):
        """Garbage *before* the final line is real corruption, not a
        torn append — the read fails with the offending line number."""
        journal = CampaignJournal(tmp_path)
        journal.append({"type": "plan", "chunks": 4})
        journal.close()
        with open(tmp_path / "journal.jsonl", "a") as handle:
            handle.write("not json at all\n")
            handle.write('{"type": "chunk_done", "key": "k"}\n')
        with pytest.raises(ValueError, match="journal.jsonl:2"):
            CampaignJournal.read(tmp_path)

    def test_resume_survives_torn_tail(self, serial_reference, tmp_path):
        """End to end: a journal whose writer died mid-append still
        resumes, adopts every complete chunk_done, and converges to the
        serial reference bit-for-bit."""
        s_char, _ = serial_reference
        run_dir = tmp_path / "run"
        policy = SupervisorPolicy(chunk_windows=3)
        first = Supervisor(policy, run_dir=run_dir)
        ctx = ExperimentContext(_TINY, jobs=2, supervisor=first)
        ctx.campaign("mcf")
        first.close()
        # tear the tail the way a SIGKILL mid-append would
        with open(run_dir / "journal.jsonl", "a") as handle:
            handle.write('{"type": "chunk_done", "key": "torn", "lo"')
        second = Supervisor(policy, run_dir=run_dir)
        ctx2 = ExperimentContext(_TINY, jobs=2, supervisor=second)
        _, characterization = ctx2.campaign("mcf")
        second.close()
        assert characterization.characterization == s_char.characterization
        assert sum(r.chunks_resumed for r in second.reports) > 0

    def test_resume_skips_journalled_chunks(self, serial_reference,
                                            tmp_path):
        """Re-running a completed campaign in the same run dir adopts
        every chunk from the journal and recomputes nothing."""
        s_char, s_cov = serial_reference
        run_dir = tmp_path / "run"
        policy = SupervisorPolicy(chunk_windows=3)
        first = Supervisor(policy, run_dir=run_dir)
        ctx = ExperimentContext(_TINY, jobs=2, supervisor=first)
        ctx.campaign("mcf")
        ctx.coverage("mcf", "faulthound")
        first.close()

        second = Supervisor(policy, run_dir=run_dir)
        ctx2 = ExperimentContext(_TINY, jobs=2, supervisor=second)
        _, characterization = ctx2.campaign("mcf")
        coverage = ctx2.coverage("mcf", "faulthound")
        second.close()
        assert characterization.characterization == s_char.characterization
        assert coverage.coverage_results == s_cov.coverage_results
        assert all(r.chunks_run == 0 for r in second.reports)
        assert sum(r.chunks_resumed for r in second.reports) > 0


# ----------------------------------------------------------------------
# SIGKILL + resume, end to end via the CLI
# ----------------------------------------------------------------------
def _campaign_argv(run_dir, jobs):
    return [sys.executable, "-m", "repro.cli", "campaign", "mcf",
            "--scheme", "faulthound", "--faults", "10",
            "--jobs", str(jobs), "--no-cache", "--run-dir", str(run_dir)]


def _cli_env():
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    return env


@pytest.mark.slow
@pytest.mark.timeout(300)
@pytest.mark.parametrize("jobs", [1, 4])
def test_sigkill_then_resume_is_bit_for_bit(tmp_path, jobs):
    env = _cli_env()
    ref_dir = tmp_path / "ref"
    reference = subprocess.run(_campaign_argv(ref_dir, jobs), env=env,
                               capture_output=True, text=True, timeout=240)
    assert reference.returncode == 0, reference.stderr

    int_dir = tmp_path / "interrupted"
    victim = subprocess.Popen(_campaign_argv(int_dir, jobs), env=env,
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL,
                              start_new_session=True)
    journal = int_dir / "journal.jsonl"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if journal.exists() and "chunk_done" in journal.read_text():
                break
            time.sleep(0.05)
        assert victim.poll() is None, "campaign finished before the kill"
    finally:
        try:
            os.killpg(victim.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        victim.wait(timeout=30)

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume", str(int_dir)],
        env=env, capture_output=True, text=True, timeout=240)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == reference.stdout
    records = list(CampaignJournal.read(int_dir))
    assert any(r["type"] == "resume" for r in records)


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_sigkill_then_resume_cache_warm(tmp_path):
    """Resume equivalence with a warm artifact cache: chunk adoption and
    cache hits must not double-apply."""
    env = _cli_env()
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    # drop --no-cache everywhere so the artifact cache actually warms up
    argv = [a for a in _campaign_argv(tmp_path / "warm", 2)
            if a != "--no-cache"]
    warm = subprocess.run(argv, env=env, capture_output=True, text=True,
                          timeout=240)
    assert warm.returncode == 0, warm.stderr
    argv = [a for a in _campaign_argv(tmp_path / "ref", 2)
            if a != "--no-cache"]
    reference = subprocess.run(argv, env=env, capture_output=True,
                               text=True, timeout=240)
    assert reference.returncode == 0, reference.stderr

    int_dir = tmp_path / "interrupted"
    argv = [a for a in _campaign_argv(int_dir, 2) if a != "--no-cache"]
    victim = subprocess.Popen(argv, env=env, stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL,
                              start_new_session=True)
    time.sleep(0.3)
    try:
        os.killpg(victim.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    victim.wait(timeout=30)

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume", str(int_dir)],
        env=env, capture_output=True, text=True, timeout=240)
    if not (int_dir / "campaign.json").exists():
        # the kill can land before the manifest write; then there is
        # nothing to resume and the CLI must say so
        assert resumed.returncode == 1
        assert "campaign.json" in resumed.stderr
        return
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == reference.stdout
