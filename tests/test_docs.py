"""Documentation health: the docs' code snippets must actually run."""

import doctest
import pathlib
import re

DOCS = pathlib.Path(__file__).parent.parent / "docs"
ROOT = pathlib.Path(__file__).parent.parent


def test_mechanisms_doc_snippets_execute():
    results = doctest.testfile(
        str(DOCS / "mechanisms.md"), module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS)
    assert results.attempted > 5, "expected several doctest snippets"
    assert results.failed == 0


def test_readme_mentions_all_deliverables():
    readme = (ROOT / "README.md").read_text()
    for anchor in ("DESIGN.md", "EXPERIMENTS.md", "examples/",
                   "pytest tests/", "benchmarks/"):
        assert anchor in readme, f"README missing {anchor}"


def test_design_doc_covers_every_figure():
    design = (ROOT / "DESIGN.md").read_text()
    for figure in ("Fig 6", "Fig 7", "Fig 8a", "Fig 8b", "Fig 9",
                   "Fig 10", "Fig 11", "Fig 12", "Table 1", "Table 2"):
        assert figure in design, f"DESIGN.md missing {figure}"


def test_design_module_map_matches_tree():
    """Every module named in DESIGN.md's inventory must exist."""
    design = (ROOT / "DESIGN.md").read_text()
    block = design.split("```")[1]
    for line in block.splitlines():
        match = re.match(r"\s+(\w[\w/]*\.py)", line)
        if not match:
            continue
        name = match.group(1)
        # paths are relative to src/repro/<subpackage>/ per the layout
        candidates = list((ROOT / "src" / "repro").rglob(name.split("/")[-1]))
        assert candidates, f"DESIGN.md names missing module {name}"


def test_all_public_modules_have_docstrings():
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        source = path.read_text()
        stripped = source.lstrip()
        assert stripped.startswith(('"""', "'''")), \
            f"{path.relative_to(ROOT)} lacks a module docstring"
