"""Unit tests for the Figure 11 outcome attribution logic."""

import pytest

from repro.faults.campaign import _attribute
from repro.faults.classifier import WindowResult
from repro.faults.model import (CoverageOutcome, FaultRecord, FaultSite,
                                RegStatus)


def window(site=FaultSite.REGFILE, reg_status=None, **kwargs):
    record = FaultRecord(index=0, site=site, inject_at_commit=100, bit=4,
                         reg=10, thread_id=0, reg_status=reg_status)
    defaults = dict(state_equal=False, extra_exceptions=0, triggers=0,
                    replays=0, rollbacks=0, singletons=0, declared=0,
                    suppressions=0)
    defaults.update(kwargs)
    return WindowResult(record=record, **defaults)


def test_state_equal_is_recovered():
    assert _attribute(window(state_equal=True)) \
        is CoverageOutcome.RECOVERED


def test_declared_fault_is_detected():
    assert _attribute(window(declared=1)) is CoverageOutcome.DETECTED


def test_extra_exception_is_detected():
    assert _attribute(window(extra_exceptions=1)) \
        is CoverageOutcome.DETECTED


def test_rename_site_uncovered():
    result = _attribute(window(site=FaultSite.RENAME, triggers=3,
                               replays=1))
    assert result is CoverageOutcome.UNCOVERED_RENAME


def test_rename_recovery_beats_rename_bin():
    result = _attribute(window(site=FaultSite.RENAME, state_equal=True))
    assert result is CoverageOutcome.RECOVERED


def test_no_trigger_bin():
    assert _attribute(window(triggers=0)) is CoverageOutcome.NO_TRIGGER


def test_second_level_masked_bin():
    result = _attribute(window(triggers=3, suppressions=3))
    assert result is CoverageOutcome.SECOND_LEVEL_MASKED


def test_suppression_with_recovery_action_not_second_level():
    """If a replay also ran, the loss is not the second-level filter's."""
    result = _attribute(window(triggers=3, suppressions=2, replays=1,
                               reg_status=RegStatus.COMMITTED))
    assert result is CoverageOutcome.COMPLETED_REG


def test_completed_reg_bin():
    result = _attribute(window(triggers=2, replays=2,
                               reg_status=RegStatus.COMPLETED))
    assert result is CoverageOutcome.COMPLETED_REG


def test_other_bin():
    result = _attribute(window(triggers=2, replays=2,
                               reg_status=RegStatus.PENDING))
    assert result is CoverageOutcome.OTHER


def test_is_covered_property():
    assert CoverageOutcome.RECOVERED.is_covered
    assert CoverageOutcome.DETECTED.is_covered
    assert not CoverageOutcome.NO_TRIGGER.is_covered
    assert not CoverageOutcome.UNCOVERED_RENAME.is_covered
