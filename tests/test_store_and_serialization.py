"""Result persistence and configuration serialisation tests."""

import pytest

from repro.config import (FaultHoundConfig, HardwareConfig, PBFSConfig,
                          config_from_dict, config_to_dict)
from repro.errors import ConfigurationError
from repro.harness import ExperimentConfig
from repro.harness.store import ResultStore


class TestConfigSerialization:
    @pytest.mark.parametrize("cls", [FaultHoundConfig, PBFSConfig,
                                     HardwareConfig])
    def test_round_trip(self, cls):
        original = cls()
        data = config_to_dict(original)
        rebuilt = config_from_dict(cls, data)
        assert rebuilt == original

    def test_round_trip_non_default(self):
        original = FaultHoundConfig(tcam_entries=16, second_level=False)
        rebuilt = config_from_dict(FaultHoundConfig,
                                   config_to_dict(original))
        assert rebuilt.tcam_entries == 16
        assert not rebuilt.second_level

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            config_from_dict(FaultHoundConfig, {"bogus": 1})

    def test_non_dataclass_rejected(self):
        with pytest.raises(ConfigurationError):
            config_to_dict("not a config")
        with pytest.raises(ConfigurationError):
            config_from_dict(dict, {})


class TestResultStore:
    def test_save_and_load(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        payload = {"rows": {"mcf": {"coverage": 0.8}}, "text": "table"}
        path = store.save("fig8", payload, config=ExperimentConfig())
        assert path.exists()
        document = store.load("fig8")
        assert document["payload"]["rows"]["mcf"]["coverage"] == 0.8
        assert document["config"]["num_faults"] == \
            ExperimentConfig().num_faults

    def test_names_and_exists(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.exists("a")
        store.save("a", {"x": 1})
        store.save("b", {"x": 2})
        assert store.names() == ["a", "b"]
        assert store.exists("a")

    def test_delete(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("gone", {})
        store.delete("gone")
        assert not store.exists("gone")
        store.delete("gone")  # idempotent

    def test_bad_names_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError):
            store.save("../escape", {})
        with pytest.raises(ValueError):
            store.save(".hidden", {})

    def test_jsonable_conversion(self, tmp_path):
        from repro.core.actions import CheckAction
        store = ResultStore(tmp_path)
        store.save("enumy", {"action": CheckAction.REPLAY,
                             "tuple": (1, 2),
                             "nested": {"config": FaultHoundConfig()}})
        doc = store.load("enumy")
        assert doc["payload"]["action"] == "replay"
        assert doc["payload"]["tuple"] == [1, 2]
        assert doc["payload"]["nested"]["config"]["tcam_entries"] == 32
