"""Regression tests for the stale store-to-load-forwarding fix.

Historical bug: ``LoadStoreQueue.forward_value`` treated the newest
address-matching older store with an *unresolved value* as a plain miss,
so the load read stale memory — and because ``violating_loads`` only
re-checks when a store resolves its *address* (already resolved here),
nothing ever caught the stale read. The fix returns a third state
(``ForwardStatus.STALL``) and the core bounces/holds the load until the
store's value exists.

Fault-free, stores resolve address and value atomically, so the STALL
state is unreachable in normal runs (timing is bit-for-bit unchanged);
these tests construct the in-between state directly.
"""

from repro.isa import Instruction, Opcode, Program
from repro.pipeline import ForwardStatus, PipelineCore
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.uops import OpState

from .test_pipeline_components import make_op


class TestForwardStatus:
    def test_truthiness_matches_hit(self):
        # legacy call sites unpack `hit, value, uid` and branch on truth
        assert ForwardStatus.HIT
        assert not ForwardStatus.MISS
        assert not ForwardStatus.STALL

    def test_unresolved_value_store_stalls(self):
        # the regression: this returned MISS (False) on the old code
        lsq = LoadStoreQueue(8)
        store = make_op(1, Opcode.ST, rs1=1, rs2=2)
        load = make_op(2, Opcode.LD, rd=4, rs1=1)
        lsq.push(store)
        lsq.push(load)
        store.eff_addr = 0x100
        store.store_value = None
        status, value, uid = lsq.forward_value(load, 0x100)
        assert status is ForwardStatus.STALL
        assert value is None and uid is None

    def test_resolved_value_still_hits(self):
        lsq = LoadStoreQueue(8)
        store = make_op(1, Opcode.ST, rs1=1, rs2=2)
        load = make_op(2, Opcode.LD, rd=4, rs1=1)
        lsq.push(store)
        lsq.push(load)
        store.eff_addr, store.store_value = 0x100, 7
        status, value, uid = lsq.forward_value(load, 0x100)
        assert status is ForwardStatus.HIT and value == 7 and uid == 1

    def test_unresolved_value_shadowed_by_newer_store(self):
        # only the *newest* matching older store gates the load: a newer
        # resolved store to the same address forwards despite an older
        # pending one
        lsq = LoadStoreQueue(8)
        s1 = make_op(1, Opcode.ST, rs1=1, rs2=2)
        s2 = make_op(2, Opcode.ST, rs1=1, rs2=3)
        load = make_op(3, Opcode.LD, rd=4, rs1=1)
        for op in (s1, s2, load):
            lsq.push(op)
        s1.eff_addr, s1.store_value = 0x100, None
        s2.eff_addr, s2.store_value = 0x100, 22
        status, value, uid = lsq.forward_value(load, 0x100)
        assert status is ForwardStatus.HIT and value == 22 and uid == 2


def _build_program(blocker=30):
    """A store/load pair to the same address, arranged so the stale
    window is reachable deterministically:

    - a dependent MUL chain ahead of the store blocks commit for
      ~4*blocker cycles (the store completes long before it may commit);
    - the load's address register is produced by its own short MUL
      chain that collapses to the store's base, so the load becomes
      issue-ready only *after* the store has resolved.
    """
    instructions = [
        Instruction(Opcode.MOVI, rd=2, imm=0x1000),
        Instruction(Opcode.MOVI, rd=3, imm=42),
        Instruction(Opcode.MOVI, rd=5, imm=3),
    ]
    instructions += [Instruction(Opcode.MUL, rd=5, rs1=5, rs2=5)
                     for _ in range(blocker)]
    instructions += [
        Instruction(Opcode.ST, rs2=3, rs1=2, imm=0),
        Instruction(Opcode.MOVI, rd=6, imm=1),
        Instruction(Opcode.MUL, rd=6, rs1=6, rs2=6),
        Instruction(Opcode.MUL, rd=6, rs1=6, rs2=6),
        Instruction(Opcode.ANDI, rd=6, rs1=6, imm=0),
        Instruction(Opcode.ADD, rd=6, rs1=6, rs2=2),
        Instruction(Opcode.LD, rd=4, rs1=6, imm=0),
        Instruction(Opcode.HALT),
    ]
    return Program(instructions=instructions, name="stale-forward")


class TestStaleForwardingEndToEnd:
    def test_load_waits_for_store_value(self):
        """Drive the core into the store-resolved-address /
        unresolved-value window and check the load never consumes stale
        memory. Fails on the pre-fix core: the load completes with the
        stale memory value (0) inside the window and retires it."""
        core = PipelineCore([_build_program()],
                            thread_options=[{"ideal_memory": True}])
        thread = core.threads[0]

        # 1. run until the store has completed (address+value resolved)
        #    but cannot commit yet (MUL chain ahead of it in the ROB);
        #    the load is not yet issue-ready (its address chain is slower)
        store = None
        for _ in range(2_000):
            core.step()
            store = next((op for op in thread.lsq
                          if op.is_store and op.state is OpState.COMPLETED),
                         None)
            if store is not None:
                break
        assert store is not None, "store never completed"
        assert store.store_value == 42
        load = next(op for op in thread.rob if op.is_load)
        assert load.state is not OpState.COMPLETED

        # 2. tear the value away — the exact transient the fix defends
        #    against (address-resolved store whose value is pending)
        store.store_value = None

        # 3. a window well inside the commit blocker: the load becomes
        #    issue-ready here. Fixed core: held at issue (STALL), never
        #    completes. Old core: treats the pending store as a miss,
        #    reads stale memory and completes with 0.
        for _ in range(40):
            core.step()
            assert load.state is not OpState.COMPLETED, \
                "load consumed a stale value while the store's value " \
                "was unresolved"
        assert store.state is not OpState.COMMITTED

        # 4. the store's value turns up; everything drains normally and
        #    the load observes the forwarded (correct) value
        store.store_value = 42
        core.run(max_cycles=100_000)
        assert core.all_halted
        assert thread.arch_reg_value(4, core.prf) == 42
        assert thread.memory.read(0x1000) == 42

    def test_fault_free_run_forwards_normally(self):
        """Fault-free, stores resolve address and value atomically, so
        the three-state probe never stalls anything: the pair still
        forwards and the program retires the stored value."""
        core = PipelineCore([_build_program(blocker=10)])
        core.run(max_cycles=100_000)
        assert core.all_halted
        assert core.stats.forwarded_loads >= 1
        assert core.threads[0].arch_reg_value(4, core.prf) == 42
