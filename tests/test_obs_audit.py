"""Fault-audit-trail tests.

The acceptance contract: one audit record per injected fault, and the
aggregates (recovery mix, detection-latency histogram) are bit-for-bit
identical across serial, parallel and warm-cache executions.
"""

import pytest

from repro.harness.cache import ArtifactCache
from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.obs import (EventLog, aggregates_from_events, audit_aggregates,
                       audit_records, detection_latency_histogram,
                       read_events, recovery_mix)
from repro.obs.audit import LATENCY_BINS, LATENCY_BIN_WIDTH

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=10, warmup_commits=200,
                         window_commits=100)


@pytest.fixture(scope="module")
def serial_ctx():
    ctx = ExperimentContext(_TINY, jobs=1)
    ctx.campaign("mcf")
    ctx.coverage("mcf", "faulthound")
    return ctx


# ----------------------------------------------------------------------
# record derivation
# ----------------------------------------------------------------------
class TestAuditRecords:
    def test_one_record_per_campaign_fault(self, serial_ctx):
        _, characterization = serial_ctx.campaign("mcf")
        records = audit_records(characterization, "characterize")
        assert len(records) == _TINY.num_faults
        assert len(records) == len(characterization.records)
        indices = [r.index for r in records]
        assert indices == sorted(indices)

    def test_coverage_records_join_outcomes(self, serial_ctx):
        coverage = serial_ctx.coverage("mcf", "faulthound")
        records = audit_records(coverage, "coverage")
        assert len(records) == len(coverage.coverage_results)
        for record in records:
            assert record.phase == "coverage"
            assert record.scheme == "faulthound"
            joined = coverage.outcomes.get(record.index)
            assert record.outcome == (joined.value if joined else None)

    def test_unknown_phase_rejected(self, serial_ctx):
        _, characterization = serial_ctx.campaign("mcf")
        with pytest.raises(ValueError, match="unknown audit phase"):
            audit_records(characterization, "bogus")

    def test_recovery_label_and_latency_fields(self, serial_ctx):
        _, characterization = serial_ctx.campaign("mcf")
        for record in audit_records(characterization, "characterize"):
            assert record.recovery in ("rollback", "replay", "singleton",
                                       "suppress", "none")
            if record.detection_latency is not None:
                assert record.detection_latency >= 0
                assert record.first_trigger_cycle >= record.inject_cycle


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
class TestAggregates:
    def test_recovery_mix_counts_applied_only(self):
        rows = [
            {"applied": True, "recovery": "replay"},
            {"applied": True, "recovery": "replay"},
            {"applied": False, "recovery": "rollback"},
            {"applied": True, "recovery": "none"},
        ]
        mix = recovery_mix(rows)
        assert mix == {"rollback": 0, "replay": 2, "singleton": 0,
                       "suppress": 0, "none": 1}

    def test_latency_histogram_fixed_geometry(self):
        rows = [{"detection_latency": v}
                for v in (0, 15, 16, 1_000_000)] \
            + [{"detection_latency": None}]
        histogram = detection_latency_histogram(rows)
        assert len(histogram) == LATENCY_BINS + 1
        assert histogram["0-15"] == 2
        assert histogram["16-31"] == 1
        assert histogram[f">={LATENCY_BINS * LATENCY_BIN_WIDTH}"] == 1
        assert sum(histogram.values()) == 4     # None excluded
        # empty input still yields every bin, so == comparison works
        assert set(detection_latency_histogram([])) == set(histogram)

    def test_aggregates_shape(self, serial_ctx):
        coverage = serial_ctx.coverage("mcf", "faulthound")
        aggregates = audit_aggregates(audit_records(coverage, "coverage"))
        assert set(aggregates) == {"records", "applied", "recovery_mix",
                                   "detection_latency_histogram", "outcomes"}
        assert aggregates["applied"] <= aggregates["records"]


# ----------------------------------------------------------------------
# the acceptance criterion: serial == parallel == warm cache
# ----------------------------------------------------------------------
class TestAggregateDeterminism:
    @staticmethod
    def _aggregates(ctx):
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        return (
            audit_aggregates(audit_records(characterization,
                                           "characterize")),
            audit_aggregates(audit_records(coverage, "coverage")),
        )

    def test_parallel_matches_serial(self, serial_ctx):
        parallel = ExperimentContext(_TINY, jobs=2)
        assert self._aggregates(parallel) == self._aggregates(serial_ctx)

    def test_warm_cache_matches_serial(self, serial_ctx, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = ExperimentContext(_TINY, jobs=1, cache=cache)
        cold_aggregates = self._aggregates(cold)
        warm = ExperimentContext(_TINY, jobs=1, cache=cache)
        warm_aggregates = self._aggregates(warm)
        assert warm.metrics.cache_hits > 0
        assert cold_aggregates == self._aggregates(serial_ctx)
        assert warm_aggregates == cold_aggregates

    def test_event_log_reproduces_the_aggregates(self, serial_ctx,
                                                 tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        ctx = ExperimentContext(_TINY, jobs=2, events=log)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        log.close()
        from_log = aggregates_from_events(read_events(log.path))
        direct = audit_aggregates(
            audit_records(characterization, "characterize")
            + audit_records(coverage, "coverage"))
        assert from_log == direct
