"""Job-server tests: submission plumbing, scheduling, and the full
submit -> status -> cancel -> resume lifecycle with one-shot CLI parity.

The fast tier exercises the filesystem protocol (atomic queue files,
offline client verbs, serve-dir claiming) without running campaigns.
The slow tier runs real servers as subprocesses and holds them to the
tentpole contract: every served task's captured stdout is bit-for-bit
the one-shot ``repro campaign`` output, including after cancel+resume
and after SIGKILLing the server with work in flight.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.harness.client import ServeClient
from repro.harness.server import (JobServer, ServeError, derive_job_state,
                                  job_doc_from_submission, job_summary,
                                  pid_alive, read_json, socket_path_for)

_SPEC = {"kind": "repro.campaign.src", "version": 1, "name": "t",
         "defaults": {"benchmark": "mcf", "faults": 10,
                      "no_cache": True}}


def _write_spec(path, **overrides):
    document = dict(_SPEC)
    document.update(overrides)
    path.write_text(json.dumps(document))
    return path


def _cli_env():
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    return env


def _repro(*argv, **kwargs):
    kwargs.setdefault("env", _cli_env())
    kwargs.setdefault("capture_output", True)
    kwargs.setdefault("text", True)
    kwargs.setdefault("timeout", 240)
    return subprocess.run([sys.executable, "-m", "repro.cli", *argv],
                          **kwargs)


def _oneshot_stdout(benchmark, faults=10, run_dir=None):
    argv = ["campaign", benchmark, "--scheme", "faulthound",
            "--faults", str(faults), "--seed", "3", "--batch-lanes", "1",
            "--max-retries", "3", "--chunk-windows", "8", "--no-cache"]
    if run_dir is not None:
        argv += ["--run-dir", str(run_dir)]
    result = _repro(*argv)
    assert result.returncode == 0, result.stderr
    return result.stdout


def _task_out(serve_dir, job_id):
    job_dir = serve_dir / "jobs" / job_id
    outs = sorted(job_dir.glob("task-*.out"))
    assert outs, f"no task stdout under {job_dir}"
    return outs[0].read_text()


# ----------------------------------------------------------------------
# fast: filesystem protocol and offline client verbs
# ----------------------------------------------------------------------
class TestSubmissionPlumbing:
    def test_submit_without_server_queues_on_disk(self, tmp_path):
        spec = _write_spec(tmp_path / "t.src.json")
        client = ServeClient(tmp_path / "sd")
        job_id = client.submit(spec)
        queued = read_json(tmp_path / "sd" / "queue" / f"{job_id}.json")
        assert queued["id"] == job_id
        assert queued["run"]["kind"] == "repro.campaign.run"
        assert [job["id"] for job in client.list()] == [job_id]
        assert client.list()[0]["state"] == "queued"

    def test_priority_comes_from_spec_unless_overridden(self, tmp_path):
        spec = _write_spec(tmp_path / "t.src.json", priority=7)
        client = ServeClient(tmp_path / "sd")
        first = client.submit(spec)
        second = client.submit(spec, priority=9)
        docs = {job_id: read_json(
                    tmp_path / "sd" / "queue" / f"{job_id}.json")
                for job_id in (first, second)}
        assert docs[first]["priority"] == 7
        assert docs[second]["priority"] == 9

    def test_offline_cancel_of_queued_job(self, tmp_path):
        spec = _write_spec(tmp_path / "t.src.json")
        client = ServeClient(tmp_path / "sd")
        job_id = client.submit(spec)
        response = client.cancel(job_id)
        assert response["ok"] and response["state"] == "cancelled"
        assert not (tmp_path / "sd" / "queue"
                    / f"{job_id}.json").exists()
        assert client.status(job_id)["job"]["state"] == "cancelled"

    def test_offline_resume_requeues_unsettled_tasks(self, tmp_path):
        client = ServeClient(tmp_path / "sd")
        doc = job_doc_from_submission(
            {"id": "j1", "name": "t", "priority": 0,
             "submitted_at": 1.0,
             "run": {"tasks": [{"key": "a" * 16}, {"key": "b" * 16}]}})
        doc["state"] = "failed"
        doc["tasks"][0].update(state="done", exit_code=0)
        doc["tasks"][1].update(state="failed", exit_code=1)
        from repro.harness.server import atomic_write_json
        atomic_write_json(tmp_path / "sd" / "jobs" / "j1" / "job.json",
                          doc)
        response = client.resume("j1")
        assert response["ok"] and response["state"] == "queued"
        resumed = client.status("j1")["job"]
        assert resumed["tasks"][0]["state"] == "done"     # kept
        assert resumed["tasks"][1]["state"] == "pending"  # re-run
        assert client.resume("missing")["ok"] is False

    def test_unknown_job_status_is_an_error(self, tmp_path):
        client = ServeClient(tmp_path / "sd")
        assert client.status("nope")["ok"] is False


class TestWaitBackoff:
    def test_wait_backs_off_instead_of_fixed_polling(self, tmp_path,
                                                     monkeypatch):
        """Regression: `wait` used to spin the disk every 0.5 s flat.
        It must now sleep on the shared jittered exponential schedule,
        capped at 5 s, and stop the moment the job settles."""
        from repro.harness import client as client_mod
        client = ServeClient(tmp_path / "sd")
        spec = _write_spec(tmp_path / "t.src.json")
        job_id = client.submit(spec)
        delays = []

        def fake_sleep(seconds):
            delays.append(seconds)
            if len(delays) >= 9:     # settle the job from "outside"
                doc = job_doc_from_submission(read_json(
                    tmp_path / "sd" / "queue" / f"{job_id}.json"))
                doc["state"] = "complete"
                from repro.harness.server import atomic_write_json
                atomic_write_json(
                    tmp_path / "sd" / "jobs" / job_id / "job.json", doc)

        monkeypatch.setattr(client_mod.time, "sleep", fake_sleep)
        doc = client.wait(job_id, timeout=120)
        assert doc["state"] == "complete"
        assert len(delays) == 9      # returned on the first settled poll
        # exponential growth (jitter only stretches, never shrinks;
        # doubling bases with jitter in [1, 1.5) keep ratios >= 4/3)...
        assert delays[0] < 0.1
        assert all(later >= earlier * 1.3 for earlier, later
                   in zip(delays[:6], delays[1:7]))
        # ...capped at 5 s, and deterministic for replayable tests
        assert all(delay <= 5.0 for delay in delays)
        from repro.harness.server import jittered_backoff
        assert delays[0] == jittered_backoff(1, base=0.05, cap=5.0,
                                             salt=job_id)

    def test_wait_timeout_still_raises(self, tmp_path, monkeypatch):
        from repro.harness import client as client_mod
        client = ServeClient(tmp_path / "sd")
        spec = _write_spec(tmp_path / "t.src.json")
        job_id = client.submit(spec)
        clock = [0.0]

        def fake_monotonic():
            return clock[0]

        def fake_sleep(seconds):
            clock[0] += seconds

        monkeypatch.setattr(client_mod.time, "monotonic", fake_monotonic)
        monkeypatch.setattr(client_mod.time, "sleep", fake_sleep)
        with pytest.raises(ServeError, match="timed out"):
            client.wait(job_id, timeout=30.0)
        assert clock[0] <= 30.0 + 5.0    # delays clipped to the deadline


class TestJobDocs:
    def test_doc_from_submission_shapes_tasks(self):
        doc = job_doc_from_submission(
            {"id": "j", "name": "n", "priority": 3, "submitted_at": 1.0,
             "run": {"tasks": [{"key": "cafe" * 4, "benchmark": "mcf",
                                "scheme": "pbfs"}]}})
        task = doc["tasks"][0]
        assert task["run_dir"] == "task-000-cafecafe"
        assert task["state"] == "pending"
        assert doc["state"] == "queued" and doc["priority"] == 3

    def test_terminal_state_derivation(self):
        def doc(*states):
            return {"tasks": [{"state": state} for state in states]}
        assert derive_job_state(doc("done", "done")) == "complete"
        assert derive_job_state(doc("done", "quarantine")) == \
            "complete-with-quarantine"
        assert derive_job_state(doc("failed", "quarantine")) == "failed"

    def test_summary_counts_settled(self):
        summary = job_summary({"id": "j", "name": "n", "state": "running",
                               "tasks": [{"state": "done"},
                                         {"state": "quarantine"},
                                         {"state": "pending"}]})
        assert summary["settled"] == 2 and summary["quarantine"] == 1

    def test_socket_path_is_stable_and_short(self, tmp_path):
        first = socket_path_for(tmp_path)
        assert first == socket_path_for(tmp_path)
        assert first != socket_path_for(tmp_path / "other")
        assert len(str(first)) < 100
        assert pid_alive(os.getpid())
        assert not pid_alive(-1)


class TestServeDirClaim:
    def test_second_server_refused_while_first_alive(self, tmp_path):
        serve_dir = tmp_path / "sd"
        from repro.harness.server import atomic_write_json
        # pid 1 is always alive and never us: a live foreign claim
        atomic_write_json(serve_dir / "server.json",
                          {"pid": 1, "socket": "/tmp/x"})
        with pytest.raises(ServeError, match="already"):
            JobServer(serve_dir, max_jobs=0).run()

    def test_dead_server_marker_is_reclaimed(self, tmp_path):
        serve_dir = tmp_path / "sd"
        from repro.harness.server import atomic_write_json
        atomic_write_json(serve_dir / "server.json",
                          {"pid": 2 ** 22 + 12345, "socket": "/tmp/x"})
        assert JobServer(serve_dir, max_jobs=0, idle_exit=0.0,
                         log_events=False).run() == 0


# ----------------------------------------------------------------------
# slow: real servers, real campaigns, bit-for-bit parity
# ----------------------------------------------------------------------
def _start_server(serve_dir, *extra):
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", str(serve_dir),
         "--poll-interval", "0.1", *extra],
        env=_cli_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


def _wait_for(predicate, timeout=120, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_two_concurrent_submissions_run_by_priority_with_parity(tmp_path):
    """Tentpole acceptance: two campaigns submitted concurrently to the
    server complete with stdout bit-for-bit equal to their one-shot
    equivalents, and the higher-priority job runs first."""
    serve_dir = tmp_path / "sd"
    client = ServeClient(serve_dir)
    low = client.submit(_write_spec(tmp_path / "low.src.json",
                                    name="low"), priority=0)
    high = client.submit(_write_spec(
        tmp_path / "high.src.json", name="high",
        defaults={"benchmark": "bzip2", "faults": 10,
                  "no_cache": True}), priority=5)

    server = _start_server(serve_dir, "--max-jobs", "2")
    try:
        low_doc = client.wait(low, timeout=240)
        high_doc = client.wait(high, timeout=240)
    finally:
        server.wait(timeout=60)
    assert low_doc["state"] == "complete", low_doc
    assert high_doc["state"] == "complete", high_doc

    # priority order: the high job's task started first
    events = [json.loads(line) for line in
              (serve_dir / "server-events.jsonl").read_text().splitlines()]
    started = [event["job"] for event in events
               if event.get("type") == "job"
               and event.get("action") == "started"]
    assert started == [high, low]

    assert _task_out(serve_dir, low) == _oneshot_stdout(
        "mcf", run_dir=tmp_path / "ref-mcf")
    assert _task_out(serve_dir, high) == _oneshot_stdout(
        "bzip2", run_dir=tmp_path / "ref-bzip2")


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_cancel_then_resume_is_bit_for_bit(tmp_path):
    """Lifecycle: cancel a running job (graceful drain, journal kept),
    resume it through the server, converge bit-for-bit."""
    serve_dir = tmp_path / "sd"
    client = ServeClient(serve_dir)
    spec = _write_spec(tmp_path / "big.src.json",
                       defaults={"benchmark": "mcf", "faults": 150,
                                 "no_cache": True})
    job_id = client.submit(spec)
    server = _start_server(serve_dir)
    try:
        job_dir = serve_dir / "jobs" / job_id

        def journal_started():
            journals = list(job_dir.glob("task-*/journal.jsonl"))
            return bool(journals) and "chunk_done" in \
                journals[0].read_text()
        _wait_for(journal_started, message="first chunk to land")

        response = client.cancel(job_id)
        assert response["ok"], response
        _wait_for(lambda: client.status(job_id)["job"]["state"]
                  == "cancelled", timeout=60, message="cancel to settle")
        doc = client.status(job_id)["job"]
        assert doc["tasks"][0]["state"] == "cancelled"

        response = client.resume(job_id)
        assert response["ok"], response
        doc = client.wait(job_id, timeout=240)
        assert doc["state"] == "complete", doc
        assert doc["tasks"][0]["exit_code"] == 0
        # the resumed task adopted the journal (its run dir recorded a
        # resume) and still printed the uninterrupted output
        journal = next(iter(job_dir.glob("task-*/journal.jsonl")))
        assert any(json.loads(line).get("type") == "resume"
                   for line in journal.read_text().splitlines()
                   if line.strip())
        assert _task_out(serve_dir, job_id) == _oneshot_stdout(
            "mcf", faults=150, run_dir=tmp_path / "ref-mcf150")
    finally:
        client.request("shutdown")
        try:
            server.wait(timeout=60)
        except subprocess.TimeoutExpired:
            server.kill()


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_sigkill_server_with_running_and_queued_jobs_then_restart(
        tmp_path):
    """Satellite acceptance: SIGKILL the server (and its in-flight task,
    as a machine crash would) while a second job sits queued; a fresh
    server requeues the interrupted job, resumes it from the journal,
    runs the queued one, and both finish bit-for-bit."""
    serve_dir = tmp_path / "sd"
    client = ServeClient(serve_dir)
    first = client.submit(_write_spec(
        tmp_path / "a.src.json", name="a",
        defaults={"benchmark": "mcf", "faults": 150, "no_cache": True}))
    second = client.submit(_write_spec(
        tmp_path / "b.src.json", name="b",
        defaults={"benchmark": "bzip2", "faults": 10,
                  "no_cache": True}))

    server = _start_server(serve_dir)
    job_dir = serve_dir / "jobs" / first

    def first_chunk_landed():
        journals = list(job_dir.glob("task-*/journal.jsonl"))
        return bool(journals) and "chunk_done" in journals[0].read_text()
    try:
        _wait_for(first_chunk_landed, message="first chunk to land")
    finally:
        server.kill()                      # SIGKILL: no cleanup at all
        server.wait(timeout=30)
    doc = read_json(job_dir / "job.json")
    task_pid = next((t.get("pid") for t in doc["tasks"]
                     if t.get("state") == "running"), None)
    if task_pid is not None:               # kill the orphaned task too
        try:
            os.killpg(task_pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
    assert doc["state"] == "running"       # the crash left it mid-run

    restarted = _start_server(serve_dir, "--max-jobs", "2")
    try:
        first_doc = client.wait(first, timeout=240)
        second_doc = client.wait(second, timeout=240)
    finally:
        try:
            restarted.wait(timeout=60)
        except subprocess.TimeoutExpired:
            restarted.kill()
    assert first_doc["state"] == "complete", first_doc
    assert second_doc["state"] == "complete", second_doc
    assert _task_out(serve_dir, first) == _oneshot_stdout(
        "mcf", faults=150, run_dir=tmp_path / "ref-mcf150")
    assert _task_out(serve_dir, second) == _oneshot_stdout(
        "bzip2", run_dir=tmp_path / "ref-bzip2")
