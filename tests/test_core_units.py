"""FaultHound / PBFS screening-unit behaviour tests."""

import pytest

from repro.config import FaultHoundConfig, PBFSConfig
from repro.core import (CheckAction, CheckKind, FaultHoundUnit,
                        NullScreeningUnit, PBFSUnit)


def warm_unit(unit, value=0x1000, kind=CheckKind.LOAD_ADDR, pc=10, n=3):
    for _ in range(n):
        unit.check_at_complete(kind, value, pc)
    return unit


class TestNullUnit:
    def test_always_none(self):
        unit = NullScreeningUnit()
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 123, 0)
        assert res.action is CheckAction.NONE
        assert unit.check_at_commit(CheckKind.STORE_VALUE, 5, 0).action \
            is CheckAction.NONE
        assert unit.trigger_count == 0


class TestPBFSUnit:
    def test_cold_install_then_match(self):
        unit = PBFSUnit()
        first = unit.check_at_complete(CheckKind.LOAD_ADDR, 0x40, pc=7)
        again = unit.check_at_complete(CheckKind.LOAD_ADDR, 0x40, pc=7)
        assert first.action is CheckAction.NONE
        assert again.action is CheckAction.NONE

    def test_mismatch_squashes(self):
        unit = warm_unit(PBFSUnit(), value=0x40)
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0x41 << 8, pc=10)
        assert res.action is CheckAction.SQUASH

    def test_sticky_only_one_detection_per_bit(self):
        unit = PBFSUnit()
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3)
        first = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=3)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3)
        second = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=3)
        assert first.action is CheckAction.SQUASH
        assert second.action is CheckAction.NONE  # counter saturated

    def test_biased_variant_redetects_after_decay(self):
        unit = PBFSUnit(PBFSConfig(biased=True))
        assert unit.name == "pbfs-biased"
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3)
        assert unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=3
                                      ).action is CheckAction.SQUASH
        # three quiet checks decay bit 0 back to unchanging...
        for _ in range(3):
            unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=3)
        # ...so the next flip triggers again: better coverage, more FPs.
        assert unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3
                                      ).action is CheckAction.SQUASH

    def test_flash_clear_rearms_sticky(self):
        unit = PBFSUnit(PBFSConfig(clear_interval=4))
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=3)  # squash+stick
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=3)  # clears here
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=3)
        assert res.action is CheckAction.SQUASH

    def test_pc_spreading_separates_similar_values(self):
        """PBFS's weakness: the same value stream from different PCs must be
        learned once per PC."""
        unit = PBFSUnit(PBFSConfig(biased=True))
        squashes = 0
        for pc in (100, 200, 300):
            unit.check_at_complete(CheckKind.LOAD_ADDR, 0b00, pc=pc)
            if unit.check_at_complete(CheckKind.LOAD_ADDR, 0b01, pc=pc
                                      ).action is CheckAction.SQUASH:
                squashes += 1
        assert squashes == 3

    def test_no_commit_check(self):
        unit = PBFSUnit()
        res = unit.check_at_commit(CheckKind.LOAD_ADDR, 1, pc=0)
        assert res.action is CheckAction.NONE
        assert unit.checks == 0

    def test_replaying_suppresses_squash(self):
        unit = warm_unit(PBFSUnit(), value=0)
        unit.replaying = True
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 1 << 8, pc=10)
        assert res.action is CheckAction.NONE
        assert res.triggered


class TestFaultHoundUnit:
    def test_match_is_none(self):
        unit = warm_unit(FaultHoundUnit())
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0x1000, pc=10)
        assert res.action is CheckAction.NONE

    def test_first_trigger_is_squash_then_replay(self):
        """A fresh unit's squash machines are all quiet, so the very first
        identity-bearing trigger licenses a squash; the second trigger from
        the same closest filter downgrades to replay."""
        unit = warm_unit(FaultHoundUnit(), value=0)
        first = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b1, pc=10)
        assert first.action is CheckAction.SQUASH
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0, pc=10)
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b100, pc=10)
        assert res.action is CheckAction.REPLAY

    def test_second_level_suppresses_delinquent_bit(self):
        unit = warm_unit(FaultHoundUnit(), value=0)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b1, pc=10)   # bit 0 alarm
        # decay bit 0 back to unchanging in the first level (2 quiet checks)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b1, pc=10)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0b1, pc=10)
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b0, pc=10)
        assert res.triggered
        assert res.action is CheckAction.SUPPRESSED

    def test_separate_address_and_value_tcams(self):
        unit = FaultHoundUnit()
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x1000, pc=1)
        unit.check_at_complete(CheckKind.STORE_VALUE, 0x9999, pc=1)
        assert unit.addresses.tcam.valid_entries == 1
        assert unit.values.tcam.valid_entries == 1

    def test_commit_trigger_is_singleton(self):
        unit = warm_unit(FaultHoundUnit(), value=0)
        res = unit.check_at_commit(CheckKind.LOAD_ADDR, 1 << 20, pc=10)
        assert res.action is CheckAction.SINGLETON

    def test_lsq_check_disabled(self):
        unit = FaultHoundUnit(FaultHoundConfig(lsq_check=False))
        res = unit.check_at_commit(CheckKind.LOAD_ADDR, 123, pc=0)
        assert res.action is CheckAction.NONE
        assert unit.checks == 0

    def test_replaying_ignores_triggers_but_learns(self):
        unit = warm_unit(FaultHoundUnit(), value=0)
        unit.replaying = True
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b11, pc=10)
        assert res.triggered and res.action is CheckAction.NONE
        unit.replaying = False
        # the filter learned 0b11 during replay: matches now
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b11, pc=10)
        assert res.action is CheckAction.NONE

    def test_full_rollback_ablation(self):
        cfg = FaultHoundConfig(squash_detection=False,
                               second_level=False,
                               full_rollback_on_trigger=True)
        unit = warm_unit(FaultHoundUnit(cfg), value=0)
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b1, pc=10)
        assert res.action is CheckAction.SQUASH

    def test_no_clustering_ablation_uses_pc_indexed_table(self):
        cfg = FaultHoundConfig(clustering=False, second_level=False,
                               squash_detection=False)
        unit = FaultHoundUnit(cfg)
        assert unit.addresses.tcam is None
        assert unit.addresses.table is not None
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0, pc=5)
        res = unit.check_at_complete(CheckKind.LOAD_ADDR, 0b1, pc=5)
        assert res.action is CheckAction.REPLAY

    def test_squash_detection_disabled_never_squashes(self):
        cfg = FaultHoundConfig(squash_detection=False, second_level=False)
        unit = warm_unit(FaultHoundUnit(cfg), value=0)
        for delta in (1, 2, 4, 8):
            res = unit.check_at_complete(CheckKind.LOAD_ADDR, delta << 10, pc=1)
            assert res.action in (CheckAction.REPLAY, CheckAction.NONE)

    def test_action_counters(self):
        unit = warm_unit(FaultHoundUnit(), value=0)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 1 << 30, pc=10)
        assert unit.trigger_count == 1
        assert unit.checks == 4
