"""Figure-module helper tests (ordering, scheme constants)."""

from repro.harness import figures
from repro.harness.experiment import SCHEMES
from repro.workloads import PROFILES, SUITES


def test_ordered_follows_suite_presentation():
    ordered = figures._ordered(tuple(PROFILES))
    assert ordered[:4] == SUITES["specint"]
    assert ordered[-4:] == SUITES["splash"]
    assert len(ordered) == 14


def test_ordered_respects_subsets():
    ordered = figures._ordered(("apache", "bzip2"))
    assert ordered == ["bzip2", "apache"]  # suite order, not input order


def test_ordered_falls_back_for_unknown_names():
    assert figures._ordered(("zzz",)) == ["zzz"]


def test_figure_scheme_constants_are_registered():
    for constant in (figures.FIG8_SCHEMES, figures.FIG9_SCHEMES,
                     figures.FIG10_SCHEMES):
        for scheme in constant:
            assert scheme in SCHEMES


def test_fig8_and_fig9_use_the_paper_lineup():
    assert figures.FIG8_SCHEMES == ("pbfs", "pbfs-biased", "fh-backend",
                                    "faulthound")
    assert "fh-backend" in figures.FIG10_SCHEMES
