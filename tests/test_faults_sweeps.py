"""ConfigSweep tests (small workloads, fast settings)."""

import pytest

from repro.config import FaultHoundConfig, HardwareConfig
from repro.faults import Campaign
from repro.faults.sweeps import ConfigSweep
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs


@pytest.fixture(scope="module")
def programs():
    return build_smt_programs(PROFILES["volrend"], 3000)


@pytest.fixture(scope="module")
def sweep(programs):
    return ConfigSweep(programs)


def test_fp_rate_sweep_shape(sweep):
    rows = sweep.fp_rate("tcam_entries", [8, 32])
    assert set(rows) == {"tcam_entries=8", "tcam_entries=32"}
    for row in rows.values():
        assert 0.0 <= row["fp_rate"] < 0.5


def test_perf_sweep_uses_shared_baseline(sweep):
    rows = sweep.perf("second_level", [True, False])
    assert len(rows) == 2
    first = sweep.baseline_cycles
    assert sweep.baseline_cycles == first  # cached


def test_custom_metric(sweep):
    rows = sweep.custom("lsq_check", [True, False],
                        metric=lambda core: core.stats.singleton_reexecs,
                        metric_name="singletons")
    assert rows["lsq_check=False"]["singletons"] == 0


def test_coverage_sweep(programs):
    hw = HardwareConfig()
    campaign = Campaign(
        "volrend", lambda: PipelineCore(programs, hw=hw),
        num_phys_regs=hw.phys_regs, num_threads=len(programs),
        num_faults=16, seed=5, warmup_commits=200, window_commits=100)
    characterization = campaign.characterize()
    sweep = ConfigSweep(programs, hw=hw)
    rows = sweep.coverage("tcam_entries", [32], campaign, characterization)
    (row,) = rows.values()
    assert 0.0 <= row["coverage"] <= 1.0


def test_base_config_respected(programs):
    base = FaultHoundConfig(second_level=False)
    sweep = ConfigSweep(programs, base_config=base)
    rows = sweep.fp_rate("tcam_entries", [32])
    assert rows  # ran with the ablated base config without error
