"""Shared pytest configuration.

Applies a per-test wall-clock ceiling when the ``pytest-timeout`` plugin
is installed (CI installs it via the ``test`` extra). A hung simulator
loop — the exact failure mode the differential harness's deadlock check
guards against — then fails fast instead of wedging the whole run.
Environments without the plugin (it is optional) skip the marker
entirely; the tests themselves bound their own ``run`` calls.
"""

import pytest

try:
    import pytest_timeout  # noqa: F401
    _HAVE_TIMEOUT = True
except ImportError:
    _HAVE_TIMEOUT = False

#: Generous per-test ceiling: the slowest legitimate tests (full fault
#: campaigns) finish well under this; only a deadlock exceeds it.
PER_TEST_TIMEOUT_SECONDS = 120


def pytest_collection_modifyitems(config, items):
    if not _HAVE_TIMEOUT:
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(PER_TEST_TIMEOUT_SECONDS))
