"""Composition properties of the second-level filter and squash machines
driven through the FaultHound unit's arbitration (Section 3's cascade)."""

import pytest

from repro.config import FaultHoundConfig
from repro.core import CheckAction, CheckKind, FaultHoundUnit


def warm(unit, value=0x4000, n=4, pc=1):
    for _ in range(n):
        unit.check_at_complete(CheckKind.LOAD_ADDR, value, pc)


class TestCascadePriorities:
    def test_suppression_beats_squash(self):
        """A trigger the second-level filter suppresses must not squash,
        even with every squash machine armed (the paper's priority 1)."""
        unit = FaultHoundUnit()
        warm(unit)
        # make bit 3 delinquent: trigger on it once via a fresh value
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4008, 1)
        # decay bit 3 in the first level (two quiet matches)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4008, 1)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4008, 1)
        # same bit alarms again within 7 triggers: suppressed, not squashed
        result = unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4000, 1)
        assert result.action is CheckAction.SUPPRESSED

    def test_squash_beats_replay(self):
        """An allowed trigger whose closest filter is squash-armed rolls
        back rather than replaying (priority 2 over 3)."""
        unit = FaultHoundUnit()
        warm(unit)
        result = unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 30), 1)
        assert result.action is CheckAction.SQUASH

    def test_replay_is_the_default_action(self):
        unit = FaultHoundUnit()
        warm(unit)
        # exhaust the squash machine with a first trigger...
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 30), 1)
        warm(unit, 0x4000 ^ (1 << 30), n=3)
        # ...then a fresh bit position triggers: allowed but not squashed
        result = unit.check_at_complete(
            CheckKind.LOAD_ADDR, (0x4000 ^ (1 << 30)) ^ (1 << 45), 1)
        assert result.action is CheckAction.REPLAY


class TestCrossDomainIsolation:
    def test_value_triggers_do_not_consume_address_machines(self):
        """Each domain has its own second-level filter and squash bank —
        value-side noise must not desensitise address-side detection."""
        unit = FaultHoundUnit()
        warm(unit)                                        # address domain
        for i in range(12):                                # value noise
            unit.check_at_complete(CheckKind.STORE_VALUE, i * 0x101, 2)
        result = unit.check_at_complete(
            CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 22), 1)
        assert result.action in (CheckAction.SQUASH, CheckAction.REPLAY)
        assert result.action is not CheckAction.SUPPRESSED


class TestCommitPathIsolation:
    def test_commit_triggers_never_squash(self):
        """Commit-time (LSQ) triggers map to singleton re-execution even
        when the squash machinery is fully armed."""
        unit = FaultHoundUnit()
        warm(unit)
        result = unit.check_at_commit(
            CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 33), 1)
        assert result.action is CheckAction.SINGLETON

    def test_commit_triggers_share_second_level(self):
        """The second-level filter is per TCAM, shared by completion and
        commit checks: a bit made delinquent at completion suppresses the
        same bit's commit-time alarm."""
        unit = FaultHoundUnit()
        warm(unit)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 9), 1)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 9), 1)
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x4000 ^ (1 << 9), 1)
        result = unit.check_at_commit(CheckKind.LOAD_ADDR, 0x4000, 1)
        assert result.action is CheckAction.SUPPRESSED
