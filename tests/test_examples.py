"""Smoke tests: the shipped examples must run end to end."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs_and_recovers(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "fault-free run" in out
    assert "2080" in out                     # the correct sum appears
    assert "repaired or masked" in out       # recovery succeeded


def test_value_locality_explorer(capsys):
    module = load_example("value_locality_explorer")
    module.main()
    out = capsys.readouterr().out
    assert "cold install" in out
    assert "TRIGGER" in out
    assert "suppressed" in out
    assert "ALLOWED" in out


def test_pipeline_visualizer(capsys):
    module = load_example("pipeline_visualizer")
    module.main()
    out = capsys.readouterr().out
    assert "uid" in out
    assert "stage residency" in out


def test_fault_injection_campaign_small(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["prog", "gamess", "10"])
    module = load_example("fault_injection_campaign")
    module.main()
    out = capsys.readouterr().out
    assert "phase A" in out
    assert "masked" in out


def test_all_examples_have_docstrings_and_main():
    for path in EXAMPLES.glob("*.py"):
        source = path.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), \
            f"{path.name} missing shebang/docstring"
        assert "def main(" in source, f"{path.name} missing main()"
        assert '__name__ == "__main__"' in source, path.name
