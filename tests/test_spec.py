"""Spec-compiler tests: sweep expansion, content-addressed dedup,
validation bounds shared with the CLI, and the golden-file round-trip.

The compiler is a pure function, so the golden files under
``tests/data/`` pin its observable output byte-for-byte: any change to
expansion order, defaults, key derivation or JSON layout shows up as a
diff against ``campaign.run.golden.json``.
"""

import json
import pathlib

import pytest

from repro.harness.spec import (SRC_KIND, SpecError, TASK_DEFAULTS,
                                compile_file, compile_spec, load_run,
                                run_path_for, task_argv, task_key,
                                validate_run)

DATA = pathlib.Path(__file__).parent / "data"


def _src(**overrides):
    document = {"kind": SRC_KIND, "version": 1, "name": "t",
                "defaults": {"benchmark": "mcf", "faults": 5}}
    document.update(overrides)
    return document


# ----------------------------------------------------------------------
# expansion
# ----------------------------------------------------------------------
class TestExpansion:
    def test_defaults_only_compiles_to_one_task(self):
        run = compile_spec(_src())
        assert len(run["tasks"]) == 1
        task = run["tasks"][0]
        assert task["benchmark"] == "mcf" and task["faults"] == 5
        # every knob is explicit in the run layer
        assert set(TASK_DEFAULTS) | {"key"} == set(task)

    def test_sweep_is_a_cross_product_over_defaults(self):
        run = compile_spec(_src(sweep={"benchmark": ["mcf", "bzip2"],
                                       "scheme": ["faulthound", "pbfs"],
                                       "faults": [5, 10]}))
        assert len(run["tasks"]) == 8
        combos = {(t["benchmark"], t["scheme"], t["faults"])
                  for t in run["tasks"]}
        assert len(combos) == 8
        assert all(t["seed"] == TASK_DEFAULTS["seed"]
                   for t in run["tasks"])

    def test_explicit_tasks_merge_over_defaults(self):
        run = compile_spec(_src(tasks=[{"scheme": "pbfs"},
                                       {"benchmark": "bzip2"}]))
        assert [t["scheme"] for t in run["tasks"]] == ["pbfs",
                                                       "faulthound"]
        assert [t["benchmark"] for t in run["tasks"]] == ["mcf", "bzip2"]

    def test_empty_sweep_axis_is_an_error_not_zero_tasks(self):
        with pytest.raises(SpecError, match="empty"):
            compile_spec(_src(sweep={"benchmark": []}))

    def test_priority_carried_through(self):
        assert compile_spec(_src(priority=5))["priority"] == 5
        assert compile_spec(_src())["priority"] == 0


# ----------------------------------------------------------------------
# content-addressed keys and dedup
# ----------------------------------------------------------------------
class TestKeys:
    def test_key_depends_only_on_simulation_knobs(self):
        base = {"benchmark": "mcf", "scheme": "faulthound", "faults": 5}
        assert task_key(base) == task_key(dict(base))
        assert task_key(base) != task_key(dict(base, faults=6))
        assert task_key(base) != task_key(dict(base, scheme="pbfs"))

    def test_overlapping_axes_dedup_by_key(self):
        # the explicit task duplicates one sweep combination exactly
        run = compile_spec(_src(
            sweep={"scheme": ["faulthound", "pbfs"]},
            tasks=[{"scheme": "pbfs"}]))
        assert len(run["tasks"]) == 2
        assert run["deduped"] == 1
        keys = [t["key"] for t in run["tasks"]]
        assert len(keys) == len(set(keys))

    def test_compilation_is_deterministic(self):
        src = _src(sweep={"benchmark": ["mcf", "bzip2"],
                          "faults": [5, 10]})
        first = json.dumps(compile_spec(src), sort_keys=True)
        second = json.dumps(compile_spec(dict(src)), sort_keys=True)
        assert first == second


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_benchmark_and_scheme_rejected(self):
        with pytest.raises(SpecError, match="benchmark"):
            compile_spec(_src(defaults={"benchmark": "nonesuch"}))
        with pytest.raises(SpecError, match="scheme"):
            compile_spec(_src(defaults={"benchmark": "mcf",
                                        "scheme": "nonesuch"}))

    def test_batch_lanes_below_one_rejected_like_the_cli(self):
        # the compiler enforces the same bound `--batch-lanes` does:
        # K < 1 is an error, never a silent clamp to the scalar path
        for bad in (0, -1):
            with pytest.raises(SpecError, match="batch_lanes"):
                compile_spec(_src(defaults={"benchmark": "mcf",
                                            "batch_lanes": bad}))

    def test_numeric_bounds(self):
        with pytest.raises(SpecError, match="faults"):
            compile_spec(_src(defaults={"benchmark": "mcf", "faults": 0}))
        with pytest.raises(SpecError, match="jobs"):
            compile_spec(_src(defaults={"benchmark": "mcf", "jobs": 0}))
        with pytest.raises(SpecError, match="chunk_timeout"):
            compile_spec(_src(defaults={"benchmark": "mcf",
                                        "chunk_timeout": -1}))

    def test_unknown_fields_rejected_everywhere(self):
        with pytest.raises(SpecError, match="bogus"):
            compile_spec(_src(bogus=1))
        with pytest.raises(SpecError, match="bogus"):
            compile_spec(_src(defaults={"benchmark": "mcf", "bogus": 1}))
        with pytest.raises(SpecError, match="bogus"):
            compile_spec(_src(sweep={"bogus": [1]}))
        with pytest.raises(SpecError, match="bogus"):
            compile_spec(_src(tasks=[{"bogus": 1}]))

    def test_wrong_kind_and_version_rejected(self):
        with pytest.raises(SpecError, match="kind"):
            compile_spec({"kind": "other", "version": 1})
        with pytest.raises(SpecError, match="version"):
            compile_spec({"kind": SRC_KIND, "version": 99})

    def test_validate_run_catches_tampered_key(self):
        run = compile_spec(_src())
        assert validate_run(run) == []
        run["tasks"][0]["key"] = "0" * 16
        assert any("key" in error for error in validate_run(run))


# ----------------------------------------------------------------------
# CLI parity
# ----------------------------------------------------------------------
class TestTaskArgv:
    def test_every_knob_is_explicit(self):
        run = compile_spec(_src(defaults={
            "benchmark": "mcf", "faults": 5, "batch_lanes": 2,
            "no_cache": True, "chunk_timeout": 2.5, "jobs": 3}))
        argv = task_argv(run["tasks"][0], run_dir="/r")
        text = " ".join(argv)
        assert argv[0] == "campaign" and argv[1] == "mcf"
        assert "--batch-lanes 2" in text
        assert "--jobs 3" in text
        assert "--no-cache" in text
        assert "--chunk-timeout 2.5" in text
        assert "--run-dir /r" in text

    def test_jobs_override_wins_over_task_jobs(self):
        run = compile_spec(_src(defaults={"benchmark": "mcf",
                                          "jobs": 8}))
        argv = task_argv(run["tasks"][0], jobs=2)
        assert "--jobs 2" in " ".join(argv)

    def test_argv_parses_back_through_the_real_parser(self):
        from repro.cli import build_parser
        run = compile_spec(_src())
        args = build_parser().parse_args(task_argv(run["tasks"][0]))
        assert args.command == "campaign" and args.name == "mcf"
        assert args.faults == 5


# ----------------------------------------------------------------------
# golden-file round-trip
# ----------------------------------------------------------------------
class TestGoldenRoundTrip:
    def test_src_compiles_byte_for_byte_to_golden_run(self, tmp_path):
        src = tmp_path / "campaign.src.json"
        src.write_text((DATA / "campaign.src.json").read_text())
        out = compile_file(src)
        assert out == tmp_path / "campaign.run.json"
        assert out.read_text() == (DATA
                                   / "campaign.run.golden.json").read_text()

    def test_load_run_accepts_both_layers_identically(self, tmp_path):
        from_src = load_run(DATA / "campaign.src.json")
        from_run = load_run(DATA / "campaign.run.golden.json")
        assert from_src == from_run

    def test_run_path_convention(self):
        assert run_path_for("a/b/x.src.json") == pathlib.Path(
            "a/b/x.run.json")
        assert run_path_for("x.json") == pathlib.Path("x.run.json")
