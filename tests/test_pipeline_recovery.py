"""Directed end-to-end tests of the recovery mechanisms."""

import pytest

from repro.config import FaultHoundConfig, HardwareConfig, PBFSConfig
from repro.core import FaultHoundUnit, NullScreeningUnit, PBFSUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.uops import OpState

# a tight loop whose load addresses and store values are highly local —
# a fault that perturbs either triggers the filters promptly
LOOP = """
    movi r1, 400
    movi r2, 0x1000
    movi r5, 7
loop:
    st   r5, 0(r2)
    ld   r4, 0(r2)
    add  r5, r4, r5
    andi r5, r5, 1023
    addi r2, r2, 8
    andi r2, r2, 0x1FF8
    ori  r2, r2, 0x1000
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def fresh_core(screening=None, src=LOOP):
    return PipelineCore([assemble(src)], hw=HardwareConfig(),
                        screening=screening)


def golden_end_state():
    core = fresh_core()
    core.run(max_cycles=500_000)
    return core.threads[0].output_snapshot()


@pytest.fixture(scope="module")
def golden():
    return golden_end_state()


def find_inflight_victim(core, dests=(2, 4, 5)):
    """A completed-but-uncommitted op whose result sits in the PRF and
    flows into a load/store (logical dest in *dests*)."""
    for op in core.threads[0].rob:
        if (op.state is OpState.COMPLETED and op.phys_dest is not None
                and op.inst.rd in dests):
            return op
    return None


class TestReplayRecovery:
    def test_inflight_fault_recovered(self, golden):
        """Flip a *stable* (high-order) bit of an in-flight result: the
        consumer load/store triggers, predecessor replay recomputes, and
        the output state matches. Low-order bits would land inside the
        value neighbourhood (the paper's no-trigger category), so the
        directed test uses bit 40."""
        recovered = 0
        attempts = 0
        for warm in (60, 90, 120, 150, 180):
            core = fresh_core(FaultHoundUnit())
            core.run_until_commits(warm)
            victim = find_inflight_victim(core)
            if victim is None:
                continue
            attempts += 1
            core.inject_prf_bit(victim.phys_dest, bit=40)
            core.run(max_cycles=500_000)
            if core.threads[0].output_snapshot() == golden:
                recovered += 1
        assert attempts >= 3
        # aging out of the 7-deep delay buffer legitimately loses a case
        # now and then (the paper's best-effort coverage), so require a
        # clear majority rather than perfection
        assert recovered >= 2

    def test_replay_reexecutes_few_instructions(self):
        core = fresh_core(FaultHoundUnit())
        core.run_until_commits(100)
        victim = find_inflight_victim(core)
        assert victim is not None
        core.inject_prf_bit(victim.phys_dest, bit=5)
        before = core.stats.replayed_ops
        core.run_until_commits(60)
        if core.stats.replay_events:
            per_event = ((core.stats.replayed_ops - before)
                         / core.stats.replay_events)
            # the paper reports ~6-8 instructions per replay
            assert per_event <= core.hw.delay_buffer_size + 1

    def test_baseline_does_not_recover(self, golden):
        corrupted = 0
        for warm in (60, 90, 120, 150, 180):
            core = fresh_core(NullScreeningUnit())
            core.run_until_commits(warm)
            victim = find_inflight_victim(core)
            if victim is None:
                continue
            core.inject_prf_bit(victim.phys_dest, bit=5)
            core.run(max_cycles=500_000)
            if core.threads[0].output_snapshot() != golden:
                corrupted += 1
        assert corrupted >= 2, "without screening these faults corrupt state"


class TestRenameFaultRecovery:
    # r5 is written once and then only *read* by the stores: the value
    # TCAM sees a constant, stays quiet, and the squash machines stay
    # armed. A rename fault pointing r5 at the cursor's register makes
    # every store value jump neighbourhood -> fresh allowed trigger ->
    # squash -> rollback restores the speculative table from the
    # committed one. Because r5 is never renamed again there is no
    # wrong-free corruption (the unrecoverable class of Section 5.5).
    RENAME_SRC = """
        movi r1, 400
        movi r2, 0x1000
        movi r5, 7
    loop:
        st   r5, 0(r2)
        ld   r4, 0(r2)
        addi r2, r2, 8
        andi r2, r2, 0x1FF8
        ori  r2, r2, 0x1000
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """

    def golden_rename(self):
        core = fresh_core(src=self.RENAME_SRC)
        core.run(max_cycles=500_000)
        return core.threads[0].output_snapshot()

    def test_rename_fault_squash_restores_mapping(self):
        """Point r5's speculative mapping at the cursor's physical register
        — the canonical "unintended, albeit unchanged, value" fault — and
        require the squash machinery to recover at least once."""
        golden = self.golden_rename()
        outcomes = []
        for warm in (120, 200, 280):
            core = fresh_core(FaultHoundUnit(), src=self.RENAME_SRC)
            core.run_until_commits(warm)
            thread = core.threads[0]
            thread.spec_rat.set(5, thread.spec_rat.get(2))
            core.run(max_cycles=500_000)
            outcomes.append(core.threads[0].output_snapshot() == golden)
        assert any(outcomes), "at least one rename fault must be recovered"

    def test_rollback_restores_speculative_rat(self):
        core = fresh_core(FaultHoundUnit())
        core.run_until_commits(100)
        committed = core.threads[0].committed_rat.snapshot()
        core.inject_rat_bit(0, logical=5, bit=2)
        core._screening_rollback(core.threads[0])
        assert core.threads[0].spec_rat.get(5) == committed[5]


class TestPBFSRecovery:
    def test_pbfs_biased_rollback_recovers_inflight_fault(self, golden):
        recovered = 0
        attempts = 0
        for warm in (60, 100, 140):
            core = fresh_core(PBFSUnit(PBFSConfig(biased=True)))
            core.run_until_commits(warm)
            victim = find_inflight_victim(core)
            if victim is None:
                continue
            attempts += 1
            core.inject_prf_bit(victim.phys_dest, bit=5)
            core.run(max_cycles=500_000)
            if core.threads[0].output_snapshot() == golden:
                recovered += 1
        assert attempts >= 2
        assert recovered >= 1

    def test_rollback_squashes_many_ops(self):
        core = fresh_core(PBFSUnit(PBFSConfig(biased=True)))
        core.run(max_cycles=500_000)
        if core.stats.rollback_events:
            per_rollback = (core.stats.rollback_squashed_ops
                            / core.stats.rollback_events)
            # full rollbacks squash tens of instructions (paper: 100-200)
            assert per_rollback > 10


class TestMemoryOrderViolations:
    SRC = """
        movi r1, 200
        movi r2, 0x1000
        movi r5, 3
        movi r6, 11
    loop:
        mul  r7, r5, r6        # slow producer for the store value
        mul  r7, r7, r6
        st   r7, 0(r2)
        ld   r4, 0(r2)         # same address: must see the store
        add  r5, r4, r0
        andi r5, r5, 255
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """

    def test_speculative_loads_stay_correct(self):
        from repro.isa.interpreter import run_program
        core = fresh_core(src=self.SRC)
        core.run(max_cycles=500_000)
        golden = run_program(assemble(self.SRC))
        assert (core.threads[0].arch_state_snapshot(core.prf)
                == golden.snapshot())

    def test_violations_detected_and_counted(self):
        core = fresh_core(src=self.SRC)
        core.run(max_cycles=500_000)
        # store resolves late (mul chain), the load can slip ahead —
        # at least some runs of the loop must exercise the machinery
        assert core.stats.memory_order_violations >= 0  # sanity
        # forwarding plus violation recovery must preserve the dataflow,
        # which test_speculative_loads_stay_correct already proved


class TestDelayBufferDynamics:
    def test_delay_buffer_squash_on_pressure(self):
        """With a tiny issue queue, dispatch pressure evicts lingering
        completed ops by squashing the delay buffer."""
        hw = HardwareConfig(issue_queue_size=10)
        core = PipelineCore([assemble(LOOP)], hw=hw,
                            screening=FaultHoundUnit())
        core.run(max_cycles=500_000)
        assert core.iq.delay_buffer.squashes > 0
        assert core.stats.delay_buffer_squashes > 0

    def test_no_delay_buffer_for_baseline(self):
        core = fresh_core(NullScreeningUnit())
        core.run_until_commits(50)
        assert len(core.iq.delay_buffer) == 0


class TestSingletonReexecute:
    def test_lsq_fault_detected_or_recovered(self, golden):
        hits = 0
        for _ in range(3):
            core = fresh_core(FaultHoundUnit())
            core.run_until_commits(200)
            for _ in range(3000):
                if core.inject_lsq_bit(0, 0, "value", 30):
                    break
                core.step()
            core.run(max_cycles=500_000)
            ok = (core.threads[0].output_snapshot() == golden
                  or core.stats.singleton_mismatch_detections > 0)
            hits += ok
        assert hits >= 2

    def test_singleton_stalls_commit_briefly(self):
        core = fresh_core(FaultHoundUnit())
        core.run_until_commits(200)
        injected = False
        for _ in range(3000):
            if core.inject_lsq_bit(0, 0, "addr", 35):
                injected = True
                break
            core.step()
        assert injected
        core.run(max_cycles=500_000)
        assert core.stats.singleton_reexecs >= 1
