"""Event-log tests: span nesting, worker spool merge, schema validity,
torn-tail tolerance and spool liveness sweeps."""

import json
import os
import signal
import subprocess
import sys

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.obs import (EventLog, NULL_LOG, WORKER_DIR_ENV, check_spans,
                       read_events, summarize_events, validate_events,
                       worker_task_span)
from repro.obs import events as events_mod

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=10, warmup_commits=200,
                         window_commits=100)


# ----------------------------------------------------------------------
# the log itself
# ----------------------------------------------------------------------
class TestEventLog:
    def test_run_envelope_and_close(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.counter("windows", 3, benchmark="mcf")
        log.close()
        events = read_events(log.path)
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"
        assert events[0]["run"] == events[-1]["run"]
        assert validate_events(events) == []

    def test_spans_nest_with_parent_links(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with log.span("outer") as outer_id:
            with log.span("inner", benchmark="mcf") as inner_id:
                pass
        log.close()
        events = read_events(log.path)
        starts = {e["name"]: e for e in events if e["type"] == "span_start"}
        assert starts["outer"]["parent"] is None
        assert starts["inner"]["parent"] == outer_id
        assert starts["inner"]["span"] == inner_id
        assert starts["inner"]["attrs"] == {"benchmark": "mcf"}
        assert validate_events(events) == []

    def test_emit_after_close_is_dropped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.emit("counter", name="late", value=1)
        assert read_events(log.path)[-1]["type"] == "run_end"

    def test_null_log_is_free_and_silent(self, tmp_path):
        assert NULL_LOG.enabled is False
        with NULL_LOG.span("anything", x=1):
            NULL_LOG.counter("n", 1)
            NULL_LOG.cache_event("fault_free", "abc", hit=True)
        assert NULL_LOG.worker_spool() is None
        assert NULL_LOG.absorb_worker_files() == 0
        NULL_LOG.close()


# ----------------------------------------------------------------------
# worker spools
# ----------------------------------------------------------------------
class TestWorkerSpool:
    def test_task_span_spools_and_parent_absorbs(self, tmp_path,
                                                 monkeypatch):
        log = EventLog(tmp_path / "events.jsonl")
        monkeypatch.setenv(WORKER_DIR_ENV, log.worker_spool())
        with worker_task_span("worker:unit", benchmark="mcf"):
            pass
        monkeypatch.delenv(WORKER_DIR_ENV)
        assert log.absorb_worker_files() >= 2   # span_start + span_end
        log.close()
        events = read_events(log.path)
        names = [e.get("name") for e in events if e["type"] == "span_start"]
        assert "worker:unit" in names
        assert any(e["type"] == "worker_merge" for e in events)
        assert validate_events(events) == []

    def test_task_span_without_env_is_noop(self, tmp_path):
        assert not os.environ.get(WORKER_DIR_ENV)
        with worker_task_span("worker:unit"):
            pass    # nothing written anywhere, nothing raised

    def test_truncated_spool_line_is_skipped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        spool_dir = log.worker_spool()
        spool = os.path.join(spool_dir, "worker-999.jsonl")
        good = json.dumps({"ts": 1.0, "type": "worker_start", "pid": 999})
        with open(spool, "w") as handle:
            handle.write(good + "\n" + '{"ts": 2.0, "type": "trunc')
        assert log.absorb_worker_files() == 1
        log.close()

    def test_stale_spools_swept_on_open(self, tmp_path, monkeypatch):
        """Spool files left by a crashed previous run belong to a dead
        timeline: a fresh log deletes them instead of merging them."""
        monkeypatch.setattr(events_mod, "_pid_alive", lambda pid: False)
        path = tmp_path / "events.jsonl"
        stale_dir = path.with_name(path.name + ".workers")
        stale_dir.mkdir()
        stale = stale_dir / "worker-111.jsonl"
        stale.write_text(json.dumps(
            {"ts": 1.0, "type": "worker_start", "pid": 111}) + "\n")
        log = EventLog(path)
        assert not stale.exists()
        log.close()
        events = read_events(path)
        sweeps = [e for e in events if e["type"] == "orphan_spool"]
        assert len(sweeps) == 1
        assert sweeps[0]["files"] == 1
        assert sweeps[0]["action"] == "swept_stale"
        assert not any(e["type"] == "worker_merge" for e in events)
        assert validate_events(events) == []

    def test_orphan_spools_dropped_on_close(self, tmp_path, monkeypatch):
        """A spool a worker is still writing at shutdown is absorbed by
        close(); an unreadable leftover is deleted and recorded."""
        monkeypatch.setattr(events_mod, "_pid_alive", lambda pid: False)
        log = EventLog(tmp_path / "events.jsonl")
        spool_dir = log.worker_spool()
        # simulate absorb_worker_files failing to consume one spool
        orphan = os.path.join(spool_dir, "worker-222.jsonl")
        real_absorb = log.absorb_worker_files

        def absorb_then_orphan():
            count = real_absorb()
            with open(orphan, "w") as handle:
                handle.write(json.dumps({"ts": 9.0, "type": "worker_start",
                                         "pid": 222}) + "\n")
            return count

        monkeypatch.setattr(log, "absorb_worker_files", absorb_then_orphan)
        log.close()
        assert not os.path.exists(orphan)
        assert not os.path.isdir(spool_dir)    # empty dir removed too
        events = read_events(log.path)
        drops = [e for e in events if e["type"] == "orphan_spool"]
        assert len(drops) == 1
        assert drops[0]["action"] == "deleted"
        assert validate_events(events) == []


# ----------------------------------------------------------------------
# spool sweep edge cases: empty spools, live owners, nested dirs
# ----------------------------------------------------------------------
class TestSpoolSweepEdges:
    def test_empty_spool_is_swept_without_marker(self, tmp_path,
                                                 monkeypatch):
        """A zero-byte spool (worker died before its first flush) is
        deleted on open like any stale spool."""
        monkeypatch.setattr(events_mod, "_pid_alive", lambda pid: False)
        path = tmp_path / "events.jsonl"
        stale_dir = path.with_name(path.name + ".workers")
        stale_dir.mkdir()
        empty = stale_dir / "worker-321.jsonl"
        empty.touch()
        log = EventLog(path)
        assert not empty.exists()
        log.close()
        events = read_events(path)
        sweeps = [e for e in events if e["type"] == "orphan_spool"]
        assert [e["action"] for e in sweeps] == ["swept_stale"]
        assert validate_events(events) == []

    def test_live_foreign_spool_is_kept_on_open(self, tmp_path,
                                                monkeypatch):
        """A spool whose encoded pid is a *live* foreign process (a
        concurrent run's worker) must not be stolen by the sweep."""
        monkeypatch.setattr(events_mod, "_pid_alive", lambda pid: True)
        path = tmp_path / "events.jsonl"
        stale_dir = path.with_name(path.name + ".workers")
        stale_dir.mkdir()
        live = stale_dir / "worker-4242.jsonl"
        live.write_text(json.dumps(
            {"ts": 1.0, "type": "worker_start", "pid": 4242}) + "\n")
        log = EventLog(path)
        assert live.exists()
        events_so_far = read_events(path)
        kept = [e for e in events_so_far if e["type"] == "orphan_spool"]
        assert len(kept) == 1
        assert kept[0]["action"] == "kept_live"
        assert kept[0]["files"] == 1
        live.unlink()   # let close() tear down cleanly
        log.close()
        assert validate_events(read_events(path)) == []

    def test_own_pid_spool_is_swept_even_while_alive(self, tmp_path):
        """Our own pid is always sweepable: a spool named after us is a
        leftover from a previous log in the same process."""
        path = tmp_path / "events.jsonl"
        stale_dir = path.with_name(path.name + ".workers")
        stale_dir.mkdir()
        own = stale_dir / f"worker-{os.getpid()}.jsonl"
        own.write_text(json.dumps(
            {"ts": 1.0, "type": "worker_start", "pid": os.getpid()}) + "\n")
        log = EventLog(path)
        assert not own.exists()
        log.close()
        sweeps = [e for e in read_events(path)
                  if e["type"] == "orphan_spool"]
        assert [e["action"] for e in sweeps] == ["swept_stale"]

    def test_nested_directory_in_spool_dir_survives(self, tmp_path,
                                                    monkeypatch):
        """A directory that happens to match the spool glob is not a
        spool: the sweep skips it (unlink fails), close() leaves the
        spool dir in place, and nothing raises."""
        monkeypatch.setattr(events_mod, "_pid_alive", lambda pid: False)
        path = tmp_path / "events.jsonl"
        spool_dir = path.with_name(path.name + ".workers")
        nested = spool_dir / "worker-777.jsonl"
        nested.mkdir(parents=True)
        (nested / "inner.txt").write_text("not a spool\n")
        log = EventLog(path)
        log.close()
        assert nested.is_dir()                 # untouched
        assert (nested / "inner.txt").exists()
        assert spool_dir.is_dir()              # rmdir declined, no raise
        events = read_events(path)
        assert not any(e["type"] == "worker_merge" for e in events)
        assert validate_events(events) == []

    def test_live_foreign_spool_kept_on_close(self, tmp_path,
                                              monkeypatch):
        """The close-time orphan drop honours liveness too: a live
        foreign spool is recorded as kept, not deleted."""
        monkeypatch.setattr(events_mod, "_pid_alive", lambda pid: True)
        log = EventLog(tmp_path / "events.jsonl")
        spool_dir = log.worker_spool()
        orphan = os.path.join(spool_dir, "worker-5151.jsonl")
        real_absorb = log.absorb_worker_files

        def absorb_then_orphan():
            count = real_absorb()
            with open(orphan, "w") as handle:
                handle.write(json.dumps({"ts": 9.0, "type": "worker_start",
                                         "pid": 5151}) + "\n")
            return count

        monkeypatch.setattr(log, "absorb_worker_files", absorb_then_orphan)
        log.close()
        assert os.path.exists(orphan)          # not stolen
        assert os.path.isdir(spool_dir)        # rmdir declined
        drops = [e for e in read_events(log.path)
                 if e["type"] == "orphan_spool"]
        assert len(drops) == 1
        assert drops[0]["action"] == "kept_live"
        assert validate_events(read_events(log.path)) == []


# ----------------------------------------------------------------------
# torn final lines: a writer SIGKILLed mid-append must not poison reads
# ----------------------------------------------------------------------
class TestTornTail:
    def test_unparseable_tail_becomes_note_event(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        tail = '{"ts": 2.0, "type": "counter", "na'
        path.write_text('{"ts": 1.5, "type": "worker_start", "pid": 7}\n'
                        + tail)
        events = read_events(path)
        assert [e["type"] for e in events] == ["worker_start",
                                               "truncated_tail"]
        note = events[-1]
        assert note["line"] == 2
        assert note["bytes"] == len(tail.encode())
        assert note["ts"] == 1.5       # inherits the last good timestamp
        assert validate_events(events) == []

    def test_parseable_tail_without_newline_is_kept(self, tmp_path):
        path = tmp_path / "flushless.jsonl"
        path.write_text('{"ts": 1.0, "type": "worker_start", "pid": 7}\n'
                        '{"ts": 2.0, "type": "counter", "pid": 7, '
                        '"name": "n", "value": 1, "attrs": {}}')
        events = read_events(path)
        assert [e["type"] for e in events] == ["worker_start", "counter"]

    def test_corrupt_interior_line_still_fatal(self, tmp_path):
        """Torn-tail tolerance is only for the final newline-less line;
        garbage *with* a newline stays a hard error."""
        path = tmp_path / "bad.jsonl"
        path.write_text('not json\n{"ts": 2.0, "type": "x", "pid": 1}\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_events(path)

    def test_sigkilled_writer_leaves_readable_log(self, tmp_path):
        """End to end: a child process SIGKILLs itself halfway through
        an append; the log stays readable and the ragged end surfaces
        as one truncated_tail note."""
        path = tmp_path / "killed.jsonl"
        script = (
            "import os, signal, sys\n"
            "handle = open(sys.argv[1], 'w')\n"
            "handle.write('{\"ts\": 1.0, \"type\": \"worker_start\", "
            "\"pid\": 7}\\n')\n"
            "handle.write('{\"ts\": 2.0, \"type\": \"counter\", \"val')\n"
            "handle.flush()\n"
            "os.kill(os.getpid(), signal.SIGKILL)\n")
        proc = subprocess.run([sys.executable, "-c", script, str(path)])
        assert proc.returncode == -signal.SIGKILL
        events = read_events(path)
        assert [e["type"] for e in events] == ["worker_start",
                                               "truncated_tail"]
        assert validate_events(events) == []


# ----------------------------------------------------------------------
# schema structural checks
# ----------------------------------------------------------------------
class TestSpanDiscipline:
    def test_unclosed_span_is_an_error(self):
        events = [{"ts": 1, "type": "span_start", "pid": 1, "span": "1:1",
                   "name": "open", "attrs": {}}]
        assert any("never ended" in e for e in check_spans(events))

    def test_out_of_order_close_is_an_error(self):
        events = [
            {"ts": 1, "type": "span_start", "pid": 1, "span": "1:1",
             "name": "a", "attrs": {}},
            {"ts": 2, "type": "span_start", "pid": 1, "span": "1:2",
             "name": "b", "attrs": {}},
            {"ts": 3, "type": "span_end", "pid": 1, "span": "1:1",
             "name": "a", "seconds": 0.1},
        ]
        assert any("out of order" in e for e in check_spans(events))

    def test_interleaved_pids_nest_independently(self):
        events = [
            {"ts": 1, "type": "span_start", "pid": 1, "span": "1:1",
             "name": "a", "attrs": {}},
            {"ts": 2, "type": "span_start", "pid": 2, "span": "2:1",
             "name": "b", "attrs": {}},
            {"ts": 3, "type": "span_end", "pid": 1, "span": "1:1",
             "name": "a", "seconds": 0.1},
            {"ts": 4, "type": "span_end", "pid": 2, "span": "2:1",
             "name": "b", "seconds": 0.1},
        ]
        assert check_spans(events) == []


# ----------------------------------------------------------------------
# end to end: a parallel campaign's log is schema-valid and nested
# ----------------------------------------------------------------------
class TestCampaignLog:
    def test_parallel_campaign_log_is_schema_valid(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        ctx = ExperimentContext(_TINY, jobs=2, events=log)
        ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        log.close()
        events = read_events(log.path)
        assert validate_events(events) == []
        audits = [e for e in events if e["type"] == "fault_audit"]
        assert sum(1 for e in audits
                   if e["phase"] == "characterize") == _TINY.num_faults
        assert sum(1 for e in audits if e["phase"] == "coverage") == len(
            coverage.coverage_results)
        summary = summarize_events(events)
        assert "phase:characterize" in summary["span_seconds"]
        # the spool directory was fully absorbed
        assert not any(log.worker_dir.glob("worker-*.jsonl"))

    def test_serial_campaign_log_is_schema_valid(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        ctx = ExperimentContext(_TINY, jobs=1, events=log)
        ctx.campaign("mcf")
        log.close()
        events = read_events(log.path)
        assert validate_events(events) == []
        assert sum(1 for e in events
                   if e["type"] == "fault_audit") == _TINY.num_faults

    def test_read_events_rejects_corrupt_log(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_events(path)
