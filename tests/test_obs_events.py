"""Event-log tests: span nesting, worker spool merge, schema validity."""

import json
import os

import pytest

from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.obs import (EventLog, NULL_LOG, WORKER_DIR_ENV, check_spans,
                       read_events, summarize_events, validate_events,
                       worker_task_span)

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=10, warmup_commits=200,
                         window_commits=100)


# ----------------------------------------------------------------------
# the log itself
# ----------------------------------------------------------------------
class TestEventLog:
    def test_run_envelope_and_close(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.counter("windows", 3, benchmark="mcf")
        log.close()
        events = read_events(log.path)
        assert events[0]["type"] == "run_start"
        assert events[-1]["type"] == "run_end"
        assert events[0]["run"] == events[-1]["run"]
        assert validate_events(events) == []

    def test_spans_nest_with_parent_links(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with log.span("outer") as outer_id:
            with log.span("inner", benchmark="mcf") as inner_id:
                pass
        log.close()
        events = read_events(log.path)
        starts = {e["name"]: e for e in events if e["type"] == "span_start"}
        assert starts["outer"]["parent"] is None
        assert starts["inner"]["parent"] == outer_id
        assert starts["inner"]["span"] == inner_id
        assert starts["inner"]["attrs"] == {"benchmark": "mcf"}
        assert validate_events(events) == []

    def test_emit_after_close_is_dropped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.emit("counter", name="late", value=1)
        assert read_events(log.path)[-1]["type"] == "run_end"

    def test_null_log_is_free_and_silent(self, tmp_path):
        assert NULL_LOG.enabled is False
        with NULL_LOG.span("anything", x=1):
            NULL_LOG.counter("n", 1)
            NULL_LOG.cache_event("fault_free", "abc", hit=True)
        assert NULL_LOG.worker_spool() is None
        assert NULL_LOG.absorb_worker_files() == 0
        NULL_LOG.close()


# ----------------------------------------------------------------------
# worker spools
# ----------------------------------------------------------------------
class TestWorkerSpool:
    def test_task_span_spools_and_parent_absorbs(self, tmp_path,
                                                 monkeypatch):
        log = EventLog(tmp_path / "events.jsonl")
        monkeypatch.setenv(WORKER_DIR_ENV, log.worker_spool())
        with worker_task_span("worker:unit", benchmark="mcf"):
            pass
        monkeypatch.delenv(WORKER_DIR_ENV)
        assert log.absorb_worker_files() >= 2   # span_start + span_end
        log.close()
        events = read_events(log.path)
        names = [e.get("name") for e in events if e["type"] == "span_start"]
        assert "worker:unit" in names
        assert any(e["type"] == "worker_merge" for e in events)
        assert validate_events(events) == []

    def test_task_span_without_env_is_noop(self, tmp_path):
        assert not os.environ.get(WORKER_DIR_ENV)
        with worker_task_span("worker:unit"):
            pass    # nothing written anywhere, nothing raised

    def test_truncated_spool_line_is_skipped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        spool_dir = log.worker_spool()
        spool = os.path.join(spool_dir, "worker-999.jsonl")
        good = json.dumps({"ts": 1.0, "type": "worker_start", "pid": 999})
        with open(spool, "w") as handle:
            handle.write(good + "\n" + '{"ts": 2.0, "type": "trunc')
        assert log.absorb_worker_files() == 1
        log.close()

    def test_stale_spools_swept_on_open(self, tmp_path):
        """Spool files left by a crashed previous run belong to a dead
        timeline: a fresh log deletes them instead of merging them."""
        path = tmp_path / "events.jsonl"
        stale_dir = path.with_name(path.name + ".workers")
        stale_dir.mkdir()
        stale = stale_dir / "worker-111.jsonl"
        stale.write_text(json.dumps(
            {"ts": 1.0, "type": "worker_start", "pid": 111}) + "\n")
        log = EventLog(path)
        assert not stale.exists()
        log.close()
        events = read_events(path)
        sweeps = [e for e in events if e["type"] == "orphan_spool"]
        assert len(sweeps) == 1
        assert sweeps[0]["files"] == 1
        assert sweeps[0]["action"] == "swept_stale"
        assert not any(e["type"] == "worker_merge" for e in events)
        assert validate_events(events) == []

    def test_orphan_spools_dropped_on_close(self, tmp_path, monkeypatch):
        """A spool a worker is still writing at shutdown is absorbed by
        close(); an unreadable leftover is deleted and recorded."""
        log = EventLog(tmp_path / "events.jsonl")
        spool_dir = log.worker_spool()
        # simulate absorb_worker_files failing to consume one spool
        orphan = os.path.join(spool_dir, "worker-222.jsonl")
        real_absorb = log.absorb_worker_files

        def absorb_then_orphan():
            count = real_absorb()
            with open(orphan, "w") as handle:
                handle.write(json.dumps({"ts": 9.0, "type": "worker_start",
                                         "pid": 222}) + "\n")
            return count

        monkeypatch.setattr(log, "absorb_worker_files", absorb_then_orphan)
        log.close()
        assert not os.path.exists(orphan)
        assert not os.path.isdir(spool_dir)    # empty dir removed too
        events = read_events(log.path)
        drops = [e for e in events if e["type"] == "orphan_spool"]
        assert len(drops) == 1
        assert drops[0]["action"] == "deleted"
        assert validate_events(events) == []


# ----------------------------------------------------------------------
# schema structural checks
# ----------------------------------------------------------------------
class TestSpanDiscipline:
    def test_unclosed_span_is_an_error(self):
        events = [{"ts": 1, "type": "span_start", "pid": 1, "span": "1:1",
                   "name": "open", "attrs": {}}]
        assert any("never ended" in e for e in check_spans(events))

    def test_out_of_order_close_is_an_error(self):
        events = [
            {"ts": 1, "type": "span_start", "pid": 1, "span": "1:1",
             "name": "a", "attrs": {}},
            {"ts": 2, "type": "span_start", "pid": 1, "span": "1:2",
             "name": "b", "attrs": {}},
            {"ts": 3, "type": "span_end", "pid": 1, "span": "1:1",
             "name": "a", "seconds": 0.1},
        ]
        assert any("out of order" in e for e in check_spans(events))

    def test_interleaved_pids_nest_independently(self):
        events = [
            {"ts": 1, "type": "span_start", "pid": 1, "span": "1:1",
             "name": "a", "attrs": {}},
            {"ts": 2, "type": "span_start", "pid": 2, "span": "2:1",
             "name": "b", "attrs": {}},
            {"ts": 3, "type": "span_end", "pid": 1, "span": "1:1",
             "name": "a", "seconds": 0.1},
            {"ts": 4, "type": "span_end", "pid": 2, "span": "2:1",
             "name": "b", "seconds": 0.1},
        ]
        assert check_spans(events) == []


# ----------------------------------------------------------------------
# end to end: a parallel campaign's log is schema-valid and nested
# ----------------------------------------------------------------------
class TestCampaignLog:
    def test_parallel_campaign_log_is_schema_valid(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        ctx = ExperimentContext(_TINY, jobs=2, events=log)
        ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        log.close()
        events = read_events(log.path)
        assert validate_events(events) == []
        audits = [e for e in events if e["type"] == "fault_audit"]
        assert sum(1 for e in audits
                   if e["phase"] == "characterize") == _TINY.num_faults
        assert sum(1 for e in audits if e["phase"] == "coverage") == len(
            coverage.coverage_results)
        summary = summarize_events(events)
        assert "phase:characterize" in summary["span_seconds"]
        # the spool directory was fully absorbed
        assert not any(log.worker_dir.glob("worker-*.jsonl"))

    def test_serial_campaign_log_is_schema_valid(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        ctx = ExperimentContext(_TINY, jobs=1, events=log)
        ctx.campaign("mcf")
        log.close()
        events = read_events(log.path)
        assert validate_events(events) == []
        assert sum(1 for e in events
                   if e["type"] == "fault_audit") == _TINY.num_faults

    def test_read_events_rejects_corrupt_log(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_events(path)
