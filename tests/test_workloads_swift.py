"""SWIFT-lite software-redundancy variant tests."""

import pytest

from repro.isa.interpreter import Interpreter
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_program
from repro.workloads.generator import HEAP_BASE, MAX_CHASE_WORDS


def sentinel_address(profile):
    chase_words = min(profile.working_set_words, MAX_CHASE_WORDS)
    return HEAP_BASE + 8 * chase_words      # seq_base, word 0


@pytest.mark.parametrize("name", ["bzip2", "dealII", "oltp"])
def test_swift_variant_runs_clean_fault_free(name):
    """Fault-free, the shadow always matches: the handler never fires."""
    program = build_program(PROFILES[name], 3000, swift=True)
    interp = Interpreter(program)
    interp.run(max_instructions=40_000)
    assert interp.state.halted
    assert not interp.exceptions
    assert interp.state.read_mem(sentinel_address(PROFILES[name])) != 0xDEAD


def test_swift_costs_real_instructions():
    """The related-work claim: software redundancy's overhead remains —
    the SWIFT variant executes a substantially longer dynamic stream for
    the same loop trip count."""
    profile = PROFILES["gamess"]
    plain = build_program(profile, 3000)
    swift = build_program(profile, 3000, swift=True)

    def per_iteration(program):
        # instructions between the loop label and the back-edge
        start = program.labels["loop"]
        return len(program.instructions) - start - 1

    assert per_iteration(swift) > 1.15 * per_iteration(plain)
    # and the duplicated work costs cycles on the pipeline
    core_plain = PipelineCore([plain])
    core_plain.run(max_cycles=2_000_000)
    core_swift = PipelineCore([swift])
    core_swift.run(max_cycles=2_000_000)
    plain_cpi = core_plain.stats.cycles / max(1, core_plain.stats.committed)
    swift_total = core_swift.stats.cycles
    # same trip count, more instructions: total cycles must grow
    assert swift_total > core_plain.stats.cycles


def test_swift_detects_value_corruption():
    """Corrupt the architectural value accumulator (r4) but not its
    shadow: the next pre-store compare must fire the handler."""
    profile = PROFILES["bzip2"]
    program = build_program(profile, 4000, swift=True)
    core = PipelineCore([program])
    core.run_until_commits(800)
    victim = core.threads[0].committed_rat.get(4)
    core.inject_prf_bit(victim, bit=10)
    core.run(max_cycles=2_000_000)
    assert core.all_halted
    thread = core.threads[0]
    detected = thread.memory.read(sentinel_address(profile)) == 0xDEAD
    # either the flipped value was already dead (masked) or SWIFT caught it
    if not detected:
        # masked case: the run must have completed the full loop instead
        assert thread.committed_count > 1000
    else:
        assert detected


def test_swift_shadow_untouched_by_outliers():
    """Outlier iterations kick r4 and r30 identically (the shadow chain
    duplicates the kick), so no false detections occur."""
    profile = PROFILES["apache"]        # outliers + region switches
    program = build_program(profile, 5000, swift=True)
    interp = Interpreter(program)
    interp.run(max_instructions=60_000)
    assert interp.state.halted
    assert interp.state.read_mem(sentinel_address(profile)) != 0xDEAD
