"""ISA-differential fuzz corpus: 200+ fixed-seed random programs run
through the out-of-order core and the architectural interpreter in
lockstep (repro.harness.diff), diffing architectural state at every
commit, with the invariant sanitizer armed per-cycle.

The corpus schedule in ``build_case`` rotates generator profile
(mixed / forwarding-heavy / violation-heavy), thread count (single and
SMT), and screening scheme (baseline and faulthound), so the fixed seed
range [0, 200) exercises every combination deterministically. Batched
20 seeds per test so a regression names the narrow seed range that
caught it.
"""

import pytest

from repro.harness.diff import build_case, run_case, run_corpus
from repro.workloads import GEN_PROFILES

CORPUS_SIZE = 200
BATCH = 20


@pytest.mark.parametrize("base_seed", range(0, CORPUS_SIZE, BATCH))
def test_differential_batch(base_seed):
    report = run_corpus(count=BATCH, base_seed=base_seed)
    assert report.ok, "\n".join(
        f"{o.case.label}: {o.divergence or o.first_violation}"
        for o in report.failures)
    summary = report.summary()
    assert summary["cases"] == BATCH
    assert summary["commits"] > 0


def test_corpus_schedule_covers_every_combination():
    """Every (profile, threads, scheme) cell appears in the corpus."""
    cells = {(c.profile, c.threads, c.scheme)
             for c in (build_case(s) for s in range(CORPUS_SIZE))}
    for profile in GEN_PROFILES:
        for threads in (1, 2):
            for scheme in (None, "faulthound"):
                assert (profile, threads, scheme) in cells, \
                    f"corpus never runs {profile}/{threads}t/{scheme}"


def test_corpus_exercises_target_mechanisms():
    """The profile mix must actually stress the mechanisms it names:
    store-to-load forwarding fires and memory-order violations (squash +
    re-fetch) occur across one representative batch."""
    report = run_corpus(count=30)
    assert report.ok
    summary = report.summary()
    assert summary["forwarded_loads"] > 0
    assert summary["mem_order_violations"] > 0


def test_single_case_outcome_shape():
    outcome = run_case(build_case(0))
    assert outcome.ok
    assert outcome.cycles > 0
    assert outcome.commits > 0
    assert outcome.divergence is None
    assert outcome.invariant_violations == 0


def test_divergence_detected_when_core_lies():
    """End-to-end self-check: a deliberately corrupted architectural
    register must surface as a register divergence, proving the
    harness's compare actually bites."""
    from repro.harness.diff import case_programs, lockstep_diff

    case = build_case(1)
    programs = case_programs(case)

    from repro.pipeline import PipelineCore

    core = PipelineCore(programs)
    core.run(max_cycles=200_000)
    assert core.all_halted
    # corrupt one architectural register, then ask the harness to diff
    # the final states the way its epilogue does
    thread = core.threads[0]
    from repro.harness.diff import _diff_states
    from repro.isa.interpreter import Interpreter

    interp = Interpreter(programs[0])
    interp.run(max_instructions=500_000)
    tag = thread.committed_rat.map[5]
    core.prf.values[tag] ^= 0xFF
    divergence = _diff_states(thread, core.prf, interp, core.cycle)
    assert divergence is not None
    assert divergence.kind == "register"
