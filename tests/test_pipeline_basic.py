"""Pipeline functional tests: single-thread correctness."""

import pytest

from repro.config import HardwareConfig
from repro.isa import assemble
from repro.isa.interpreter import run_program
from repro.pipeline import PipelineCore


def run_pipeline(src, hw=None, **kwargs):
    program = assemble(src)
    core = PipelineCore([program], hw=hw or HardwareConfig(), **kwargs)
    core.run(max_cycles=100_000)
    assert core.all_halted, "pipeline did not finish"
    return core


def arch_regs(core, thread=0):
    t = core.threads[thread]
    return [t.arch_reg_value(r, core.prf) for r in range(32)]


def test_simple_alu_chain():
    core = run_pipeline("""
        movi r1, 11
        movi r2, 31
        add  r3, r1, r2
        sub  r4, r3, r1
        halt
    """)
    regs = arch_regs(core)
    assert regs[3] == 42
    assert regs[4] == 31


def test_matches_interpreter_on_loop():
    src = """
        movi r1, 20
        movi r2, 0
        loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    core = run_pipeline(src)
    golden = run_program(assemble(src))
    assert core.threads[0].arch_state_snapshot(core.prf) == golden.snapshot()


def test_load_store_through_memory():
    core = run_pipeline("""
        movi r1, 0x1000
        movi r2, 99
        st   r2, 0(r1)
        ld   r3, 0(r1)
        addi r3, r3, 1
        halt
    """)
    assert arch_regs(core)[3] == 100
    assert core.threads[0].memory.read(0x1000) == 99


def test_store_to_load_forwarding_value_correct():
    # the store has not committed when the load executes: must forward
    core = run_pipeline("""
        movi r1, 0x2000
        movi r2, 7
        st   r2, 0(r1)
        ld   r3, 0(r1)
        st   r3, 8(r1)
        ld   r4, 8(r1)
        halt
    """)
    assert arch_regs(core)[4] == 7


def test_branch_misprediction_recovers_state():
    # data-dependent branch pattern the bimodal predictor must miss at
    # least once; wrong-path work must leave no architectural residue.
    src = """
        movi r1, 30
        movi r2, 0
        movi r5, 0x100
        loop:
        andi r3, r1, 1
        beq  r3, r0, skip
        addi r2, r2, 5
        st   r2, 0(r5)
        skip:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    core = run_pipeline(src)
    golden = run_program(assemble(src))
    assert core.threads[0].arch_state_snapshot(core.prf) == golden.snapshot()
    assert core.stats.branch_mispredicts > 0


def test_exception_halts_thread_precisely():
    src = """
        movi r1, 3
        movi r2, 5
        ld   r3, 0(r1)
        movi r2, 100
        halt
    """
    core = run_pipeline(src)
    thread = core.threads[0]
    assert len(thread.exceptions) == 1
    assert thread.exceptions[0][2] == 3        # faulting address
    # the instruction after the fault never committed
    assert arch_regs(core)[2] == 5
    golden_state = run_program(assemble(src))
    assert thread.arch_state_snapshot(core.prf) == golden_state.snapshot()


def test_program_without_halt_runs_off_end():
    core = run_pipeline("""
        movi r1, 4
        nop
    """)
    assert arch_regs(core)[1] == 4
    assert core.threads[0].halted


def test_mul_and_fp_latencies_respected():
    core = run_pipeline("""
        movi r1, 6
        movi r2, 7
        mul  r3, r1, r2
        fadd r4, r3, r1
        fmul r5, r4, r2
        halt
    """)
    regs = arch_regs(core)
    assert regs[3] == 42
    assert regs[4] == 48
    assert regs[5] == 336


def test_r0_never_written():
    core = run_pipeline("""
        movi r0, 55
        add  r1, r0, r0
        halt
    """)
    assert arch_regs(core)[0] == 0
    assert arch_regs(core)[1] == 0


def test_stats_accumulate():
    core = run_pipeline("""
        movi r1, 5
        addi r1, r1, 1
        halt
    """)
    stats = core.stats
    assert stats.committed == 3
    assert stats.cycles > 0
    assert stats.fetched >= 3
    assert stats.ipc > 0
    assert stats.thread_committed(0) == 3


def test_two_smt_threads_both_finish():
    prog_a = assemble("""
        movi r1, 100
        loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    prog_b = assemble("""
        movi r2, 0x400
        movi r3, 17
        st   r3, 0(r2)
        ld   r4, 0(r2)
        halt
    """)
    core = PipelineCore([prog_a, prog_b])
    core.run(max_cycles=100_000)
    assert core.all_halted
    assert core.threads[0].arch_reg_value(1, core.prf) == 0
    assert core.threads[1].arch_reg_value(4, core.prf) == 17
    assert core.threads[1].memory.read(0x400) == 17


def test_smt_threads_isolated_memory():
    prog = assemble("""
        movi r1, 0x800
        movi r2, 1
        st   r2, 0(r1)
        halt
    """)
    core = PipelineCore([prog, assemble("halt")])
    core.run(max_cycles=50_000)
    assert core.threads[0].memory.read(0x800) == 1
    assert core.threads[1].memory.read(0x800) == 0


def test_run_until_commits():
    program = assemble("""
        movi r1, 1000
        loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    core = PipelineCore([program])
    done = core.run_until_commits(50)
    assert done >= 50
    assert not core.all_halted


def test_max_commits_halts_thread():
    program = assemble("""
        movi r1, 100000
        loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)
    core = PipelineCore([program],
                        thread_options=[{"max_commits": 200}])
    core.run(max_cycles=50_000)
    assert core.all_halted
    assert core.threads[0].committed_count == 200


def test_ideal_branch_thread_never_mispredicts():
    src = """
        movi r1, 40
        movi r2, 0
        loop:
        andi r3, r1, 1
        beq  r3, r0, skip
        addi r2, r2, 5
        skip:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """
    core = PipelineCore([assemble(src)],
                        thread_options=[{"ideal_branch": True}])
    core.run(max_cycles=100_000)
    assert core.all_halted
    assert core.stats.branch_mispredicts == 0
    golden = run_program(assemble(src))
    assert core.threads[0].arch_state_snapshot(core.prf) == golden.snapshot()


def test_ideal_memory_thread_all_l1_hits():
    src = """
        movi r1, 0
        movi r2, 200
        loop:
        ld   r3, 0x10000(r1)
        addi r1, r1, 4096
        addi r2, r2, -1
        bne  r2, r0, loop
        halt
    """
    real = PipelineCore([assemble(src)])
    real.run(max_cycles=500_000)
    ideal = PipelineCore([assemble(src)],
                         thread_options=[{"ideal_memory": True}])
    ideal.run(max_cycles=500_000)
    assert ideal.stats.cycles < real.stats.cycles
