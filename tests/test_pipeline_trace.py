"""Pipeline tracer tests."""

from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.trace import PipelineTracer

SRC = """
    movi r1, 20
    movi r2, 0x400
loop:
    st   r1, 0(r2)
    ld   r3, 0(r2)
    add  r4, r3, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def traced_core(screening=None, cycles=400):
    core = PipelineCore([assemble(SRC)], screening=screening)
    tracer = PipelineTracer(core)
    tracer.run(cycles)
    return core, tracer


def test_tracer_collects_ops():
    core, tracer = traced_core()
    assert len(tracer.traced_ops) > 20
    uids = [op.uid for op in tracer.traced_ops]
    assert uids == sorted(uids)


def test_render_contains_lanes_and_stages():
    _, tracer = traced_core()
    text = tracer.render(limit=15)
    assert "uid" in text
    assert "|" in text
    assert "R" in text          # something retired
    assert "E" in text          # something executed


def test_render_respects_first_uid_and_limit():
    _, tracer = traced_core()
    text = tracer.render(first_uid=10, limit=5)
    rows = [l for l in text.splitlines()[1:] if l.strip()]
    assert len(rows) <= 5
    first = int(rows[0].split()[0])
    assert first >= 10


def test_render_empty_window():
    core = PipelineCore([assemble("halt")])
    tracer = PipelineTracer(core)
    assert tracer.render() == "(no ops traced)"


def test_stage_histogram_keys_and_sanity():
    _, tracer = traced_core()
    histogram = tracer.stage_histogram()
    assert set(histogram) == {"frontend", "wait", "execute", "commit_wait"}
    assert histogram["frontend"] >= 1.0
    assert histogram["execute"] >= 1.0


def test_commit_cycle_recorded():
    core, tracer = traced_core()
    committed = [op for op in tracer.traced_ops if op.cycle_committed >= 0]
    assert committed
    for op in committed:
        assert op.cycle_committed >= op.cycle_completed >= op.cycle_issued


def test_tracer_with_screening_shows_replays():
    core, tracer = traced_core(screening=FaultHoundUnit())
    assert core.stats.committed > 0
    # the render must not crash with replayed/rolled-back ops in the log
    assert tracer.render(limit=40)


def test_max_ops_cap():
    core = PipelineCore([assemble(SRC)])
    tracer = PipelineTracer(core, max_ops=5)
    tracer.run(200)
    assert len(tracer.traced_ops) <= 5
