"""Pipeline tracer tests."""

from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.trace import PipelineTracer

SRC = """
    movi r1, 20
    movi r2, 0x400
loop:
    st   r1, 0(r2)
    ld   r3, 0(r2)
    add  r4, r3, r1
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def traced_core(screening=None, cycles=400):
    core = PipelineCore([assemble(SRC)], screening=screening)
    tracer = PipelineTracer(core)
    tracer.run(cycles)
    return core, tracer


def test_tracer_collects_ops():
    core, tracer = traced_core()
    assert len(tracer.traced_ops) > 20
    uids = [op.uid for op in tracer.traced_ops]
    assert uids == sorted(uids)


def test_render_contains_lanes_and_stages():
    _, tracer = traced_core()
    text = tracer.render(limit=15)
    assert "uid" in text
    assert "|" in text
    assert "R" in text          # something retired
    assert "E" in text          # something executed


def test_render_respects_first_uid_and_limit():
    _, tracer = traced_core()
    text = tracer.render(first_uid=10, limit=5)
    rows = [l for l in text.splitlines()[1:] if l.strip()]
    assert len(rows) <= 5
    first = int(rows[0].split()[0])
    assert first >= 10


def test_render_empty_window():
    core = PipelineCore([assemble("halt")])
    tracer = PipelineTracer(core)
    assert tracer.render() == "(no ops traced)"


def test_stage_histogram_keys_and_sanity():
    _, tracer = traced_core()
    histogram = tracer.stage_histogram()
    assert set(histogram) == {"frontend", "wait", "execute", "commit_wait"}
    assert histogram["frontend"] >= 1.0
    assert histogram["execute"] >= 1.0


def test_commit_cycle_recorded():
    core, tracer = traced_core()
    committed = [op for op in tracer.traced_ops if op.cycle_committed >= 0]
    assert committed
    for op in committed:
        assert op.cycle_committed >= op.cycle_completed >= op.cycle_issued


def test_tracer_with_screening_shows_replays():
    core, tracer = traced_core(screening=FaultHoundUnit())
    assert core.stats.committed > 0
    # the render must not crash with replayed/rolled-back ops in the log
    assert tracer.render(limit=40)


def test_max_ops_cap():
    core = PipelineCore([assemble(SRC)])
    tracer = PipelineTracer(core, max_ops=5)
    tracer.run(200)
    assert len(tracer.traced_ops) <= 5


def test_inflight_ops_is_the_public_iteration_surface():
    core, _ = traced_core(cycles=40)
    seen = list(core.inflight_ops())
    # everything the generator yields is a live micro-op with a uid,
    # and no uid appears twice in one sweep
    uids = [op.uid for op in seen]
    assert len(uids) == len(set(uids))
    for op in seen:
        assert op.cycle_fetched >= 0


def test_squashed_before_issue_renders_tail():
    from repro.isa import Instruction, Opcode
    from repro.pipeline.uops import MicroOp, OpState

    op = MicroOp(1, 0, 0, Instruction(Opcode.ADD, rd=1),
                 cycle_fetched=5, dispatch_ready_at=8)
    op.state = OpState.SQUASHED
    assert op.cycle_issued < 0
    stage = PipelineTracer._stage_at
    assert stage(op, 6) == "F"      # still in the front end
    assert stage(op, 8) == "x"      # tail starts at dispatch-ready
    assert stage(op, 30) == "x"     # and never falls through to "w"


def test_stage_histogram_on_known_program():
    # A straight-line 20-op program with no branches: every op commits,
    # so the histogram must account for all of them with sane stages.
    source = "\n".join(f"movi r{1 + (i % 6)}, {i}" for i in range(20))
    core = PipelineCore([assemble(source + "\nhalt")])
    tracer = PipelineTracer(core)
    tracer.run(400)
    assert core.all_halted
    committed = [op for op in tracer.traced_ops
                 if op.cycle_committed >= 0 and op.cycle_issued >= 0]
    assert len(committed) >= 20
    histogram = tracer.stage_histogram()
    assert set(histogram) == {"frontend", "wait", "execute", "commit_wait"}
    for stage_name, mean_cycles in histogram.items():
        assert mean_cycles >= 0.0
    # front end is at least fetch->dispatch, execution at least one cycle
    assert histogram["frontend"] >= 1.0
    assert histogram["execute"] >= 1.0
