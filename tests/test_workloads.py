"""Workload generator tests: structure, determinism, locality character."""

import random

import pytest

from repro.errors import WorkloadError
from repro.isa.interpreter import Interpreter
from repro.pipeline import PipelineCore
from repro.workloads import (PROFILES, SUITES, WorkloadProfile,
                             build_program, build_smt_programs, pointer_ring,
                             region_bases)


class TestValueModels:
    def test_pointer_ring_is_one_cycle(self):
        ring = pointer_ring(random.Random(1), base=0x1000, words=64)
        assert len(ring) == 64
        seen = set()
        addr = 0x1000
        for _ in range(64):
            assert addr not in seen
            seen.add(addr)
            addr = ring[addr]
        assert addr == 0x1000  # closed cycle visiting every slot

    def test_pointer_ring_aligned(self):
        ring = pointer_ring(random.Random(2), base=0x2000, words=16)
        assert all(a % 8 == 0 and v % 8 == 0 for a, v in ring.items())

    def test_pointer_ring_rejects_tiny(self):
        with pytest.raises(ValueError):
            pointer_ring(random.Random(0), 0, 1)

    def test_region_bases_disjoint(self):
        bases = region_bases(0x1000, 4, 128)
        assert len(set(bases)) == 4
        assert bases[1] - bases[0] == 8 * 128


class TestProfiles:
    def test_all_table1_benchmarks_present(self):
        expected = {"perl", "bzip2", "mcf", "astar", "dealII", "gamess",
                    "leslie3d", "apache", "specjbb", "oltp", "ocean",
                    "raytrace", "volrend", "water-nsquared"}
        assert set(PROFILES) == expected

    def test_suites_partition_profiles(self):
        names = [n for members in SUITES.values() for n in members]
        assert sorted(names) == sorted(PROFILES)

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="s", value_model="bogus")
        with pytest.raises(ValueError):
            WorkloadProfile(name="x", suite="s", pointer_chase=1.5)


class TestGenerator:
    def test_build_is_deterministic(self):
        a = build_program(PROFILES["mcf"], 5000)
        b = build_program(PROFILES["mcf"], 5000)
        assert a.instructions == b.instructions
        assert a.initial_memory == b.initial_memory

    def test_copies_differ(self):
        a = build_program(PROFILES["bzip2"], 5000, copy_index=0)
        b = build_program(PROFILES["bzip2"], 5000, copy_index=1)
        assert a.initial_regs != b.initial_regs or \
            a.initial_memory != b.initial_memory

    def test_smt_builder_returns_two_copies(self):
        programs = build_smt_programs(PROFILES["perl"], 4000)
        assert len(programs) == 2
        assert programs[0].name == "perl.0"

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_every_profile_interprets_cleanly(self, name):
        """Every benchmark must run exception-free on the golden model and
        commit at least its dynamic target."""
        program = build_program(PROFILES[name], 3000)
        interp = Interpreter(program)
        interp.run(max_instructions=20_000)
        assert not interp.exceptions
        assert interp.state.instret >= 3000

    def test_dynamic_target_respected(self):
        program = build_program(PROFILES["gamess"], 8000)
        interp = Interpreter(program)
        interp.run(max_instructions=100_000)
        assert interp.state.halted
        assert interp.state.instret >= 8000

    def test_pointer_chase_profile_reads_ring(self):
        program = build_program(PROFILES["mcf"], 2000)
        assert len(program.initial_memory) > 1000  # the chase ring

    def test_rejects_non_power_of_two_working_set(self):
        profile = WorkloadProfile(name="x", suite="s",
                                  working_set_words=3000)
        with pytest.raises(WorkloadError):
            build_program(profile, 1000)


class TestLocalityCharacter:
    def _store_value_bits_changed(self, name, n=400):
        """Average changed bits per consecutive store value."""
        program = build_program(PROFILES[name], 6000)
        interp = Interpreter(program)
        interp.trace_memory_ops = True
        interp.run(max_instructions=30_000)
        values = [v for k, v in interp.mem_trace if k == "store_value"]
        values = values[:n]
        assert len(values) > 50
        flips = [(a ^ b).bit_count() for a, b in zip(values, values[1:])]
        return sum(flips) / len(flips)

    def test_counter_model_changes_few_bits(self):
        assert self._store_value_bits_changed("bzip2") < 6

    def test_wide_model_changes_many_bits(self):
        narrow = self._store_value_bits_changed("bzip2")
        wide = self._store_value_bits_changed("leslie3d")
        assert wide > narrow + 4

    def test_branchy_profile_mispredicts_more(self):
        def mispredict_rate(name):
            program = build_program(PROFILES[name], 4000)
            core = PipelineCore([program])
            core.run_until_commits(4000)
            return core.predictors[0].misprediction_rate

        assert mispredict_rate("oltp") > mispredict_rate("gamess") + 0.02

    def test_memory_intensive_profile_misses_more(self):
        def l1_miss_rate(name):
            program = build_program(PROFILES[name], 4000)
            core = PipelineCore([program])
            core.run_until_commits(4000)
            return core.hierarchy.l1.stats.miss_rate

        assert l1_miss_rate("mcf") > l1_miss_rate("gamess") + 0.02
