"""Report-builder tests (EXPERIMENTS.md generation)."""

import pathlib

import pytest

from repro.analysis.report import (PAPER_HEADLINES, SHAPE_CLAIMS,
                                   ShapeClaim, build_experiments_md)
from repro.harness.store import ResultStore


@pytest.fixture
def results_dir(tmp_path):
    store = ResultStore(tmp_path)
    store.save("fig7", {
        "rows": {"bzip2": {"masked": 0.9, "noisy": 0.03, "sdc": 0.07},
                 "MEAN": {"masked": 0.88, "noisy": 0.04, "sdc": 0.08}},
    })
    (tmp_path / "fig7.txt").write_text("Figure 7 table here\n")
    store.save("fig9", {
        "rows": {"MEAN": {"pbfs": 0.01, "pbfs-biased": 0.4,
                          "fh-backend": 0.02, "faulthound": 0.12,
                          "srt-iso": 0.15}},
    })
    (tmp_path / "fig9.txt").write_text("Figure 9 table here\n")
    (tmp_path / "ablation_extra.txt").write_text("extra ablation\n")
    store.save("ablation_extra", {"rows": {}})
    return tmp_path


class TestShapeClaim:
    def test_pass_and_miss(self):
        claim = ShapeClaim("x > 0", lambda p: p["x"] > 0)
        assert "PASS" in claim.verdict({"x": 1})
        assert "MISS" in claim.verdict({"x": -1})

    def test_missing_data(self):
        claim = ShapeClaim("needs key", lambda p: p["absent"] > 0)
        assert "?" in claim.verdict({})


class TestBuildReport:
    def test_includes_present_figures_only(self, results_dir):
        text = build_experiments_md(results_dir)
        assert "Figure 7 — fault characterisation" in text
        assert "Figure 9 — performance degradation" in text
        assert "Figure 10" not in text          # no data saved
        assert "Figure 7 table here" in text

    def test_embeds_paper_headlines(self, results_dir):
        text = build_experiments_md(results_dir)
        assert PAPER_HEADLINES["fig7"] in text

    def test_checks_shape_claims(self, results_dir):
        text = build_experiments_md(results_dir)
        assert "PASS: a large majority of faults are masked" in text
        assert "PASS: PBFS-biased costs a multiple" in text

    def test_extra_ablations_appended(self, results_dir):
        text = build_experiments_md(results_dir)
        assert "Additional ablations" in text
        assert "extra ablation" in text

    def test_commentary_injected(self, results_dir):
        text = build_experiments_md(
            results_dir, commentary={"fig7": "NOTE: custom commentary."})
        assert "NOTE: custom commentary." in text

    def test_claim_tables_reference_known_figures(self):
        for figure in SHAPE_CLAIMS:
            assert figure in PAPER_HEADLINES


class TestHeadline:
    def test_absent_without_all_three_figures(self, results_dir):
        from repro.analysis.report import headline_table
        from repro.harness.store import ResultStore
        assert headline_table(ResultStore(results_dir)) is None

    def test_synthesized_when_present(self, tmp_path):
        from repro.analysis.report import headline_table
        from repro.harness.store import ResultStore
        store = ResultStore(tmp_path)
        store.save("fig8", {
            "coverage": {"MEAN": {"pbfs": 0.55, "pbfs-biased": 0.7,
                                  "faulthound": 0.8}},
            "fp_rate": {"MEAN": {"pbfs": 0.001, "pbfs-biased": 0.07,
                                 "faulthound": 0.03}}})
        store.save("fig9", {"rows": {"MEAN": {"pbfs": 0.01,
                                              "pbfs-biased": 0.35,
                                              "faulthound": 0.12,
                                              "srt-iso": 0.1}}})
        store.save("fig10", {"rows": {"MEAN": {"faulthound": 0.3,
                                               "srt-iso": 0.4}}})
        text = headline_table(store)
        assert "| faulthound | 80.0% (75%)" in text
        assert "| srt-iso | -" in text


def test_cli_report_command(results_dir, tmp_path, capsys):
    from repro.cli import main
    output = tmp_path / "EXPERIMENTS.md"
    code = main(["report", "--results", str(results_dir),
                 "--output", str(output)])
    assert code == 0
    assert output.exists()
    assert "paper vs. measured" in output.read_text()
