"""Smoke coverage for the campaign-backed figures at tiny scale."""

import pytest

from repro.harness import ExperimentConfig, ExperimentContext, figures

TINY = ExperimentConfig(benchmarks=("gamess", "volrend"),
                        dynamic_target=2_500, num_faults=10,
                        warmup_commits=200, window_commits=80)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(TINY)


def test_fig8_structure(ctx):
    result = figures.fig8(ctx, schemes=("pbfs", "faulthound"))
    assert set(result["coverage"]) == {"gamess", "volrend", "MEAN"}
    assert set(result["intervals"]) == {"pbfs", "faulthound"}
    assert "Wilson" in result["text"]
    for rows in (result["coverage"], result["fp_rate"]):
        for row in rows.values():
            for value in row.values():
                assert 0.0 <= value <= 1.0


def test_fig11_structure(ctx):
    result = figures.fig11(ctx)
    mean = result["rows"]["MEAN"]
    assert sum(mean.values()) == pytest.approx(1.0, abs=1e-6)
    assert set(mean) == {"covered", "second_level_masked",
                         "completed_committed_reg", "uncovered_rename",
                         "no_trigger", "other"}


def test_fig12_structure(ctx):
    result = figures.fig12(ctx)
    assert result["middle"]["FH-BE-full-rollback"]["perf_overhead"] \
        >= result["middle"]["FH-BE"]["perf_overhead"] - 0.10
    assert "Figure 12" in result["text"]
    for table in (result["left"], result["middle"], result["right"]):
        for row in table.values():
            for value in row.values():
                assert isinstance(value, float)


def test_fig6_sparkline_lines_present(ctx):
    result = figures.fig6(ctx, max_instructions=3_000)
    assert "bit63..bit0" in result["text"]


def test_fig9_log_chart_present(ctx):
    result = figures.fig9(ctx, schemes=("faulthound",), include_srt=False)
    assert "log scale" in result["text"]
