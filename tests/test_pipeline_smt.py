"""SMT-specific pipeline behaviour: fairness, shared-structure caps."""

import pytest

from repro.config import HardwareConfig
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs


def spin_program(n):
    return assemble(f"""
        movi r1, {n}
        loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)


def memory_bound_program(n):
    return assemble(f"""
        movi r1, {n}
        movi r3, 0x100000
        loop:
        ld   r3, 0(r3)
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """)


class TestFairness:
    def test_both_threads_progress_together(self):
        core = PipelineCore([spin_program(2000), spin_program(2000)])
        core.run_until_commits(2000)
        a = core.threads[0].committed_count
        b = core.threads[1].committed_count
        assert min(a, b) > 0.3 * max(a, b), "ICOUNT must keep threads fair"

    def test_stalled_thread_does_not_starve_sibling(self):
        """A pointer-chasing thread that misses constantly must not
        prevent a compute thread from committing at a healthy rate."""
        chaser = memory_bound_program(3000)
        # build a pointer ring so the chase has real misses
        import random
        from repro.workloads import pointer_ring
        chaser.initial_memory.update(
            pointer_ring(random.Random(0), 0x100000, 1 << 12))
        spinner = spin_program(8000)
        pair = PipelineCore([chaser, spinner])
        pair.run_until_commits(6000, max_cycles=400_000)

        solo = PipelineCore([spinner])
        solo.run(max_cycles=400_000)
        solo_ipc = solo.stats.committed / solo.stats.cycles
        paired_ipc = (pair.threads[1].committed_count
                      / pair.stats.cycles)
        assert paired_ipc > 0.3 * solo_ipc


class TestSharedStructures:
    def test_aggregate_rob_cap_respected(self):
        hw = HardwareConfig()
        core = PipelineCore([spin_program(5000), spin_program(5000)], hw=hw)
        for _ in range(400):
            core.step()
            total = sum(len(t.rob) for t in core.threads)
            assert total <= hw.rob_size

    def test_aggregate_lsq_cap_respected(self):
        hw = HardwareConfig()
        programs = build_smt_programs(PROFILES["bzip2"], 3000)
        core = PipelineCore(programs, hw=hw)
        for _ in range(500):
            core.step()
            total = sum(len(t.lsq) for t in core.threads)
            assert total <= hw.lsq_size

    def test_issue_queue_cap_respected(self):
        hw = HardwareConfig()
        programs = build_smt_programs(PROFILES["apache"], 3000)
        core = PipelineCore(programs, hw=hw)
        for _ in range(500):
            core.step()
            assert len(core.iq) <= hw.issue_queue_size

    def test_physical_registers_never_oversubscribed(self):
        hw = HardwareConfig()
        programs = build_smt_programs(PROFILES["perl"], 2000)
        core = PipelineCore(programs, hw=hw)
        for _ in range(400):
            core.step()
            in_flight = sum(1 for t in core.threads for op in t.rob
                            if op.phys_dest is not None)
            assert in_flight + len(core.free_list) \
                + 32 * len(core.threads) == hw.phys_regs


class TestHeterogeneousThreads:
    def test_threads_may_halt_at_different_times(self):
        core = PipelineCore([spin_program(100), spin_program(5000)])
        core.run(max_cycles=200_000)
        assert core.all_halted
        assert core.threads[0].committed_count < \
            core.threads[1].committed_count

    def test_single_program_on_two_way_core(self):
        core = PipelineCore([spin_program(500)])
        core.run(max_cycles=100_000)
        assert core.all_halted

    def test_too_many_programs_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            PipelineCore([spin_program(1)] * 3,
                         hw=HardwareConfig(smt_contexts=2))
