"""Classifier edge paths: early halts, unapplied faults, event deltas."""

import pytest

from repro.config import HardwareConfig
from repro.faults import (FaultInjector, FaultRecord, FaultSite,
                          TandemClassifier)
from repro.faults.classifier import WindowResult, _EventBaseline
from repro.isa import assemble
from repro.pipeline import PipelineCore

HW = HardwareConfig()

SHORT = """
    movi r1, 40
    movi r2, 0x1000
loop:
    st   r1, 0(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def factory():
    return PipelineCore([assemble(SHORT)], hw=HW)


def make_classifier(window=40):
    injector = FaultInjector(1, HW.phys_regs, 1)
    return TandemClassifier(factory, injector, window_commits=window,
                            max_window_cycles=20_000)


class TestEarlyHalt:
    def test_injection_past_program_end_not_applied(self):
        classifier = make_classifier()
        record = FaultRecord(index=0, site=FaultSite.REGFILE,
                             inject_at_commit=10_000, bit=3, reg=40)
        (result,) = classifier.run([record])
        assert result.applied is False
        assert result.fault_class is None

    def test_window_straddling_halt_still_classifies(self):
        classifier = make_classifier(window=500)   # longer than the program
        record = FaultRecord(index=0, site=FaultSite.REGFILE,
                             inject_at_commit=30, bit=2, reg=200)
        (result,) = classifier.run([record])
        assert result.applied
        assert result.fault_class is not None


class TestLSQRetry:
    def test_lsq_fault_waits_for_resident_entry(self):
        classifier = make_classifier()
        record = FaultRecord(index=0, site=FaultSite.LSQ,
                             inject_at_commit=20, bit=4,
                             thread_id=0, lsq_slot=0, lsq_field="value")
        (result,) = classifier.run([record])
        # the store loop keeps the LSQ busy: the retry loop must land it
        assert result.applied


class TestEventBaseline:
    def test_of_and_delta(self):
        core = factory()
        before = _EventBaseline.of(core)
        assert before.replays == 0
        core.stats.replay_events = 3
        after = _EventBaseline.of(core)
        from repro.faults.classifier import _Delta
        delta = _Delta(before, after)
        assert delta.replays == 3
        assert delta.rollbacks == 0


class TestWindowResultDefaults:
    def test_fresh_result_fields(self):
        record = FaultRecord(index=0, site=FaultSite.REGFILE,
                             inject_at_commit=1, bit=0, reg=0)
        result = WindowResult(record=record)
        assert result.applied and not result.state_equal
        assert result.fault_class is None
        assert result.hung is False
