"""Edge-case pipeline tests: late exceptions, corrupted commits, caps."""

import pytest

from repro.config import FaultHoundConfig, HardwareConfig
from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.isa.semantics import MEMORY_LIMIT
from repro.pipeline import PipelineCore
from repro.pipeline.core import FETCH_BUFFER_CAP


STORE_LOOP = """
    movi r1, 300
    movi r2, 0x1000
    movi r5, 9
loop:
    st   r5, 0(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


class TestLateStoreExceptions:
    def test_lsq_corrupted_store_address_faults_at_commit(self):
        """Corrupting a store's LSQ address to an illegal value after
        execution must surface as a precise commit-time exception (the
        baseline has no commit check to catch it earlier)."""
        core = PipelineCore([assemble(STORE_LOOP)])
        core.run_until_commits(50)
        injected = False
        for _ in range(2000):
            entries = core.threads[0].lsq.executed_entries()
            stores = [op for op in entries if op.is_store]
            if stores:
                stores[0].eff_addr = MEMORY_LIMIT + 8  # out of segment
                injected = True
                break
            core.step()
        assert injected
        core.run(max_cycles=100_000)
        assert core.stats.exceptions == 1
        assert core.threads[0].halted
        assert core.threads[0].exceptions[0][2] == MEMORY_LIMIT + 8

    def test_singleton_reexec_recovers_corrupted_store_address(self):
        """With FaultHound, the same corruption is caught at commit: the
        singleton re-execute recomputes the address from the register
        file, declares the mismatch, and execution continues cleanly."""
        core = PipelineCore([assemble(STORE_LOOP)],
                            screening=FaultHoundUnit())
        core.run_until_commits(100)
        injected = False
        for _ in range(4000):
            stores = [op for op in
                      core.threads[0].lsq.executed_entries()
                      if op.is_store and not op.lsq_checked]
            if stores:
                stores[0].eff_addr ^= 1 << 45
                injected = True
                break
            core.step()
        assert injected
        core.run(max_cycles=200_000)
        assert core.stats.exceptions == 0
        assert core.stats.singleton_mismatch_detections >= 1
        assert core.declared_faults


class TestStructuralCaps:
    def test_fetch_buffer_bounded(self):
        # a dispatch-stalling program (free-list pressure is hard to craft;
        # instead stall dispatch by filling the IQ with dependent loads)
        core = PipelineCore([assemble(STORE_LOOP)])
        for _ in range(300):
            core.step()
            for buffer in core._fetch_buffers:
                assert len(buffer) <= FETCH_BUFFER_CAP

    def test_issue_suspension_during_singleton(self):
        hw = HardwareConfig(singleton_reexec_cycles=2)
        core = PipelineCore([assemble(STORE_LOOP)],
                            hw=hw, screening=FaultHoundUnit())
        core.run_until_commits(80)
        # force a commit-time trigger by corrupting an unchecked store
        for _ in range(4000):
            stores = [op for op in
                      core.threads[0].lsq.executed_entries()
                      if op.is_store and not op.lsq_checked]
            if stores:
                stores[0].eff_addr ^= 1 << 40
                break
            core.step()
        before = core.stats.issued
        suspended_at = None
        for _ in range(3000):
            core.step()
            if core._issue_suspended_until > core.cycle:
                suspended_at = core.cycle
                break
        assert suspended_at is not None
        assert core.stats.singleton_reexecs >= 1


class TestOracleEdges:
    def test_ideal_branch_oracle_exhaustion_is_safe(self):
        """If fetch outruns the oracle (cannot happen on the fault-free
        path, but must not crash), prediction falls back to not-taken."""
        program = assemble("""
            movi r1, 10
            loop:
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """)
        core = PipelineCore([program],
                            thread_options=[{"ideal_branch": True}])
        core._branch_oracles[0].clear()  # simulate exhaustion
        core.run(max_cycles=50_000)
        assert core.all_halted
        assert core.threads[0].arch_reg_value(1, core.prf) == 0


class TestReplaySuppression:
    def test_post_rollback_checks_are_suppressed(self):
        """After a screening rollback, the re-executed loads/stores must
        not re-trigger ("re-computed values are deemed final")."""
        core = PipelineCore([assemble(STORE_LOOP)],
                            screening=FaultHoundUnit())
        core.run_until_commits(60)
        thread = core.threads[0]
        core._screening_rollback(thread)
        assert thread.screen_suppress_remaining > 0
        remaining = thread.screen_suppress_remaining
        core.run_until_commits(remaining + 20)
        assert thread.screen_suppress_remaining == 0
