"""Run-manifest tests: round-trip, digest verification, cache provenance."""

import json

from repro.config import HardwareConfig
from repro.harness.cache import ArtifactCache
from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.obs import (build_manifest, config_digest, load_manifest,
                       manifest_path_for, verify_manifest, write_manifest)

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=10, warmup_commits=200,
                         window_commits=100)


class TestManifestRoundTrip:
    def test_write_load_verify(self, tmp_path):
        cfg, hw = ExperimentConfig(), HardwareConfig()
        manifest = build_manifest("fault_free", cfg, hw,
                                  parts={"benchmark": "mcf"},
                                  key="abc123", jobs=4,
                                  phase_seconds={"fault_free": 1.25})
        path = tmp_path / "artifact.manifest.json"
        assert write_manifest(path, manifest)
        loaded = load_manifest(path)
        assert loaded.kind == "fault_free"
        assert loaded.key == "abc123"
        assert loaded.jobs == 4
        assert loaded.parts == {"benchmark": "mcf"}
        assert loaded.phase_seconds == {"fault_free": 1.25}
        # self-verification and live-config verification both pass
        assert verify_manifest(loaded) == []
        assert verify_manifest(loaded, cfg, hw) == []

    def test_digest_is_config_sensitive(self):
        hw = HardwareConfig()
        assert (config_digest(ExperimentConfig(), hw)
                != config_digest(ExperimentConfig().quick(), hw))

    def test_tampered_config_is_detected(self, tmp_path):
        cfg, hw = ExperimentConfig(), HardwareConfig()
        path = tmp_path / "m.manifest.json"
        write_manifest(path, build_manifest("srt", cfg, hw))
        document = json.loads(path.read_text())
        document["config"]["num_faults"] = 999_999
        path.write_text(json.dumps(document))
        errors = verify_manifest(load_manifest(path))
        assert any("digest mismatch" in e for e in errors)

    def test_wrong_live_config_is_detected(self):
        hw = HardwareConfig()
        manifest = build_manifest("srt", ExperimentConfig(), hw)
        errors = verify_manifest(manifest, ExperimentConfig().quick(), hw)
        assert any("does not describe" in e for e in errors)

    def test_manifest_path_convention(self, tmp_path):
        assert str(manifest_path_for(tmp_path / "ab12.pkl")).endswith(
            "ab12.manifest.json")
        assert str(manifest_path_for(tmp_path / "fig8.txt")).endswith(
            "fig8.txt.manifest.json")
        assert str(manifest_path_for(tmp_path / "events.jsonl")).endswith(
            "events.jsonl.manifest.json")


class TestCacheProvenance:
    def test_manifest_written_next_to_every_artifact(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        ctx = ExperimentContext(_TINY, jobs=1, cache=cache)
        ctx.fault_free("mcf", "baseline")
        manifests = list(tmp_path.rglob("*.manifest.json"))
        assert len(manifests) == 1
        manifest = load_manifest(manifests[0])
        assert manifest.kind == "fault_free"
        assert manifest.parts == {"benchmark": "mcf", "scheme": "baseline"}
        # the manifest proves the artefact belongs to this configuration
        assert verify_manifest(manifest, ctx.cfg, ctx.hw) == []
        # and sits next to the pickle it describes
        pickle_path = cache.artifact_path("fault_free", manifest.key)
        assert pickle_path.exists()
        assert manifests[0] == manifest_path_for(pickle_path)

    def test_warm_hit_leaves_provenance_intact(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        ExperimentContext(_TINY, jobs=1, cache=cache).fault_free(
            "mcf", "baseline")
        before = {p: p.read_text() for p in tmp_path.rglob("*.manifest.json")}
        warm = ExperimentContext(_TINY, jobs=1, cache=cache)
        warm.fault_free("mcf", "baseline")
        assert warm.metrics.cache_hits == 1
        after = {p: p.read_text() for p in tmp_path.rglob("*.manifest.json")}
        assert after == before
