"""Report integration: real figure payloads must satisfy the claim
machinery's structural expectations (no '?' verdicts from key errors)."""

import pytest

from repro.analysis.report import SHAPE_CLAIMS, build_experiments_md
from repro.harness import ExperimentConfig, ExperimentContext, figures
from repro.harness.store import ResultStore

TINY = ExperimentConfig(benchmarks=("gamess", "bzip2"),
                        dynamic_target=2_500, num_faults=8,
                        warmup_commits=200, window_commits=80)


@pytest.fixture(scope="module")
def results_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("results")
    ctx = ExperimentContext(TINY)
    store = ResultStore(path)
    for name, fn in (("fig7", figures.fig7),
                     ("fig9", figures.fig9),
                     ("fig10", figures.fig10)):
        result = fn(ctx)
        store.save(name, {k: v for k, v in result.items() if k != "text"})
        (path / f"{name}.txt").write_text(result["text"])
    return path


def test_real_payloads_have_claim_structure(results_dir):
    store = ResultStore(results_dir)
    for name in ("fig7", "fig9", "fig10"):
        payload = store.load(name)["payload"]
        for claim in SHAPE_CLAIMS.get(name, []):
            verdict = claim.verdict(payload)
            assert not verdict.startswith("- ?"), \
                f"{name}: claim machinery missing data — {verdict}"


def test_full_report_builds_from_real_results(results_dir):
    text = build_experiments_md(results_dir)
    assert "Figure 7 — fault characterisation" in text
    assert "Figure 9 — performance degradation" in text
    assert "Shape claims:" in text
    # verdicts resolved either way, never structurally broken
    assert "- ?" not in text
