"""Memory substrate tests: main memory, cache tag model, hierarchy."""

import pytest

from repro.config import HardwareConfig
from repro.errors import ConfigurationError, MemoryFault
from repro.memory import Cache, MainMemory, MemoryHierarchy


class TestMainMemory:
    def test_unwritten_reads_zero(self):
        assert MainMemory().read(0x100) == 0

    def test_write_read_round_trip(self):
        mem = MainMemory()
        mem.write(0x88, 1234)
        assert mem.read(0x88) == 1234

    def test_values_masked_to_64_bits(self):
        mem = MainMemory()
        mem.write(0, 1 << 70)
        assert mem.read(0) == (1 << 70) & ((1 << 64) - 1)

    def test_misaligned_raises(self):
        with pytest.raises(MemoryFault):
            MainMemory().read(3)
        with pytest.raises(MemoryFault):
            MainMemory().write(9, 1)

    def test_out_of_segment_raises(self):
        with pytest.raises(MemoryFault):
            MainMemory().read(1 << 40)

    def test_image_loading(self):
        mem = MainMemory(image={0x10: 5})
        mem.load_image({0x20: 6})
        assert mem.read(0x10) == 5 and mem.read(0x20) == 6

    def test_nonzero_snapshot_sorted_and_filtered(self):
        mem = MainMemory()
        mem.write(0x20, 2)
        mem.write(0x10, 1)
        mem.write(0x30, 0)
        assert mem.nonzero_snapshot() == ((0x10, 1), (0x20, 2))


class TestCache:
    def make(self, size_kb=1, assoc=2, line=64, latency=3):
        return Cache("t", size_kb, assoc, line, latency)

    def test_cold_miss_then_hit(self):
        cache = self.make()
        assert cache.access(0x100) is False
        assert cache.access(0x100) is True

    def test_same_line_shares_hit(self):
        cache = self.make(line=64)
        cache.access(0x100)
        assert cache.access(0x100 + 63) is True

    def test_lru_eviction_within_set(self):
        cache = self.make(size_kb=1, assoc=2, line=64)  # 8 sets
        set_stride = 8 * 64
        a, b, c = 0, set_stride, 2 * set_stride  # same set, three lines
        cache.access(a)
        cache.access(b)
        cache.access(a)          # a most recent
        cache.access(c)          # evicts b
        assert cache.probe(a) and cache.probe(c)
        assert not cache.probe(b)

    def test_stats_counts(self):
        cache = self.make()
        cache.access(0)
        cache.access(0)
        cache.access(4096 * 64)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)

    def test_flush_empties(self):
        cache = self.make()
        cache.access(0)
        cache.flush()
        assert not cache.probe(0)
        assert cache.resident_lines == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            Cache("bad", size_kb=1, assoc=3, line_bytes=64, latency=1)

    def test_probe_is_non_destructive(self):
        cache = self.make()
        assert cache.probe(0) is False
        assert cache.stats.accesses == 0


class TestHierarchy:
    def test_latencies_sum_down_the_levels(self):
        hw = HardwareConfig()
        hier = MemoryHierarchy(hw)
        first = hier.access(0x1000, now=0)
        assert first.level == "mem"
        assert first.latency == hw.l1d_latency + hw.l2_latency + hw.memory_latency
        again = hier.access(0x1000, now=first.latency + 1)
        assert again.level == "l1"
        assert again.latency == hw.l1d_latency

    def test_access_during_fill_pays_remaining_latency(self):
        hw = HardwareConfig()
        hier = MemoryHierarchy(hw)
        first = hier.access(0x1000, now=100)
        mid = hier.access(0x1000, now=100 + first.latency // 2)
        assert mid.level == "l1"
        assert mid.latency == first.latency - first.latency // 2
        late = hier.access(0x1000, now=100 + first.latency)
        assert late.latency == hw.l1d_latency

    def test_spaces_do_not_alias(self):
        hier = MemoryHierarchy(HardwareConfig())
        hier.access(0x1000, space=0)
        assert hier.access(0x1000, now=10_000, space=1).level != "l1"

    def test_l2_hit_after_l1_eviction(self):
        hw = HardwareConfig(l1d_size_kb=1, l1d_assoc=1, l2_size_kb=64)
        hier = MemoryHierarchy(hw)
        sets = (1 * 1024) // 64
        hier.access(0)
        hier.access(sets * 64)      # evicts line 0 from direct-mapped L1
        result = hier.access(0)
        assert result.level == "l2"

    def test_ideal_mode_always_l1(self):
        hier = MemoryHierarchy(ideal=True)
        for address in range(0, 1 << 20, 4096):
            assert hier.access(address).level == "l1"
        assert hier.l1.stats.miss_rate == 0.0

    def test_warm_pretouches(self):
        hier = MemoryHierarchy()
        hier.warm([0x40, 0x80])
        assert hier.access(0x40).l1_hit
