"""Profile-validation pins: the characteristics each figure depends on."""

import pytest

from repro.workloads import PROFILES
from repro.workloads.validation import validate_profile


@pytest.fixture(scope="module")
def reports():
    wanted = ("mcf", "gamess", "oltp", "bzip2", "leslie3d")
    return {name: validate_profile(PROFILES[name], 5_000)
            for name in wanted}


def test_memory_intensity_split(reports):
    """mcf/oltp must be memory-bound relative to gamess (Figure 9's
    'commercial workloads hide recovery under misses')."""
    assert reports["mcf"].l1_miss_rate > reports["gamess"].l1_miss_rate + 0.1
    assert reports["oltp"].l1_miss_rate > reports["gamess"].l1_miss_rate + 0.1
    assert reports["gamess"].baseline_ipc > reports["mcf"].baseline_ipc


def test_branchiness_split(reports):
    assert reports["oltp"].branch_mispredict_rate \
        > reports["gamess"].branch_mispredict_rate


def test_value_width_split(reports):
    """leslie3d's wide value model is the widest store-value profile
    (its low coverage in Figure 8a)."""
    assert reports["leslie3d"].store_value_bits_changed \
        > reports["bzip2"].store_value_bits_changed

def test_load_store_mix_plausible(reports):
    for name, report in reports.items():
        assert 0.03 < report.load_fraction < 0.5, name
        assert 0.01 < report.store_fraction < 0.4, name


def test_neighbourhood_locality_high_everywhere(reports):
    """Every profile's store values must be highly neighbourhood-local —
    the property the whole scheme exploits (Figure 6)."""
    for name, report in reports.items():
        assert report.store_value_neighbourhood_hits > 0.8, name
        assert report.quiet_value_bits >= 34, name


def test_report_as_dict(reports):
    d = reports["mcf"].as_dict()
    assert "l1_miss_rate" in d and "baseline_ipc" in d
