"""Bit-mask filter semantics (paper Figures 1 and 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitmaskFilter

MASK64 = (1 << 64) - 1
values = st.integers(min_value=0, max_value=MASK64)


def test_invalid_filter_never_matches():
    assert not BitmaskFilter().matches(0)


def test_install_makes_exact_matcher():
    filt = BitmaskFilter()
    filt.install(0xDEAD)
    assert filt.matches(0xDEAD)
    assert not filt.matches(0xDEAF)
    assert filt.mismatch_count(0xDEAF) == (0xDEAD ^ 0xDEAF).bit_count()


def test_update_opens_wildcards():
    filt = BitmaskFilter()
    filt.install(0b0000)
    filt.update(0b0101)            # bits 0,2 become changing
    assert filt.changing_mask == 0b0101
    assert filt.matches(0b0001)    # wildcard positions accept anything
    assert filt.matches(0b0100)
    assert not filt.matches(0b1000)


def test_figure1_value_subspace():
    # Figure 1: filter (x 0 x 1), previous 0001 -> accepts {0001, 0011,
    # 1001, 1011}; 4-bit example embedded in 64 bits.
    filt = BitmaskFilter()
    filt.install(0b0001)
    filt.update(0b1011)            # bits 1 and 3 become changing
    accepted = [v for v in range(16) if filt.matches(v)]
    assert accepted == [0b0001, 0b0011, 0b1001, 0b1011]
    assert filt.subspace_size_log2() == 2


def test_figure3_no_trigger_example():
    # Figure 3(a): value matches in all unchanging positions -> the
    # changing positions' machines advance, previous value refreshed.
    filt = BitmaskFilter()
    filt.install(0b1100)
    filt.update(0b1101)            # bit 0 now changing
    assert filt.matches(0b1100)
    alarm = filt.update(0b1100)    # full match; bit 0 sees change again
    assert alarm == 0
    assert filt.previous == 0b1100


def test_figure3_trigger_reports_unchanging_mismatch():
    filt = BitmaskFilter()
    filt.install(0b1100)
    mismatch = filt.mismatch_mask(0b0100)  # bit 3 differs, unchanging
    assert mismatch == 0b1000
    alarm = filt.update(0b0100)            # loosen: bit 3 -> changing
    assert alarm == 0b1000
    assert filt.matches(0b1100) and filt.matches(0b0100)


def test_previous_value_tracks_latest():
    filt = BitmaskFilter()
    filt.install(10)
    filt.update(12)
    assert filt.previous == 12


def test_biased_bank_decays_back_to_unchanging():
    filt = BitmaskFilter()
    filt.install(0)
    filt.update(1)                 # bit 0 changing
    filt.update(1)                 # no further change: decay step 1
    filt.update(1)                 # decay step 2 -> unchanging again
    assert filt.changing_mask == 0
    assert filt.mismatch_mask(0) == 1


def test_sticky_filter_flash_clear_keeps_previous():
    filt = BitmaskFilter(bank_kind="sticky")
    filt.install(5)
    filt.update(7)
    filt.flash_clear()
    assert filt.previous == 7
    assert filt.changing_mask == 0


def test_ternary_repr():
    filt = BitmaskFilter()
    filt.install(0b1)
    filt.update(0b11)              # bit 1 changing
    text = filt.ternary_repr()
    assert len(text) == 64
    assert text.endswith("x1")
    assert set(text[:-2]) == {"0"}


@settings(max_examples=60)
@given(values, values)
def test_match_iff_zero_mismatch(v1, v2):
    filt = BitmaskFilter()
    filt.install(v1)
    assert filt.matches(v2) == (filt.mismatch_count(v2) == 0)


@settings(max_examples=60)
@given(values, st.lists(values, min_size=1, max_size=10))
def test_latest_value_always_matches_after_update(first, rest):
    """Invariant: after update(v), v itself is inside the subspace —
    unchanging bits equal the new previous value by construction."""
    filt = BitmaskFilter()
    filt.install(first)
    for value in rest:
        filt.update(value)
        assert filt.matches(value)


@settings(max_examples=60)
@given(values, values)
def test_mismatch_mask_confined_to_unchanging_diff(v1, v2):
    filt = BitmaskFilter()
    filt.install(v1)
    filt.update(v2)
    mask = filt.mismatch_mask(v1)
    assert mask & filt.changing_mask == 0
    assert mask & ~(v1 ^ filt.previous) == 0
