"""Assorted unit tests for small behaviours not covered elsewhere."""

import pytest

from repro.errors import SimulationError
from repro.isa import Instruction, Opcode, assemble
from repro.isa.interpreter import ArchState, Interpreter
from repro.pipeline import PipelineCore
from repro.pipeline.trace import PipelineTracer
from repro.pipeline.uops import MicroOp, OpState


class TestArchState:
    def test_copy_is_deep_for_memory(self):
        state = ArchState()
        state.write_mem(0x10, 5)
        clone = state.copy()
        clone.write_mem(0x10, 9)
        assert state.read_mem(0x10) == 5

    def test_r0_write_ignored(self):
        state = ArchState()
        state.write_reg(0, 99)
        assert state.read_reg(0) == 0

    def test_exception_record_fields(self):
        interp = Interpreter(assemble("""
            movi r1, 1
            ld   r2, 0(r1)
            halt
        """))
        interp.run()
        (record,) = interp.exceptions
        assert record.pc == 1
        assert record.instret == 1
        assert record.address == 1


class TestCoreConstruction:
    def test_rejects_no_programs(self):
        with pytest.raises(SimulationError):
            PipelineCore([])

    def test_arch_snapshot_tuple_per_thread(self):
        core = PipelineCore([assemble("halt"), assemble("halt")])
        core.run(max_cycles=5_000)
        snapshot = core.arch_snapshot()
        assert len(snapshot) == 2

    def test_stats_summary_keys(self):
        core = PipelineCore([assemble("movi r1, 1\nhalt")])
        core.run(max_cycles=5_000)
        summary = core.stats.summary()
        for key in ("cycles", "committed", "ipc", "replay_events",
                    "rollback_events", "exceptions"):
            assert key in summary

    def test_stats_summary_covers_energy_model_inputs(self):
        # regression: these counters feed the energy model / breakdowns
        # but used to be silently missing from summary()
        core = PipelineCore([assemble("movi r1, 1\nhalt")])
        core.run(max_cycles=5_000)
        summary = core.stats.summary()
        for key in ("memory_order_violations",
                    "singleton_mismatch_detections",
                    "delay_buffer_squashes",
                    "regfile_reads", "regfile_writes"):
            assert key in summary
        assert summary["regfile_writes"] > 0


class TestTraceStages:
    def make_op(self, **times):
        op = MicroOp(1, 0, 0, Instruction(Opcode.ADD, rd=1),
                     cycle_fetched=times.get("fetched", 5),
                     dispatch_ready_at=times.get("ready", 8))
        op.cycle_issued = times.get("issued", -1)
        op.cycle_completed = times.get("completed", -1)
        op.cycle_committed = times.get("committed", -1)
        return op

    def test_lane_progression(self):
        op = self.make_op(issued=10, completed=13, committed=20)
        stage = PipelineTracer._stage_at
        assert stage(op, 4) == " "      # before fetch
        assert stage(op, 6) == "F"
        assert stage(op, 9) == "w"
        assert stage(op, 11) == "E"
        assert stage(op, 15) == "c"
        assert stage(op, 20) == "R"
        assert stage(op, 25) == " "

    def test_squashed_lane(self):
        op = self.make_op(issued=10)
        op.state = OpState.SQUASHED
        assert PipelineTracer._stage_at(op, 12) == "x"

    def test_repr_smoke(self):
        op = self.make_op()
        assert "uop" in repr(op)


class TestInstructionStr:
    @pytest.mark.parametrize("inst, expected", [
        (Instruction(Opcode.LD, rd=1, rs1=2, imm=8), "ld r1, 8(r2)"),
        (Instruction(Opcode.ST, rs2=3, rs1=4, imm=0), "st r3, 0(r4)"),
        (Instruction(Opcode.JMP, imm=7), "jmp @7"),
        (Instruction(Opcode.MOVI, rd=2, imm=5), "movi r2, 5"),
        (Instruction(Opcode.NOP), "nop"),
        (Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-1), "addi r1, r1, -1"),
        (Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3), "add r1, r2, r3"),
        (Instruction(Opcode.BNE, rs1=1, rs2=0, imm=2), "bne r1, r0, @2"),
    ])
    def test_rendering(self, inst, expected):
        assert str(inst) == expected
