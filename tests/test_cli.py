"""CLI tests (in-process, via main(argv))."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list_shows_everything(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "mcf" in out and "faulthound" in out and "fig9" in out


def test_run_program(tmp_path, capsys):
    source = tmp_path / "prog.asm"
    source.write_text("""
        movi r1, 5
        movi r2, 6
        add  r3, r1, r2
        halt
    """)
    code, out, _ = run_cli(capsys, "run", str(source), "--scheme", "baseline")
    assert code == 0
    assert "committed" in out
    assert "0xb" in out  # r3 == 11


def test_run_missing_file(capsys):
    code, _, err = run_cli(capsys, "run", "/nonexistent.asm")
    assert code == 1
    assert "error" in err


def test_run_bad_assembly(tmp_path, capsys):
    source = tmp_path / "bad.asm"
    source.write_text("bogus r1")
    code, _, err = run_cli(capsys, "run", str(source))
    assert code == 1
    assert "unknown mnemonic" in err


def test_bench_command(capsys):
    code, out, _ = run_cli(capsys, "bench", "gamess",
                           "--scheme", "fh-backend",
                           "--instructions", "2500")
    assert code == 0
    assert "perf degradation" in out
    assert "false-positive rate" in out


def test_campaign_command(capsys):
    code, out, _ = run_cli(capsys, "campaign", "bzip2", "--faults", "10")
    assert code == 0
    assert "masked" in out
    assert "coverage" in out


def test_figure_table2(capsys):
    code, out, _ = run_cli(capsys, "figure", "table2")
    assert code == 0
    assert "Re-order Buffer" in out


def test_parser_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "nonesuch"])


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_campaign_rejects_batch_lanes_below_one(capsys):
    """Regression: K < 1 used to be silently clamped to the scalar
    path; now the parser rejects it outright."""
    for bad in ("0", "-2"):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["campaign", "mcf",
                                       "--batch-lanes", bad])
        assert excinfo.value.code == 2
    assert "must be >= 1" in capsys.readouterr().err


def test_compile_command_writes_run_layer(tmp_path, capsys):
    spec = tmp_path / "c.src.json"
    spec.write_text(json.dumps({
        "kind": "repro.campaign.src", "version": 1, "name": "c",
        "defaults": {"benchmark": "mcf", "faults": 5},
        "sweep": {"scheme": ["faulthound", "pbfs"]}}))
    code, out, _ = run_cli(capsys, "compile", str(spec))
    assert code == 0
    assert "2 task" in out
    compiled = json.loads((tmp_path / "c.run.json").read_text())
    assert compiled["kind"] == "repro.campaign.run"
    assert len(compiled["tasks"]) == 2


def test_compile_rejects_invalid_spec(tmp_path, capsys):
    spec = tmp_path / "c.src.json"
    spec.write_text(json.dumps({
        "kind": "repro.campaign.src", "version": 1,
        "defaults": {"benchmark": "nonesuch"}}))
    code, _, err = run_cli(capsys, "compile", str(spec))
    assert code == 1
    assert "nonesuch" in err


def test_campaign_emit_events_then_report(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    events = tmp_path / "events.jsonl"
    code, _, err = run_cli(capsys, "campaign", "mcf", "--faults", "6",
                           "--jobs", "2", "--emit-events", str(events))
    assert code == 0
    assert events.exists()
    assert (tmp_path / "events.jsonl.manifest.json").exists()
    # the recorded log validates cleanly, manifest digest included
    code, out, err = run_cli(capsys, "report", "--events", str(events))
    assert code == 0
    summary = json.loads(out)
    assert summary["schema_errors"] == 0
    assert summary["by_type"]["fault_audit"] > 0


def test_report_rejects_invalid_event_log(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"ts": 1.0, "type": "mystery", "pid": 1}\n')
    code, out, err = run_cli(capsys, "report", "--events", str(bad))
    assert code == 1
    assert "unknown event type" in err


def test_report_rejects_missing_manifest(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    log.write_text('{"ts": 1.0, "type": "run_start", "pid": 1, '
                   '"run": "r", "schema": 1}\n')
    code, _, err = run_cli(capsys, "report", "--events", str(log),
                           "--manifest", str(tmp_path / "nope.json"))
    assert code == 1
    assert "unreadable" in err


def test_bench_profile_prints_stage_accounting(capsys):
    code, out, err = run_cli(capsys, "bench", "gamess",
                             "--scheme", "baseline",
                             "--instructions", "1500", "--profile")
    assert code == 0
    assert "stage wall-clock" in out
    assert "cProfile top" in err


# ----------------------------------------------------------------------
# supervised campaign plumbing: cache verify, resume, report --run-dir
# ----------------------------------------------------------------------
def test_cache_verify_reports_and_quarantines(tmp_path, capsys):
    from repro.harness.cache import ArtifactCache
    cache = ArtifactCache(tmp_path)
    key = cache.key("srt", benchmark="mcf")
    cache.put("srt", key, [1, 2, 3])
    (tmp_path / "srt" / f"{key}.pkl").write_bytes(b"garbage")
    code, out, err = run_cli(capsys, "cache", "verify",
                             "--cache-dir", str(tmp_path))
    assert code == 0            # informative by default
    summary = json.loads(out)
    assert summary["corrupt"] == 1 and summary["quarantined"] == 1
    assert "corrupt: srt/" in err
    # --strict turns surviving corruption into a non-zero exit
    (tmp_path / "srt" / f"{key}.pkl").write_bytes(b"garbage again")
    code, out, _ = run_cli(capsys, "cache", "verify", "--strict",
                           "--cache-dir", str(tmp_path))
    assert code == 1
    # once clean, --strict passes
    code, out, _ = run_cli(capsys, "cache", "verify", "--strict",
                           "--cache-dir", str(tmp_path))
    assert code == 0
    assert json.loads(out)["corrupt"] == 0


def test_cache_stats_and_clear(tmp_path, capsys):
    from repro.harness.cache import ArtifactCache
    cache = ArtifactCache(tmp_path)
    cache.put("srt", cache.key("srt", benchmark="mcf"), [1])
    code, out, _ = run_cli(capsys, "cache", "stats",
                           "--cache-dir", str(tmp_path))
    assert code == 0 and "entries  1" in out
    code, out, _ = run_cli(capsys, "cache", "clear",
                           "--cache-dir", str(tmp_path))
    assert code == 0 and "removed 1 entry" in out


def test_resume_requires_campaign_manifest(tmp_path, capsys):
    code, _, err = run_cli(capsys, "resume", str(tmp_path))
    assert code == 1
    assert "campaign.json" in err


def test_report_run_dir_requires_journal(tmp_path, capsys):
    code, _, err = run_cli(capsys, "report", "--run-dir", str(tmp_path))
    assert code == 1
    assert "journal.jsonl" in err


def test_supervised_campaign_cli_roundtrip(tmp_path, capsys, monkeypatch):
    """campaign --run-dir → report --run-dir → resume is a no-op."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    run_dir = tmp_path / "run"
    code, out, err = run_cli(capsys, "campaign", "mcf", "--faults", "6",
                             "--jobs", "2", "--run-dir", str(run_dir))
    assert code == 0
    assert (run_dir / "journal.jsonl").exists()
    assert (run_dir / "campaign.json").exists()
    first = out
    code, out, _ = run_cli(capsys, "report", "--run-dir", str(run_dir))
    assert code == 0
    summary = json.loads(out)
    assert summary["poisoned"] == 0
    assert summary["by_type"].get("phase_done", 0) >= 1
    # resuming a completed run recomputes nothing and prints the same
    code, out, _ = run_cli(capsys, "resume", str(run_dir))
    assert code == 0
    assert out == first


def test_run_dir_defaults_event_log_into_it(tmp_path, capsys,
                                            monkeypatch):
    """A journaled campaign gets events.jsonl in the run dir by default
    (announced on stderr, stdout untouched) so the monitor surfaces
    have something to tail."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    run_dir = tmp_path / "run"
    code, _, err = run_cli(capsys, "campaign", "mcf", "--faults", "4",
                           "--jobs", "1", "--run-dir", str(run_dir))
    assert code == 0
    assert (run_dir / "events.jsonl").exists()
    assert f"events: {run_dir / 'events.jsonl'}" in err
    # report gained the audit aggregates alongside the summary
    code, out, _ = run_cli(capsys, "report", "--events",
                           str(run_dir / "events.jsonl"))
    assert code == 0
    summary = json.loads(out)
    assert summary["aggregates"]["records"] == 4
    assert summary["aggregates"]["applied"] > 0
    # and the session metrics snapshot rode the log
    assert summary["by_type"]["metrics"] >= 1


def test_status_and_top_reject_missing_run_dir(tmp_path, capsys):
    code, _, err = run_cli(capsys, "status", str(tmp_path / "nope"))
    assert code == 1
    assert "not a run directory" in err
    code, _, err = run_cli(capsys, "top", str(tmp_path / "nope"), "--once")
    assert code == 1


def test_tail_rejects_missing_log(tmp_path, capsys):
    code, _, err = run_cli(capsys, "tail", str(tmp_path / "none.jsonl"))
    assert code == 1
    assert "not found" in err


def test_metrics_export_from_plain_log(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    log.write_text(json.dumps(
        {"ts": 1.0, "type": "metrics", "pid": 1,
         "snapshot": {"counters": {"n_total": 3}}}) + "\n")
    code, out, _ = run_cli(capsys, "metrics", "export", str(log))
    assert code == 0
    assert "repro_n_total 3" in out


def test_metrics_export_empty_log_notes_it(tmp_path, capsys):
    log = tmp_path / "events.jsonl"
    log.write_text(json.dumps(
        {"ts": 1.0, "type": "worker_start", "pid": 1}) + "\n")
    code, out, err = run_cli(capsys, "metrics", "export", str(log))
    assert code == 0
    assert out == ""
    assert "no metrics" in err
