"""CLI tests (in-process, via main(argv))."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list_shows_everything(capsys):
    code, out, _ = run_cli(capsys, "list")
    assert code == 0
    assert "mcf" in out and "faulthound" in out and "fig9" in out


def test_run_program(tmp_path, capsys):
    source = tmp_path / "prog.asm"
    source.write_text("""
        movi r1, 5
        movi r2, 6
        add  r3, r1, r2
        halt
    """)
    code, out, _ = run_cli(capsys, "run", str(source), "--scheme", "baseline")
    assert code == 0
    assert "committed" in out
    assert "0xb" in out  # r3 == 11


def test_run_missing_file(capsys):
    code, _, err = run_cli(capsys, "run", "/nonexistent.asm")
    assert code == 1
    assert "error" in err


def test_run_bad_assembly(tmp_path, capsys):
    source = tmp_path / "bad.asm"
    source.write_text("bogus r1")
    code, _, err = run_cli(capsys, "run", str(source))
    assert code == 1
    assert "unknown mnemonic" in err


def test_bench_command(capsys):
    code, out, _ = run_cli(capsys, "bench", "gamess",
                           "--scheme", "fh-backend",
                           "--instructions", "2500")
    assert code == 0
    assert "perf degradation" in out
    assert "false-positive rate" in out


def test_campaign_command(capsys):
    code, out, _ = run_cli(capsys, "campaign", "bzip2", "--faults", "10")
    assert code == 0
    assert "masked" in out
    assert "coverage" in out


def test_figure_table2(capsys):
    code, out, _ = run_cli(capsys, "figure", "table2")
    assert code == 0
    assert "Re-order Buffer" in out


def test_parser_rejects_unknown_benchmark():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["bench", "nonesuch"])


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
