"""End-to-end scenario tests: multi-phase narratives through the full
stack, the way a user of the library would drive it."""

import pytest

from repro.analysis.metrics import fp_rate, perf_overhead
from repro.config import FaultHoundConfig, HardwareConfig
from repro.core import FaultHoundUnit
from repro.core.actions import CheckAction
from repro.energy import EnergyModel
from repro.isa import assemble
from repro.pipeline import PipelineCore


class TestLearningCurve:
    """The unit's false-positive rate must fall as the filters learn."""

    def test_trigger_rate_decays_over_phases(self):
        program = assemble("""
            movi r1, 1500
            movi r2, 0x1000
            movi r5, 1
        loop:
            ld   r4, 0(r2)
            add  r5, r5, r4
            andi r5, r5, 255
            st   r5, 0(r2)
            addi r2, r2, 8
            andi r2, r2, 0x3FF8
            ori  r2, r2, 0x1000
            addi r1, r1, -1
            bne  r1, r0, loop
            halt
        """)
        core = PipelineCore([program], screening=FaultHoundUnit())
        unit = core.screening

        def window_triggers(commits):
            before = unit.trigger_count
            core.run_until_commits(commits)
            return unit.trigger_count - before

        early = window_triggers(800)
        late = window_triggers(800)
        assert late <= early, "filters must learn, not thrash"
        # raw triggers include second-level-suppressed ones; the actions
        # that actually cost anything must be rare at steady state
        actions = (unit.count(CheckAction.REPLAY)
                   + unit.count(CheckAction.SQUASH)
                   + unit.count(CheckAction.SINGLETON))
        assert actions / max(1, unit.checks) < 0.10


class TestSchemeLifecycle:
    """Baseline -> attach FaultHound -> inject -> recover -> account."""

    SRC = """
        movi r1, 600
        movi r2, 0x2000
        movi r5, 11
    loop:
        st   r5, 0(r2)
        ld   r4, 0(r2)
        addi r2, r2, 8
        andi r2, r2, 0x3FF8
        ori  r2, r2, 0x2000
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """

    def test_full_lifecycle(self):
        hw = HardwareConfig()
        program = assemble(self.SRC)

        baseline = PipelineCore([program], hw=hw)
        baseline.run(max_cycles=500_000)
        golden = baseline.threads[0].output_snapshot()

        core = PipelineCore([program], hw=hw, screening=FaultHoundUnit())
        core.run_until_commits(900)
        # corrupt the architectural store-value register in a stable bit
        victim = core.threads[0].committed_rat.get(5)
        core.inject_prf_bit(victim, bit=50)
        core.run(max_cycles=500_000)

        assert core.all_halted
        detected_or_recovered = (
            core.threads[0].output_snapshot() == golden
            or core.declared_faults
            or core.stats.rollback_events > 0)
        assert detected_or_recovered

        # timing and energy accounting remain self-consistent
        overhead = perf_overhead(core.stats.cycles, baseline.stats.cycles)
        assert -0.2 < overhead < 2.0
        energy = EnergyModel().compute(core)
        assert energy.screening_pj > 0
        rate = fp_rate(core.screening, core.stats.committed)
        assert 0.0 <= rate < 0.2


class TestConfigurationMatrix:
    """Every FaultHoundConfig ablation combination must run clean on a
    small workload (no crashes, no architectural divergence)."""

    SRC = """
        movi r1, 120
        movi r2, 0x400
    loop:
        st   r1, 0(r2)
        ld   r3, 0(r2)
        addi r2, r2, 8
        andi r2, r2, 0x7F8
        ori  r2, r2, 0x400
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    """

    @pytest.mark.parametrize("clustering", [True, False])
    @pytest.mark.parametrize("second_level", [True, False])
    @pytest.mark.parametrize("lsq_check", [True, False])
    def test_ablation_matrix(self, clustering, second_level, lsq_check):
        from repro.isa.interpreter import run_program
        cfg = FaultHoundConfig(clustering=clustering,
                               second_level=second_level,
                               lsq_check=lsq_check,
                               squash_detection=clustering)
        program = assemble(self.SRC)
        core = PipelineCore([program], screening=FaultHoundUnit(cfg))
        core.run(max_cycles=300_000)
        assert core.all_halted
        assert (core.threads[0].arch_state_snapshot(core.prf)
                == run_program(program).snapshot())
