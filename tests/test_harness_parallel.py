"""Tests for the parallel execution layer and the artifact cache.

The contract under test is the tentpole one: parallel fan-out and the
persistent cache are pure accelerators — every path (serial, jobs>1,
cache hit) yields bit-for-bit identical campaign results.
"""

import pathlib

import pytest

from repro.harness import cache as cache_module
from repro.harness.cache import ArtifactCache, code_version_salt
from repro.harness.experiment import ExperimentConfig, ExperimentContext
from repro.harness.parallel import chunk_bounds

_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=3_000,
                         num_faults=10, warmup_commits=200,
                         window_commits=100)


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("fault_free", benchmark="mcf", scheme="faulthound")
        assert cache.get("fault_free", key) is None
        assert cache.put("fault_free", key, {"cycles": 123})
        assert cache.get("fault_free", key) == {"cycles": 123}
        assert cache.entry_count() == 1

    def test_keys_are_stable_and_distinct(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cfg = ExperimentConfig()
        a = cache.key("coverage", cfg=cfg, benchmark="mcf", scheme="pbfs")
        b = cache.key("coverage", cfg=cfg, benchmark="mcf", scheme="pbfs")
        assert a == b
        assert a != cache.key("coverage", cfg=cfg, benchmark="bzip2",
                              scheme="pbfs")
        assert a != cache.key("characterize", cfg=cfg, benchmark="mcf",
                              scheme="pbfs")
        assert a != cache.key("coverage", cfg=cfg.quick(), benchmark="mcf",
                              scheme="pbfs")

    def test_float_parts_keep_full_precision(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        a = cache.key("srt", benchmark="mcf", coverage=0.7501)
        b = cache.key("srt", benchmark="mcf", coverage=0.7504)
        assert a != b

    def test_salt_override_changes_keys(self, tmp_path, monkeypatch):
        cache = ArtifactCache(tmp_path)
        baseline = code_version_salt()
        monkeypatch.setenv("REPRO_CACHE_SALT", "deadbeef")
        monkeypatch.setattr(cache_module, "_SALT", None)
        assert code_version_salt() == "deadbeef"
        key_a = cache.key("fault_free", benchmark="mcf")
        monkeypatch.setattr(cache_module, "_SALT", baseline)
        key_b = cache.key("fault_free", benchmark="mcf")
        assert key_a != key_b

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("srt", benchmark="mcf")
        cache.put("srt", key, [1, 2, 3])
        path = tmp_path / "srt" / f"{key}.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.get("srt", key) is None
        assert not path.exists()       # dropped so the rewrite starts clean
        assert cache.misses == 1

    def test_verify_quarantines_corrupt_entries(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        good_key = cache.key("srt", benchmark="mcf")
        cache.put("srt", good_key, [1, 2, 3])
        bad_key = cache.key("coverage", benchmark="mcf")
        cache.put("coverage", bad_key, {"x": 1})
        (tmp_path / "coverage" / f"{bad_key}.pkl").write_bytes(b"garbage")
        report = cache.verify()
        assert report["checked"] == 2
        assert report["ok"] == 1
        assert report["corrupt"] == 1
        assert report["quarantined"] == 1
        assert report["entries"][0]["key"] == bad_key
        assert report["entries"][0]["action"] == "quarantined"
        # the corrupt entry moved aside: lookups miss, good entry intact
        assert cache.get("coverage", bad_key) is None
        assert cache.get("srt", good_key) == [1, 2, 3]
        assert (tmp_path / "quarantine" / "coverage"
                / f"{bad_key}.pkl.corrupt").exists()
        # quarantined files no longer count as entries, re-verify is clean
        assert cache.entry_count() == 1
        assert cache.verify()["corrupt"] == 0

    def test_verify_can_drop_instead_of_quarantine(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key("srt", benchmark="mcf")
        cache.put("srt", key, [1])
        path = tmp_path / "srt" / f"{key}.pkl"
        path.write_bytes(b"garbage")
        report = cache.verify(quarantine=False)
        assert report["corrupt"] == 1 and report["quarantined"] == 0
        assert report["entries"][0]["action"] == "dropped"
        assert not path.exists()

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for kind in ("fault_free", "coverage"):
            cache.put(kind, cache.key(kind, benchmark="mcf"), kind)
        assert cache.entry_count() == 2
        assert cache.clear() == 2
        assert cache.entry_count() == 0


# ----------------------------------------------------------------------
# fan-out plumbing
# ----------------------------------------------------------------------
class TestChunkBounds:
    @pytest.mark.parametrize("count,chunks", [
        (0, 4), (1, 4), (7, 3), (12, 4), (5, 5), (5, 9), (100, 7)])
    def test_partition_covers_range_exactly(self, count, chunks):
        bounds = chunk_bounds(count, chunks)
        covered = [i for lo, hi in bounds for i in range(lo, hi)]
        assert covered == list(range(count))
        assert len(bounds) <= max(1, chunks)

    def test_chunks_are_balanced(self):
        sizes = [hi - lo for lo, hi in chunk_bounds(10, 4)]
        assert max(sizes) - min(sizes) <= 1


class TestClassifierContract:
    def test_unsorted_records_are_rejected(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        campaign = ctx.build_campaign("mcf")
        classifier = campaign.classifier(campaign.baseline_factory)
        backwards = list(reversed(campaign.records))
        with pytest.raises(ValueError, match="never rewinds"):
            classifier.run(backwards)


# ----------------------------------------------------------------------
# srt cache-key regression (distinct coverages must not alias)
# ----------------------------------------------------------------------
class TestSrtKey:
    def test_key_derivation_includes_benchmark_and_precision(self):
        key = ExperimentContext._srt_key
        assert key("mcf", 0.75) != key("bzip2", 0.75)
        assert key("mcf", 0.7501) != key("mcf", 0.7504)

    def test_close_coverages_get_independent_runs(self):
        ctx = ExperimentContext(_TINY, jobs=1)
        run_a = ctx.srt_run("mcf", 0.7501)
        run_b = ctx.srt_run("mcf", 0.7504)
        assert len(ctx._srt) == 2      # the old round(3) key aliased these
        assert run_a is ctx.srt_run("mcf", 0.7501)
        assert run_b is ctx.srt_run("mcf", 0.7504)


# ----------------------------------------------------------------------
# end-to-end equivalence: serial == parallel == cache hit
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_results():
    ctx = ExperimentContext(_TINY, jobs=1)
    _, characterization = ctx.campaign("mcf")
    coverage = ctx.coverage("mcf", "faulthound")
    return characterization, coverage


class TestParallelEquivalence:
    def test_parallel_campaign_is_bitwise_identical(self, serial_results):
        serial_char, serial_cov = serial_results
        ctx = ExperimentContext(_TINY, jobs=2)
        _, par_char = ctx.campaign("mcf")
        par_cov = ctx.coverage("mcf", "faulthound")
        assert par_char.characterization == serial_char.characterization
        assert par_char.records == serial_char.records
        assert par_cov.coverage_results == serial_cov.coverage_results
        assert par_cov.outcomes == serial_cov.outcomes
        assert par_cov.coverage == serial_cov.coverage

    def test_warm_cache_is_bitwise_identical(self, serial_results, tmp_path):
        serial_char, serial_cov = serial_results
        cache = ArtifactCache(tmp_path)
        cold = ExperimentContext(_TINY, jobs=1, cache=cache)
        cold.campaign("mcf")
        cold.coverage("mcf", "faulthound")
        assert cold.metrics.cache_misses > 0

        warm = ExperimentContext(_TINY, jobs=1, cache=cache)
        _, warm_char = warm.campaign("mcf")
        warm_cov = warm.coverage("mcf", "faulthound")
        assert warm.metrics.cache_hits > 0
        assert warm.metrics.cache_misses == 0
        assert warm_char.throughput.from_cache
        assert warm_cov.throughput.from_cache
        assert warm_char.characterization == serial_char.characterization
        assert warm_cov.coverage_results == serial_cov.coverage_results
        assert warm_cov.outcomes == serial_cov.outcomes

    def test_fault_free_round_trips_through_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = ExperimentContext(_TINY, jobs=1, cache=cache)
        run_cold = cold.fault_free("mcf", "baseline")
        warm = ExperimentContext(_TINY, jobs=1, cache=cache)
        run_warm = warm.fault_free("mcf", "baseline")
        assert run_warm == run_cold
        assert warm.metrics.cache_hits == 1
