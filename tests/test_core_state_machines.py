"""State-machine semantics (paper Figure 2, Sections 3.2/3.4)."""

import pytest

from repro.core import BiasedMachine, StandardCounter, StickyCounter


class TestStickyCounter:
    def test_first_change_alarms(self):
        counter = StickyCounter()
        assert counter.observe(True) is True

    def test_stays_saturated_no_second_alarm(self):
        counter = StickyCounter()
        counter.observe(True)
        assert counter.observe(False) is False
        assert counter.observe(True) is False  # sticky: only one detection
        assert counter.is_changing

    def test_no_change_never_alarms(self):
        counter = StickyCounter()
        for _ in range(10):
            assert counter.observe(False) is False
        assert not counter.is_changing

    def test_flash_clear_rearms(self):
        counter = StickyCounter()
        counter.observe(True)
        counter.flash_clear()
        assert not counter.is_changing
        assert counter.observe(True) is True


class TestStandardCounter:
    def test_direct_u_c1_transitions(self):
        # Figure 2(a): one no-change from C1 returns to U, so an
        # alternating change/no-change pattern alarms every other step.
        counter = StandardCounter(3)
        alarms = [counter.observe(bool(i % 2 == 0)) for i in range(6)]
        assert alarms == [True, False, True, False, True, False]

    def test_saturates_at_deepest_state(self):
        counter = StandardCounter(3)
        for _ in range(5):
            counter.observe(True)
        assert counter.state == 3
        counter.observe(False)
        assert counter.state == 2

    def test_rejects_zero_states(self):
        with pytest.raises(ValueError):
            StandardCounter(0)


class TestBiasedMachine:
    def test_change_jumps_to_deepest_state(self):
        machine = BiasedMachine(2)
        machine.observe(True)
        assert machine.state == 2

    def test_two_consecutive_no_changes_to_reenter_u(self):
        # Figure 2(b): the bias that cuts false positives.
        machine = BiasedMachine(2)
        machine.observe(True)          # U -> C2, alarm
        machine.observe(False)         # C2 -> C1
        assert machine.is_changing
        machine.observe(False)         # C1 -> U
        assert not machine.is_changing

    def test_toggling_pattern_alarm_suppressed(self):
        # change/no-change toggling alarms once then never again — the
        # exact pattern that makes the standard counter alarm repeatedly.
        machine = BiasedMachine(2)
        alarms = [machine.observe(bool(i % 2 == 0)) for i in range(10)]
        assert alarms == [True] + [False] * 9

    def test_alarm_only_out_of_u(self):
        machine = BiasedMachine(2)
        machine.observe(True)
        assert machine.observe(True) is False  # change in C2: no alarm
        machine.observe(False)
        assert machine.observe(True) is False  # change in C1: no alarm

    def test_seven_state_machine_needs_seven_quiet_steps(self):
        # The second-level / squash configuration (8 states).
        machine = BiasedMachine(7)
        machine.observe(True)
        for _ in range(6):
            machine.observe(False)
            assert machine.is_changing
        machine.observe(False)
        assert not machine.is_changing
        assert machine.observe(True) is True

    def test_saturate_forces_deepest_state(self):
        machine = BiasedMachine(7)
        machine.saturate()
        assert machine.state == 7

    def test_rejects_zero_states(self):
        with pytest.raises(ValueError):
            BiasedMachine(0)
