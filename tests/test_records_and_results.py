"""Pure-data record tests: actions, campaign results, energy records."""

import pytest

from repro.core.actions import CheckAction, CheckKind, CheckResult
from repro.energy import EnergyBreakdown
from repro.faults import CoverageOutcome, FaultClass, FaultRecord, FaultSite
from repro.faults.campaign import CampaignResult
from repro.faults.classifier import WindowResult


class TestActions:
    def test_kind_table_routing(self):
        assert CheckKind.LOAD_ADDR.uses_address_table
        assert CheckKind.STORE_ADDR.uses_address_table
        assert not CheckKind.STORE_VALUE.uses_address_table

    def test_action_is_trigger(self):
        assert not CheckAction.NONE.is_trigger
        for action in (CheckAction.SUPPRESSED, CheckAction.REPLAY,
                       CheckAction.SQUASH, CheckAction.SINGLETON):
            assert action.is_trigger

    def test_result_none_factory(self):
        result = CheckResult.none(CheckKind.STORE_VALUE)
        assert result.action is CheckAction.NONE
        assert not result.triggered
        assert result.lookup is None


def record(index=0, site=FaultSite.REGFILE):
    return FaultRecord(index=index, site=site, inject_at_commit=10, bit=1,
                       reg=5, thread_id=0, lsq_slot=0, lsq_field="addr")


def window(rec, fault_class, applied=True):
    result = WindowResult(record=rec, applied=applied)
    result.fault_class = fault_class
    rec.fault_class = fault_class
    return result


class TestCampaignResult:
    def make(self):
        records = [record(i) for i in range(4)]
        result = CampaignResult("bench", "scheme", records)
        result.characterization = [
            window(records[0], FaultClass.MASKED),
            window(records[1], FaultClass.NOISY),
            window(records[2], FaultClass.SDC),
            window(records[3], None, applied=False),
        ]
        return result

    def test_class_fractions_over_applied_only(self):
        result = self.make()
        assert result.applied_count() == 3
        assert result.class_fraction(FaultClass.MASKED) \
            == pytest.approx(1 / 3)
        assert result.class_fraction(FaultClass.SDC) == pytest.approx(1 / 3)

    def test_empty_result_fractions(self):
        result = CampaignResult("b", "s", [])
        assert result.class_fraction(FaultClass.MASKED) == 0.0
        assert result.coverage == 0.0
        assert result.outcome_fraction(CoverageOutcome.RECOVERED) == 0.0

    def test_coverage_and_breakdown(self):
        result = CampaignResult("b", "s", [])
        result.outcomes = {0: CoverageOutcome.RECOVERED,
                           1: CoverageOutcome.DETECTED,
                           2: CoverageOutcome.NO_TRIGGER,
                           3: CoverageOutcome.UNCOVERED_RENAME}
        assert result.coverage == pytest.approx(0.5)
        assert result.covered_count == 2
        bins = result.breakdown()
        assert bins["covered"] == pytest.approx(0.5)
        assert sum(bins.values()) == pytest.approx(1.0)

    def test_coverage_interval(self):
        result = CampaignResult("b", "s", [])
        result.outcomes = {i: CoverageOutcome.RECOVERED for i in range(8)}
        interval = result.coverage_interval()
        assert interval.point == 1.0
        assert interval.low > 0.6

    def test_describe_lsq_record(self):
        rec = record(site=FaultSite.LSQ)
        assert "addr[0]" in rec.describe()


class TestEnergyBreakdown:
    def test_zero_baseline_overhead(self):
        a = EnergyBreakdown(pipeline_pj=10)
        zero = EnergyBreakdown()
        assert a.overhead_vs(zero) == 0.0

    def test_overhead_math(self):
        a = EnergyBreakdown(pipeline_pj=100)
        b = EnergyBreakdown(pipeline_pj=125)
        assert b.overhead_vs(a) == pytest.approx(0.25)
