"""Integration: every Table 1 benchmark runs on the pipeline and commits
exactly the golden interpreter's architectural state, with and without
FaultHound attached."""

import pytest

from repro.core import FaultHoundUnit
from repro.isa.interpreter import Interpreter
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_program

DYNAMIC = 2_500


def golden(program):
    interp = Interpreter(program)
    interp.run(max_instructions=2_000_000)
    assert interp.state.halted
    return interp.state.snapshot()


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_profile_pipeline_matches_interpreter(name):
    program = build_program(PROFILES[name], DYNAMIC)
    core = PipelineCore([program])
    core.run(max_cycles=3_000_000)
    assert core.all_halted, f"{name}: pipeline did not finish"
    assert core.threads[0].arch_state_snapshot(core.prf) == golden(program)


@pytest.mark.parametrize("name", ["mcf", "apache", "leslie3d", "gamess"])
def test_profile_with_faulthound_matches_interpreter(name):
    """False positives (and the outlier events that cause them) must
    never change architectural results."""
    program = build_program(PROFILES[name], DYNAMIC)
    core = PipelineCore([program], screening=FaultHoundUnit())
    core.run(max_cycles=3_000_000)
    assert core.all_halted
    assert core.threads[0].arch_state_snapshot(core.prf) == golden(program)
    # the outlier machinery must actually have exercised the filters
    assert core.screening.trigger_count > 0
