"""Stride-prefetcher tests."""

import pytest

from repro.config import HardwareConfig
from repro.memory import MemoryHierarchy
from repro.memory.prefetch import StridePrefetcher
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_program


class TestStrideDetector:
    def test_two_matching_strides_arm_the_stream(self):
        pf = StridePrefetcher(degree=2)
        assert pf.on_miss(0, 100) == []          # first miss: no history
        assert pf.on_miss(0, 101) == []          # stride learned, not armed
        assert pf.on_miss(0, 102) == [103, 104]  # armed

    def test_stride_change_disarms(self):
        pf = StridePrefetcher(degree=1)
        pf.on_miss(0, 10)
        pf.on_miss(0, 11)
        pf.on_miss(0, 12)
        assert pf.on_miss(0, 50) == []           # broken stride (38)
        assert pf.on_miss(0, 60) == []           # new stride (10) learned
        assert pf.on_miss(0, 70) == [80]         # re-armed

    def test_negative_stride(self):
        pf = StridePrefetcher(degree=1)
        pf.on_miss(0, 100)
        pf.on_miss(0, 96)
        assert pf.on_miss(0, 92) == [88]

    def test_spaces_tracked_independently(self):
        pf = StridePrefetcher(degree=1)
        pf.on_miss(0, 10)
        pf.on_miss(1, 500)
        pf.on_miss(0, 11)
        pf.on_miss(1, 510)
        assert pf.on_miss(0, 12) == [13]
        assert pf.on_miss(1, 520) == [530]

    def test_accuracy_accounting(self):
        pf = StridePrefetcher(degree=1)
        for line in (1, 2, 3, 4):
            pf.on_miss(0, line)
        pf.note_useful()
        assert pf.issued == 2
        assert pf.accuracy == pytest.approx(0.5)

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestHierarchyIntegration:
    def test_streaming_hits_after_arming(self):
        hw = HardwareConfig(prefetch_degree=4)
        hier = MemoryHierarchy(hw)
        latencies = [hier.access(64 * i, now=10_000 * i).latency
                     for i in range(12)]
        # once armed, prefetched lines hit (fills are long complete given
        # the spaced access times)
        assert latencies[-1] < latencies[0]
        assert hier.prefetcher.issued > 0
        assert hier.prefetcher.useful > 0

    def test_disabled_by_default(self):
        assert MemoryHierarchy(HardwareConfig()).prefetcher is None

    def test_streaming_workload_speeds_up(self):
        program = build_program(PROFILES["bzip2"], 4000)
        base = PipelineCore([program], hw=HardwareConfig())
        base.run(max_cycles=3_000_000)
        pf = PipelineCore([program], hw=HardwareConfig(prefetch_degree=4))
        pf.run(max_cycles=3_000_000)
        assert pf.stats.cycles < base.stats.cycles
