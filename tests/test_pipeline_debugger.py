"""Pipeline debugger tests."""

import pytest

from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.debugger import PipelineDebugger

SRC = """
    movi r1, 30
    movi r2, 0x800
loop:
    st   r1, 0(r2)
    ld   r3, 0(r2)
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def make_debugger(screening=None):
    return PipelineDebugger(
        PipelineCore([assemble(SRC)], screening=screening))


class TestBreakpoints:
    def test_break_at_pc_stops_on_first_commit(self):
        dbg = make_debugger()
        dbg.break_at_pc(4)          # the addi
        hit = dbg.cont()
        assert hit is not None
        assert not dbg.core.all_halted
        # the loop's addi committed exactly once so far
        assert (0, 4) in dbg.core.stats.recent_commits
        assert dbg.core.threads[0].committed_count <= 8

    def test_break_on_event_replay(self):
        dbg = make_debugger(FaultHoundUnit())
        bp = dbg.break_on_event("replay")
        hit = dbg.cont(max_cycles=200_000)
        if hit is not None:          # replays occur during cold learning
            assert hit is bp
            assert dbg.core.stats.replay_events >= 1

    def test_break_on_unknown_event(self):
        dbg = make_debugger()
        with pytest.raises(ValueError, match="unknown event"):
            dbg.break_on_event("earthquake")

    def test_custom_condition(self):
        dbg = make_debugger()
        dbg.break_when("50 committed",
                       lambda core: core.stats.committed >= 50)
        dbg.cont()
        assert dbg.core.stats.committed >= 50
        assert dbg.last_stop == "50 committed"

    def test_cont_runs_to_halt_without_breakpoints(self):
        dbg = make_debugger()
        assert dbg.cont() is None
        assert dbg.core.all_halted
        assert dbg.last_stop == "halted"

    def test_clear_breakpoints(self):
        dbg = make_debugger()
        dbg.break_at_pc(2)
        dbg.clear_breakpoints()
        dbg.cont()
        assert dbg.core.all_halted


class TestInspection:
    def test_where_shows_threads(self):
        dbg = make_debugger()
        dbg.step(20)
        text = dbg.where()
        assert "cycle 20" in text
        assert "t0:" in text

    def test_registers_renders_hex(self):
        dbg = make_debugger()
        dbg.cont()
        text = dbg.registers()
        assert "r1 =0x0" in text or "r1 =0x0".replace(" ", "") in \
            text.replace(" ", "")
        assert "r2" in text

    def test_in_flight_lists_rob(self):
        dbg = make_debugger()
        dbg.step(12)
        text = dbg.in_flight()
        assert "uid=" in text

    def test_in_flight_empty(self):
        dbg = make_debugger()
        dbg.cont()
        assert "(nothing in flight)" in dbg.in_flight()

    def test_screening_state(self):
        dbg = make_debugger(FaultHoundUnit())
        dbg.step(200)
        text = dbg.screening_state()
        assert "faulthound" in text
        assert "address TCAM" in text

    def test_stats_passthrough(self):
        dbg = make_debugger()
        dbg.cont()
        assert dbg.stats()["committed"] > 0
