"""Screening-state rendering tests."""

from repro.config import FaultHoundConfig, PBFSConfig
from repro.core import FaultHoundUnit, NullScreeningUnit, PBFSUnit, TCAM
from repro.core.actions import CheckKind
from repro.core.inspect import render_domain, render_tcam, render_unit


def warmed_unit():
    unit = FaultHoundUnit()
    for i in range(20):
        unit.check_at_complete(CheckKind.LOAD_ADDR, 0x1000 + 8 * (i % 4), 3)
        unit.check_at_complete(CheckKind.STORE_VALUE, i % 8, 5)
    return unit


def test_render_tcam_shows_filters():
    tcam = TCAM(entries=4)
    tcam.lookup(0x40)
    tcam.lookup(0x48)
    text = render_tcam(tcam)
    assert "prev=0x48" in text
    assert "wildcards=" in text
    assert "x" in text  # a learned wildcard position


def test_render_tcam_empty():
    assert "(no valid filters)" in render_tcam(TCAM(entries=2))


def test_render_tcam_limit():
    tcam = TCAM(entries=16)
    for i in range(10):
        # disjoint 5-bit groups: every pair is >4 bits apart, so each
        # value installs its own filter
        tcam.lookup(0b11111 << (6 * i))
    text = render_tcam(tcam, limit=3)
    assert "more)" in text


def test_render_unit_faulthound():
    text = render_unit(warmed_unit())
    assert "address domain" in text
    assert "value domain" in text
    assert "second level" in text
    assert "squash machines" in text


def test_render_unit_no_clustering():
    cfg = FaultHoundConfig(clustering=False, second_level=False,
                           squash_detection=False)
    unit = FaultHoundUnit(cfg)
    unit.check_at_complete(CheckKind.LOAD_ADDR, 1, 2)
    text = render_unit(unit)
    assert "PC-indexed table" in text


def test_render_unit_pbfs():
    unit = PBFSUnit(PBFSConfig(biased=True))
    unit.check_at_complete(CheckKind.LOAD_ADDR, 5, 9)
    text = render_unit(unit)
    assert "pbfs-biased" in text
    assert "load_addr" in text


def test_render_unit_fallback():
    text = render_unit(NullScreeningUnit())
    assert "baseline" in text
