"""Filter-bank tests, including bit-parallel == scalar equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (ArrayBank, BitParallelBiasedBank,
                        BitParallelStickyBank, make_bank)
from repro.core.state_machines import BiasedMachine, StickyCounter

MASK64 = (1 << 64) - 1
change_masks = st.integers(min_value=0, max_value=MASK64)


class TestBitParallelBiasedBank:
    def test_fresh_bank_all_unchanging(self):
        assert BitParallelBiasedBank().changing_mask == 0

    def test_alarm_on_change_from_u(self):
        bank = BitParallelBiasedBank()
        assert bank.observe(0b1010) == 0b1010
        assert bank.changing_mask == 0b1010

    def test_no_alarm_while_changing(self):
        bank = BitParallelBiasedBank()
        bank.observe(0b1)
        assert bank.observe(0b1) == 0

    def test_decay_takes_two_quiet_observations(self):
        bank = BitParallelBiasedBank()
        bank.observe(0b1)
        bank.observe(0)
        assert bank.changing_mask == 0b1
        bank.observe(0)
        assert bank.changing_mask == 0

    def test_reset(self):
        bank = BitParallelBiasedBank()
        bank.observe(MASK64)
        bank.reset()
        assert bank.changing_mask == 0


class TestBitParallelStickyBank:
    def test_alarm_once_then_sticky(self):
        bank = BitParallelStickyBank()
        assert bank.observe(0b11) == 0b11
        assert bank.observe(0b11) == 0
        assert bank.changing_mask == 0b11

    def test_never_decays_without_clear(self):
        bank = BitParallelStickyBank()
        bank.observe(0b1)
        for _ in range(100):
            bank.observe(0)
        assert bank.changing_mask == 0b1

    def test_flash_clear_rearms(self):
        bank = BitParallelStickyBank()
        bank.observe(0b1)
        bank.flash_clear()
        assert bank.observe(0b1) == 0b1


class TestMakeBank:
    def test_default_biased_is_bit_parallel(self):
        assert isinstance(make_bank("biased", 2), BitParallelBiasedBank)

    def test_non_default_states_fall_back_to_array(self):
        bank = make_bank("biased", 3)
        assert isinstance(bank, ArrayBank)
        assert all(m.num_changing_states == 3 for m in bank.machines)

    def test_sticky_and_standard(self):
        assert isinstance(make_bank("sticky"), BitParallelStickyBank)
        assert isinstance(make_bank("standard", 3), ArrayBank)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_bank("bogus")


@settings(max_examples=60)
@given(st.lists(change_masks, min_size=1, max_size=30))
def test_bit_parallel_biased_equals_scalar_reference(sequence):
    """The bitplane transition function must agree with 64 explicit
    Figure-2(b) machines on any observation sequence."""
    fast = BitParallelBiasedBank()
    slow = ArrayBank(lambda: BiasedMachine(2))
    for mask in sequence:
        assert fast.observe(mask) == slow.observe(mask)
        assert fast.changing_mask == slow.changing_mask


@settings(max_examples=60)
@given(st.lists(change_masks, min_size=1, max_size=30))
def test_bit_parallel_sticky_equals_scalar_reference(sequence):
    fast = BitParallelStickyBank()
    slow = ArrayBank(StickyCounter)
    for mask in sequence:
        assert fast.observe(mask) == slow.observe(mask)
        assert fast.changing_mask == slow.changing_mask


@settings(max_examples=40)
@given(st.lists(change_masks, min_size=1, max_size=20), change_masks)
def test_alarms_only_on_changed_unchanging_bits(sequence, probe):
    """Invariant: an alarm bit must be a changed bit that was not already
    marked changing."""
    bank = BitParallelBiasedBank()
    for mask in sequence:
        before = bank.changing_mask
        alarm = bank.observe(mask)
        assert alarm & ~mask == 0
        assert alarm & before == 0
