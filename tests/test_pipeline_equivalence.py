"""Differential property tests: the out-of-order pipeline must commit the
golden interpreter's architectural state for any program, with any
screening scheme active (fault-free runs)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultHoundConfig, PBFSConfig
from repro.core import FaultHoundUnit, NullScreeningUnit, PBFSUnit
from repro.isa.interpreter import Interpreter
from repro.pipeline import PipelineCore

from .program_gen import random_program


def golden_snapshot(program):
    interp = Interpreter(program)
    interp.run(max_instructions=500_000)
    return interp.state.snapshot()


def pipeline_snapshot(program, screening=None):
    core = PipelineCore([program], screening=screening)
    # raise-mode sanitizer: any structural invariant violation fails the
    # test at the offending cycle, not as a downstream state mismatch
    core.enable_sanitizer(every=2)
    core.run(max_cycles=500_000)
    assert core.all_halted, "pipeline deadlocked"
    return core.threads[0].arch_state_snapshot(core.prf)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pipeline_equals_interpreter(seed):
    program = random_program(random.Random(seed))
    assert pipeline_snapshot(program) == golden_snapshot(program)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pipeline_with_faulthound_equals_interpreter(seed):
    """False positives cause replays/rollbacks but never change state."""
    program = random_program(random.Random(seed))
    unit = FaultHoundUnit()
    assert pipeline_snapshot(program, unit) == golden_snapshot(program)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pipeline_with_pbfs_equals_interpreter(seed):
    program = random_program(random.Random(seed))
    unit = PBFSUnit(PBFSConfig(biased=True))
    assert pipeline_snapshot(program, unit) == golden_snapshot(program)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pipeline_with_full_rollback_ablation_equals_interpreter(seed):
    program = random_program(random.Random(seed))
    unit = FaultHoundUnit(FaultHoundConfig(full_rollback_on_trigger=True))
    assert pipeline_snapshot(program, unit) == golden_snapshot(program)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=5_000),
       st.integers(min_value=5_001, max_value=9_999))
def test_smt_pair_each_matches_own_golden(seed_a, seed_b):
    prog_a = random_program(random.Random(seed_a), body_len=12)
    prog_b = random_program(random.Random(seed_b), body_len=12)
    core = PipelineCore([prog_a, prog_b])
    core.enable_sanitizer(every=2)
    core.run(max_cycles=500_000)
    assert core.all_halted
    assert (core.threads[0].arch_state_snapshot(core.prf)
            == golden_snapshot(prog_a))
    assert (core.threads[1].arch_state_snapshot(core.prf)
            == golden_snapshot(prog_b))


def test_determinism_same_seed_same_cycles():
    program = random_program(random.Random(7))
    runs = []
    for _ in range(2):
        core = PipelineCore([program], screening=FaultHoundUnit())
        core.run(max_cycles=500_000)
        runs.append((core.stats.cycles, core.stats.committed,
                     core.threads[0].arch_state_snapshot(core.prf)))
    assert runs[0] == runs[1]
