"""Second-level delinquent-bit filter tests (paper Section 3.2)."""

from repro.core import SecondLevelFilter


def test_fresh_filter_allows_first_alarm():
    second = SecondLevelFilter()
    assert second.observe_trigger(0b100) == 0b100


def test_delinquent_bit_suppressed_on_repeat():
    second = SecondLevelFilter()
    second.observe_trigger(0b1)
    # The same bit alarming again within 7 triggers is suppressed.
    assert second.observe_trigger(0b1) == 0


def test_rearms_after_seven_quiet_triggers():
    second = SecondLevelFilter(num_states=8)
    second.observe_trigger(0b1)
    for _ in range(7):
        second.observe_trigger(0)      # quiet trigger events re-arm bit 0
    assert second.observe_trigger(0b1) == 0b1


def test_mixed_mask_partial_allow():
    second = SecondLevelFilter()
    second.observe_trigger(0b01)       # bit 0 now delinquent
    allowed = second.observe_trigger(0b11)
    assert allowed == 0b10             # bit 1 fresh -> allowed; bit 0 suppressed


def test_suppressed_trigger_still_recorded():
    """Even suppressed non-matches advance the machine (the paper: "though
    the state machine transitions to record the non-match")."""
    second = SecondLevelFilter()
    second.observe_trigger(0b1)
    for _ in range(6):
        second.observe_trigger(0)
    second.observe_trigger(0b1)        # suppressed but re-saturates bit 0
    for _ in range(6):
        second.observe_trigger(0)
    assert second.observe_trigger(0b1) == 0  # still suppressed: not yet 7 quiet


def test_allows_probe_is_side_effect_free():
    second = SecondLevelFilter()
    assert second.allows(0b1)
    second.observe_trigger(0b1)
    assert not second.allows(0b1)
    assert second.allows(0b10)


def test_delinquent_mask_tracks_suppressed_positions():
    second = SecondLevelFilter()
    second.observe_trigger(0b1010)
    assert second.delinquent_mask == 0b1010


def test_suppression_statistics():
    second = SecondLevelFilter()
    second.observe_trigger(0b1)        # allowed
    second.observe_trigger(0b1)        # suppressed
    assert second.observed_triggers == 2
    assert second.suppressed_triggers == 1


def test_rejects_too_few_states():
    import pytest
    with pytest.raises(ValueError):
        SecondLevelFilter(num_states=1)
