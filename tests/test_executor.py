"""Tests for the pluggable chunk executors and the distributed fabric.

The contract under test: the executor is a pure *venue* decision — the
supervised serial path, the local pool and the remote fabric (worker
agent daemons leased chunks through the content-addressed store) all
produce bit-for-bit identical campaign results, and every remote
failure mode (agent SIGKILL mid-chunk, full-fleet loss, a resume whose
agents all died) converges to those same bytes through the supervisor's
existing retry/attribution/quarantine machinery.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.harness import (ExperimentConfig, ExperimentContext, Supervisor,
                           SupervisorPolicy)
from repro.harness.executor import (LocalPoolExecutor, RemoteChunkExecutor,
                                    RemotePolicy, SerialChunkExecutor,
                                    agent_socket_path, read_agent_registry)
from repro.harness.server import jittered_backoff
from repro.obs import read_events, validate_events

# same geometry as the supervisor suite so the reference is cheap
_TINY = ExperimentConfig(benchmarks=("mcf",), dynamic_target=2_200,
                         num_faults=10, warmup_commits=400,
                         window_commits=150, max_window_cycles=60_000)

_FAST_REMOTE = dict(poll_interval=0.02, reconnect_base=0.05,
                    reconnect_max=0.2, loss_grace=1.0)


@pytest.fixture(scope="module")
def serial_reference():
    ctx = ExperimentContext(_TINY, jobs=1)
    _, characterization = ctx.campaign("mcf")
    coverage = ctx.coverage("mcf", "faulthound")
    return characterization, coverage


def _cli_env():
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    return env


def _start_agents(fabric, names, idle_exit=180.0):
    """Launch agent daemons and wait until all are registered."""
    procs = [subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "agent", "start",
         "--fabric", str(fabric), "--name", name,
         "--idle-exit", str(idle_exit)],
        env=_cli_env(), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL) for name in names]
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        registry = read_agent_registry(fabric)
        if all(name in registry for name in names):
            return procs
        if any(proc.poll() is not None for proc in procs):
            break
        time.sleep(0.05)
    for proc in procs:
        proc.kill()
    raise AssertionError("agents never registered under the fabric")


def _stop_agents(procs):
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=15)


# ----------------------------------------------------------------------
# executor selection
# ----------------------------------------------------------------------
class TestSelection:
    def test_jobs_1_selects_serial(self):
        sup = Supervisor(SupervisorPolicy())
        chosen = sup._select_executor(1)
        assert isinstance(chosen, SerialChunkExecutor)
        assert chosen.kind == "serial"
        assert not chosen.needs_checkpoints

    def test_jobs_many_selects_pool(self):
        sup = Supervisor(SupervisorPolicy())
        chosen = sup._select_executor(4)
        assert isinstance(chosen, LocalPoolExecutor)
        assert chosen.kind == "pool"
        assert chosen.needs_checkpoints

    def test_explicit_executor_wins(self, tmp_path):
        remote = RemoteChunkExecutor(tmp_path / "fab")
        sup = Supervisor(SupervisorPolicy(), executor=remote)
        assert sup._select_executor(4) is remote
        assert remote.kind == "remote"

    def test_force_serial_overrides_everything(self, tmp_path):
        remote = RemoteChunkExecutor(tmp_path / "fab")
        sup = Supervisor(SupervisorPolicy(), executor=remote)
        sup._force_serial = True
        assert isinstance(sup._select_executor(4), SerialChunkExecutor)


# ----------------------------------------------------------------------
# backoff helper (shared by agent reconnect and the serve client)
# ----------------------------------------------------------------------
class TestJitteredBackoff:
    def test_grows_exponentially_and_caps(self):
        delays = [jittered_backoff(n, base=0.1, cap=5.0, jitter=0.0)
                  for n in range(1, 12)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert delays[2] == pytest.approx(0.4)
        assert max(delays) <= 5.0
        assert delays[-1] == 5.0

    def test_jitter_is_deterministic_and_bounded(self):
        for attempt in (1, 3, 7):
            a = jittered_backoff(attempt, base=0.1, cap=5.0, salt="x")
            b = jittered_backoff(attempt, base=0.1, cap=5.0, salt="x")
            assert a == b                      # no RNG: replayable
            plain = jittered_backoff(attempt, base=0.1, cap=5.0,
                                     jitter=0.0)
            assert plain <= a <= min(5.0, plain * 1.5)

    def test_salt_decorrelates_callers(self):
        spread = {jittered_backoff(4, base=0.1, cap=5.0,
                                   salt=f"agent-{i}")
                  for i in range(8)}
        assert len(spread) > 1


# ----------------------------------------------------------------------
# remote fabric: equivalence and failure modes
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.timeout(300)
class TestRemoteFabric:
    def _run_remote(self, fabric, events_path=None, policy=None,
                    jobs=2, cache=None):
        from repro.obs import EventLog
        events = EventLog(events_path) if events_path else None
        sup = Supervisor(
            SupervisorPolicy(chunk_windows=3),
            executor=RemoteChunkExecutor(
                fabric, policy=RemotePolicy(**_FAST_REMOTE)
                if policy is None else policy))
        ctx = ExperimentContext(_TINY, jobs=jobs, supervisor=sup,
                                events=events, cache=cache)
        _, characterization = ctx.campaign("mcf")
        coverage = ctx.coverage("mcf", "faulthound")
        if events is not None:
            events.close()
        return sup, characterization, coverage

    def test_remote_matches_serial_bit_for_bit(self, serial_reference,
                                               tmp_path):
        s_char, s_cov = serial_reference
        fabric = tmp_path / "fab"
        events_path = tmp_path / "events.jsonl"
        procs = _start_agents(fabric, ["a0", "a1"])
        try:
            sup, characterization, coverage = self._run_remote(
                fabric, events_path=events_path)
        finally:
            _stop_agents(procs)
        assert characterization.characterization == s_char.characterization
        assert coverage.coverage_results == s_cov.coverage_results
        assert sup.status == "complete" and sup.exit_code == 0
        assert not sup.quarantined
        events = read_events(events_path)
        assert validate_events(events) == []
        joins = [e for e in events if e.get("type") == "agent"
                 and e.get("action") == "join"]
        assert {e["agent"] for e in joins} == {"a0", "a1"}
        grants = [e for e in events if e.get("type") == "lease"
                  and e.get("action") == "grant"]
        completes = [e for e in events if e.get("type") == "lease"
                     and e.get("action") == "complete"]
        assert grants and len(completes) == len(
            {e["key"] for e in completes})
        plans = [e for e in events if e.get("type") == "supervisor"
                 and e.get("action") == "plan"]
        assert plans and all(e.get("executor") == "remote" for e in plans)

    def test_agent_sigkill_mid_campaign_redispatches(
            self, serial_reference, tmp_path):
        """SIGKILL one of two agents as soon as it reports a running
        chunk: its lease expires, the chunk re-dispatches, and the
        result is still bit-for-bit the serial reference."""
        s_char, s_cov = serial_reference
        fabric = tmp_path / "fab"
        events_path = tmp_path / "events.jsonl"
        procs = _start_agents(fabric, ["victim", "survivor"])
        killed = threading.Event()

        def _victim_granted():
            # the live event log is the one authoritative signal that
            # the victim holds a lease (registry heartbeats are too
            # coarse to catch a short chunk)
            try:
                lines = events_path.read_text().splitlines()
            except OSError:
                return False
            for line in lines:
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if (event.get("type") == "lease"
                        and event.get("action") == "grant"
                        and event.get("agent") == "victim"):
                    return True
            return False

        def assassin():
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and not killed.is_set():
                if _victim_granted():
                    record = read_agent_registry(fabric).get("victim")
                    if record:
                        try:
                            os.kill(int(record["pid"]), signal.SIGKILL)
                        except (OSError, ValueError):
                            pass
                    killed.set()
                    return
                time.sleep(0.005)

        killer = threading.Thread(target=assassin, daemon=True)
        killer.start()
        try:
            sup, characterization, coverage = self._run_remote(
                fabric, events_path=events_path)
        finally:
            killed.set()
            killer.join(timeout=5)
            _stop_agents(procs)
        assert killed.is_set(), "victim never got a lease to die on"
        assert characterization.characterization == s_char.characterization
        assert coverage.coverage_results == s_cov.coverage_results
        assert sup.status == "complete"
        assert not sup.quarantined
        events = read_events(events_path)
        assert validate_events(events) == []
        lost = [e for e in events if e.get("type") == "agent"
                and e.get("action") == "lost"
                and e.get("agent") == "victim"]
        assert lost, "the dead agent was never detected"

    def test_fleet_loss_degrades_to_local_execution(
            self, serial_reference, tmp_path):
        """Kill the entire fleet before the campaign starts: after the
        loss grace the executor hands everything to the local pool and
        the campaign still completes with identical results."""
        s_char, s_cov = serial_reference
        fabric = tmp_path / "fab"
        events_path = tmp_path / "events.jsonl"
        procs = _start_agents(fabric, ["doomed"])
        for proc in procs:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=15)
        policy = RemotePolicy(**dict(_FAST_REMOTE, loss_grace=0.3))
        sup, characterization, coverage = self._run_remote(
            fabric, events_path=events_path, policy=policy)
        assert characterization.characterization == s_char.characterization
        assert coverage.coverage_results == s_cov.coverage_results
        assert sup.status == "complete"
        events = read_events(events_path)
        assert validate_events(events) == []
        degradations = [e for e in events
                        if e.get("type") == "degradation"
                        and e.get("reason") == "agents_lost"]
        assert degradations, "fleet loss never degraded to local"

    def test_remote_results_flow_into_artifact_cache(
            self, serial_reference, tmp_path, monkeypatch):
        """A remote campaign warms the user's artifact cache exactly
        like a local one: a second, local context reuses it."""
        from repro.harness import ArtifactCache
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        s_char, s_cov = serial_reference
        fabric = tmp_path / "fab"
        procs = _start_agents(fabric, ["a0", "a1"])
        try:
            sup, characterization, coverage = self._run_remote(
                fabric, cache=ArtifactCache(tmp_path / "cache"))
        finally:
            _stop_agents(procs)
        assert sup.status == "complete"
        warm = ExperimentContext(_TINY, jobs=1,
                                 cache=ArtifactCache(tmp_path / "cache"))
        _, warm_char = warm.campaign("mcf")
        warm_cov = warm.coverage("mcf", "faulthound")
        assert warm.cache.hits > 0
        assert warm_char.characterization == s_char.characterization
        assert warm_cov.coverage_results == s_cov.coverage_results


# ----------------------------------------------------------------------
# agent lifecycle helpers (CLI surface)
# ----------------------------------------------------------------------
@pytest.mark.slow
@pytest.mark.timeout(120)
class TestAgentLifecycle:
    def test_list_and_stop(self, tmp_path):
        fabric = tmp_path / "fab"
        procs = _start_agents(fabric, ["lister"])
        try:
            listed = subprocess.run(
                [sys.executable, "-m", "repro.cli", "agent", "list",
                 "--fabric", str(fabric), "--json"],
                env=_cli_env(), capture_output=True, text=True,
                timeout=60)
            assert listed.returncode == 0, listed.stderr
            rows = json.loads(listed.stdout)
            assert [row["name"] for row in rows] == ["lister"]
            assert rows[0]["state"] == "live"
            assert rows[0]["slots"] == 1

            stopped = subprocess.run(
                [sys.executable, "-m", "repro.cli", "agent", "stop",
                 "--fabric", str(fabric)],
                env=_cli_env(), capture_output=True, text=True,
                timeout=60)
            assert stopped.returncode == 0, stopped.stderr
            assert "lister" in stopped.stdout
            for proc in procs:
                proc.wait(timeout=30)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if not read_agent_registry(fabric):
                    break
                time.sleep(0.05)
            assert not read_agent_registry(fabric)
            assert not agent_socket_path(fabric, "lister").exists()
        finally:
            _stop_agents(procs)

    def test_partitioned_agent_is_marked_unreachable(self, tmp_path):
        """Dropping an agent's socket while it keeps heartbeating the
        registry (the partition model) flips `agent list` to
        unreachable without killing anything."""
        fabric = tmp_path / "fab"
        procs = _start_agents(fabric, ["split"])
        try:
            agent_socket_path(fabric, "split").unlink()
            listed = subprocess.run(
                [sys.executable, "-m", "repro.cli", "agent", "list",
                 "--fabric", str(fabric), "--json"],
                env=_cli_env(), capture_output=True, text=True,
                timeout=60)
            rows = json.loads(listed.stdout)
            assert rows[0]["state"] == "unreachable"
        finally:
            _stop_agents(procs)


# ----------------------------------------------------------------------
# resume after the whole fabric died, end to end via the CLI
# ----------------------------------------------------------------------
def _campaign_argv(run_dir, fabric=None, jobs=2):
    argv = [sys.executable, "-m", "repro.cli", "campaign", "mcf",
            "--scheme", "faulthound", "--faults", "10",
            "--jobs", str(jobs), "--no-cache",
            "--run-dir", str(run_dir)]
    if fabric is not None:
        argv += ["--fabric", str(fabric)]
    return argv


@pytest.mark.slow
@pytest.mark.timeout(300)
def test_resume_after_fabric_death_is_bit_for_bit(tmp_path):
    """Acceptance: SIGKILL both the campaign and its only agent
    mid-run, then `repro resume` *without* a fabric — the local resume
    adopts the journal and converges to the reference stdout."""
    env = _cli_env()
    reference = subprocess.run(_campaign_argv(tmp_path / "ref"), env=env,
                               capture_output=True, text=True,
                               timeout=240)
    assert reference.returncode == 0, reference.stderr

    fabric = tmp_path / "fab"
    run_dir = tmp_path / "interrupted"
    procs = _start_agents(fabric, ["mortal"])
    victim = subprocess.Popen(_campaign_argv(run_dir, fabric=fabric),
                              env=env, stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL,
                              start_new_session=True)
    journal = run_dir / "journal.jsonl"
    deadline = time.monotonic() + 120
    try:
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            if journal.exists() and "chunk_done" in journal.read_text():
                break
            time.sleep(0.05)
        assert victim.poll() is None, "campaign finished before the kill"
    finally:
        for proc in procs:
            proc.send_signal(signal.SIGKILL)
        try:
            os.killpg(victim.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        victim.wait(timeout=30)
        _stop_agents(procs)

    resumed = subprocess.run(
        [sys.executable, "-m", "repro.cli", "resume", str(run_dir)],
        env=env, capture_output=True, text=True, timeout=240)
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == reference.stdout
