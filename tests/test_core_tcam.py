"""Counting-TCAM tests (paper Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TCAM
from repro.errors import ConfigurationError

MASK64 = (1 << 64) - 1
values = st.integers(min_value=0, max_value=MASK64)


def warmed(entries=4, threshold=4, seed_values=(0,)):
    tcam = TCAM(entries=entries, loosen_threshold=threshold)
    for value in seed_values:
        tcam.lookup(value)
    return tcam


class TestColdStart:
    def test_first_value_installs_without_trigger(self):
        tcam = TCAM(entries=4)
        res = tcam.lookup(123)
        assert not res.triggered
        assert res.cold_install
        assert tcam.valid_entries == 1

    def test_repeat_value_matches(self):
        tcam = warmed(seed_values=(123,))
        res = tcam.lookup(123)
        assert not res.triggered and not res.cold_install


class TestMatchAndLoosen:
    def test_near_value_loosens_closest(self):
        tcam = warmed(seed_values=(0b0000,))
        res = tcam.lookup(0b0101)      # 2 mismatches <= threshold 4
        assert res.triggered
        assert res.mismatch_count == 2
        assert res.replaced_index is None
        # after loosening, both old and new values match
        assert tcam.probe(0b0101) == 0
        assert tcam.probe(0b0000) == 0

    def test_far_value_replaces_lru(self):
        tcam = warmed(entries=2, seed_values=(0,))
        far = (1 << 40) - 1            # 40 mismatching bits
        res = tcam.lookup(far)
        assert res.triggered
        assert res.replaced_index is not None
        assert res.mismatch_count == 40
        assert tcam.probe(far) == 0

    def test_replacement_prefers_invalid_entries(self):
        tcam = TCAM(entries=3)
        tcam.lookup(0)
        res = tcam.lookup(MASK64)      # far: replaces, but 2 entries unused
        assert res.replaced_index is not None
        assert tcam.valid_entries == 2  # did not evict the valid filter
        assert tcam.probe(0) == 0

    def test_threshold_boundary_inclusive(self):
        tcam = warmed(threshold=2, seed_values=(0,))
        res = tcam.lookup(0b11)        # exactly 2 mismatches: loosen
        assert res.replaced_index is None
        res = tcam.lookup(0b11100)     # 3 mismatches: replace
        assert res.replaced_index is not None


class TestClustering:
    def test_similar_values_reinforce_one_filter(self):
        """The clustering insight: values differing in low bits share one
        filter, which learns those bits are changing and stops triggering."""
        tcam = TCAM(entries=8, loosen_threshold=4)
        stream = [0x1000 + (i % 4) for i in range(40)]
        triggers = sum(tcam.lookup(v).triggered for v in stream)
        late_triggers = sum(tcam.lookup(v).triggered for v in stream)
        assert tcam.valid_entries == 1     # all clustered into one entry
        assert late_triggers == 0          # fully learned
        assert triggers <= 4

    def test_distinct_neighborhoods_use_distinct_entries(self):
        # bases are pairwise >4 bits apart, beyond the loosen threshold
        tcam = TCAM(entries=8)
        for base in (0, 0xFF << 8, 0xFF << 24, 0xFF << 40):
            tcam.lookup(base)
        assert tcam.valid_entries == 4

    def test_lru_evicts_least_recent_neighborhood(self):
        tcam = TCAM(entries=2)
        a, b, c = 0xFF << 8, 0xFF << 24, 0xFF << 40
        tcam.lookup(a)
        tcam.lookup(b)
        tcam.lookup(a)                 # a most recent
        tcam.lookup(c)                 # evicts b
        assert tcam.probe(a) == 0
        assert tcam.probe(b) > 0


class TestAccounting:
    def test_lookup_and_trigger_counters(self):
        tcam = warmed(seed_values=(0,))
        tcam.lookup(0)
        tcam.lookup(MASK64)
        assert tcam.lookups == 3
        assert tcam.triggers == 1
        assert tcam.trigger_rate == pytest.approx(1 / 3)

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            TCAM(entries=0)

    def test_probe_has_no_side_effects(self):
        tcam = warmed(seed_values=(0,))
        before = tcam.lookups
        tcam.probe(MASK64)
        assert tcam.lookups == before


@settings(max_examples=50)
@given(st.lists(values, min_size=1, max_size=40))
def test_lookup_value_always_admitted_afterwards(stream):
    """Invariant: whatever the lookup decided (match/loosen/replace), the
    looked-up value is inside some filter's subspace immediately after."""
    tcam = TCAM(entries=4, loosen_threshold=4)
    for value in stream:
        tcam.lookup(value)
        assert tcam.probe(value) == 0


@settings(max_examples=50)
@given(st.lists(values, min_size=1, max_size=40))
def test_closest_index_always_valid(stream):
    tcam = TCAM(entries=4)
    for value in stream:
        res = tcam.lookup(value)
        assert 0 <= res.closest_index < 4
        assert res.mismatch_count == res.mismatch_mask.bit_count()
