"""Tests for the pipeline invariant sanitizer (repro.pipeline.invariants).

Two angles: clean runs stay clean (single-thread, SMT, with screening,
under the tandem classifier), and manufactured corruptions of each
structure are caught under the right invariant name. Corruptions are
direct state mutations — exactly the class of simulator bug the
sanitizer exists to surface before it skews a campaign.
"""

import pickle
import random

import pytest

from repro.core import FaultHoundUnit
from repro.isa import Instruction, Opcode, Program
from repro.obs.schema import validate_event
from repro.pipeline import (InvariantError, InvariantSanitizer, PipelineCore,
                            check_core)
from repro.pipeline.uops import OpState
from repro.workloads import random_program


def _chain_program(length=40):
    """A long dependent MUL chain: plenty of in-flight state mid-run."""
    instructions = [Instruction(Opcode.MOVI, rd=3, imm=3)]
    instructions += [Instruction(Opcode.MUL, rd=3, rs1=3, rs2=3)
                     for _ in range(length)]
    instructions += [Instruction(Opcode.ST, rs2=3, rs1=0, imm=0x40),
                     Instruction(Opcode.LD, rd=4, rs1=0, imm=0x40),
                     Instruction(Opcode.HALT)]
    return Program(instructions=instructions, name="chain")


def _midrun_core(cycles=30):
    """A core stepped into the middle of the chain program: non-empty
    ROB, issue queue, and executing list."""
    core = PipelineCore([_chain_program()])
    for _ in range(cycles):
        core.step()
    assert len(core.threads[0].rob) > 0
    return core


class TestCleanRuns:
    def test_single_thread_run_is_clean(self):
        core = PipelineCore([random_program(random.Random(7))])
        sanitizer = core.enable_sanitizer(every=1)
        core.run(max_cycles=200_000)
        assert core.all_halted
        assert sanitizer.checks_run > 0
        assert sanitizer.violations == []

    def test_smt_run_with_screening_is_clean(self):
        programs = [random_program(random.Random(11), name="t0"),
                    random_program(random.Random(12), name="t1")]
        core = PipelineCore(programs, screening=FaultHoundUnit())
        sanitizer = core.enable_sanitizer(every=1)
        core.run(max_cycles=400_000)
        assert core.all_halted
        assert sanitizer.violations == []

    def test_check_core_one_shot(self):
        assert check_core(_midrun_core()) == []


class TestZeroCostOff:
    def test_step_is_not_shadowed_by_default(self):
        core = PipelineCore([_chain_program()])
        assert "step" not in core.__dict__
        assert core._sanitizer is None

    def test_enable_shadows_instance_only(self):
        core = PipelineCore([_chain_program()])
        core.enable_sanitizer(every=1)
        assert "step" in core.__dict__
        # the class stays un-instrumented for everyone else
        assert PipelineCore.step is not core.step
        other = PipelineCore([_chain_program()])
        assert "step" not in other.__dict__

    def test_every_zero_is_explicit_check_only(self):
        core = PipelineCore([_chain_program()])
        sanitizer = core.enable_sanitizer(every=0)
        assert "step" not in core.__dict__
        core.step()
        assert sanitizer.checks_run == 0
        core.check_invariants()
        assert sanitizer.checks_run == 1

    def test_disable_restores_class_step(self):
        core = PipelineCore([_chain_program()])
        core.enable_sanitizer(every=1)
        core.disable_sanitizer()
        assert "step" not in core.__dict__
        assert core.check_invariants() == []

    def test_clone_drops_sanitizer(self):
        core = _midrun_core()
        core.enable_sanitizer(every=1)
        twin = core.clone()
        assert twin._sanitizer is None
        assert "step" not in twin.__dict__

    def test_pickle_preserves_armed_sanitizer(self):
        core = _midrun_core()
        core.enable_sanitizer(every=1)
        copy = pickle.loads(pickle.dumps(core))
        assert copy._sanitizer is not None
        assert "step" in copy.__dict__
        copy.run(max_cycles=200_000)
        assert copy.all_halted
        assert copy._sanitizer.violations == []


class TestDetection:
    """Each manufactured corruption is reported under its invariant."""

    def _names(self, core):
        return {v.invariant for v in check_core(core)}

    def test_rob_order_violation(self):
        core = _midrun_core()
        rob = core.threads[0].rob
        ops = list(rob)
        rob._ops.clear()
        rob._ops.extend([ops[1], ops[0]] + ops[2:])
        assert "rob-order" in self._names(core)

    def test_lsq_missing_from_rob(self):
        core = _midrun_core()
        thread = core.threads[0]
        # park a foreign (never-dispatched) copy of a memory op in the LSQ
        victim = next(op for op in thread.rob)
        clone = victim.clone()
        clone.uid = victim.uid + 10_000
        clone.inst = Instruction(Opcode.ST, rs2=3, rs1=0, imm=0)
        thread.lsq.push(clone)
        assert "lsq-residency" in self._names(core)

    def test_delay_buffer_flag_flip(self):
        core = _midrun_core()
        op = next((o for o in core.iq if not o.in_delay_buffer), None)
        assert op is not None
        op.in_delay_buffer = True
        assert "iq-coherence" in self._names(core)

    def test_executing_list_stale_entry(self):
        core = _midrun_core()
        waiting = next((o for o in core.iq if o.state is OpState.WAITING),
                       None)
        assert waiting is not None
        core._executing.append(waiting)
        assert "executing-list" in self._names(core)

    def test_freeing_live_tag_detected(self):
        core = _midrun_core()
        live_tag = core.threads[0].committed_rat.map[3]
        core.free_list.free(live_tag)
        assert "freelist-disjoint" in self._names(core)

    def test_double_free_detected(self):
        core = _midrun_core()
        dead_tag = core.free_list.allocate()
        core.free_list.free(dead_tag)
        core.free_list.free(dead_tag)
        assert "freelist-disjoint" in self._names(core)

    def test_ready_bit_corruption_detected(self):
        core = _midrun_core()
        pending = next(
            (op for t in core.threads for op in t.rob
             if op.phys_dest is not None
             and op.state in (OpState.WAITING, OpState.EXECUTING)), None)
        assert pending is not None
        core.prf.ready[pending.phys_dest] = True
        assert "prf-ready" in self._names(core)


class TestModes:
    def test_raise_mode_raises_with_details(self):
        core = _midrun_core()
        core.free_list.free(core.threads[0].committed_rat.map[3])
        sanitizer = core.enable_sanitizer(every=1)
        with pytest.raises(InvariantError) as exc_info:
            core.step()
        assert "freelist-disjoint" in str(exc_info.value)
        assert exc_info.value.violations
        assert sanitizer.violations  # recorded before raising

    def test_collect_mode_accumulates(self):
        core = _midrun_core()
        core.free_list.free(core.threads[0].committed_rat.map[3])
        sanitizer = core.enable_sanitizer(
            InvariantSanitizer(raise_on_violation=False), every=1)
        for _ in range(3):
            core.step()
        assert sanitizer.checks_run == 3
        assert any(v.invariant == "freelist-disjoint"
                   for v in sanitizer.violations)

    def test_rename_fault_relaxes_liveness_checks(self):
        core = _midrun_core()
        sanitizer = core.enable_sanitizer(every=1)
        assert not sanitizer.relax_rename
        core.inject_rat_bit(0, 3, 2)
        assert sanitizer.relax_rename
        # the corrupted mapping eventually frees a live tag at commit —
        # tolerated under relaxation; structural invariants stay armed
        core.run(max_cycles=200_000)
        assert all(v.invariant not in ("prf-ready", "freelist-disjoint")
                   for v in sanitizer.violations)

    def test_event_emission_matches_schema(self):
        class Sink:
            def __init__(self):
                self.events = []

            def emit(self, event_type, **fields):
                self.events.append(
                    dict(ts=0.0, type=event_type, pid=0, **fields))

        core = _midrun_core()
        core.free_list.free(core.threads[0].committed_rat.map[3])
        sink = Sink()
        sanitizer = InvariantSanitizer(raise_on_violation=False,
                                       events=sink)
        sanitizer.context["seed"] = 99
        sanitizer.check(core)
        assert sink.events
        for event in sink.events:
            assert event["type"] == "invariant"
            assert event["seed"] == 99
            assert validate_event(event) == []


class TestClassifierIntegration:
    def test_classifier_arms_golden_sanitizer(self):
        from repro.faults.classifier import TandemClassifier
        from repro.faults.injector import FaultInjector

        classifier = TandemClassifier(
            core_factory=lambda: PipelineCore(
                [random_program(random.Random(3))]),
            injector=FaultInjector(seed=1, num_phys_regs=64, num_threads=1),
            window_commits=20)
        golden = classifier.core_factory()
        classifier.run([], golden=golden)
        assert golden._sanitizer is not None
        assert "step" not in golden.__dict__  # capture-site mode only

    def test_classifier_sanitize_opt_out(self):
        from repro.faults.classifier import TandemClassifier
        from repro.faults.injector import FaultInjector

        classifier = TandemClassifier(
            core_factory=lambda: PipelineCore(
                [random_program(random.Random(3))]),
            injector=FaultInjector(seed=1, num_phys_regs=64, num_threads=1),
            window_commits=20,
            sanitize=False)
        golden = classifier.core_factory()
        classifier.run([], golden=golden)
        assert golden._sanitizer is None
