"""Harness tests: scheme registry, experiment context caching, figures."""

import pytest

from repro.config import FaultHoundConfig
from repro.core import FaultHoundUnit, NullScreeningUnit, PBFSUnit
from repro.harness import (ExperimentConfig, ExperimentContext, SCHEMES,
                           figures, scheme_unit)

QUICK = ExperimentConfig(benchmarks=("gamess", "bzip2"),
                         dynamic_target=2_500, num_faults=8,
                         warmup_commits=200, window_commits=80)


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(QUICK)


class TestSchemeRegistry:
    def test_all_figure_schemes_registered(self):
        for name in ("baseline", "pbfs", "pbfs-biased", "faulthound",
                     "fh-backend", "fh-be-no2level",
                     "fh-be-nocluster-no2level", "fh-be-full-rollback",
                     "fh-be-nolsq"):
            assert name in SCHEMES

    def test_factories_return_fresh_units(self):
        a = scheme_unit("faulthound")
        b = scheme_unit("faulthound")
        assert a is not b
        assert isinstance(a, FaultHoundUnit)

    def test_unit_kinds(self):
        assert isinstance(scheme_unit("baseline"), NullScreeningUnit)
        assert isinstance(scheme_unit("pbfs"), PBFSUnit)
        assert scheme_unit("pbfs-biased").config.biased

    def test_ablation_configs(self):
        assert scheme_unit("fh-backend").config.squash_detection is False
        assert scheme_unit("fh-be-nolsq").config.lsq_check is False
        assert scheme_unit("fh-be-nocluster-no2level").config.clustering \
            is False
        assert scheme_unit("fh-be-full-rollback").config \
            .full_rollback_on_trigger is True

    def test_unknown_scheme_raises(self):
        with pytest.raises(KeyError, match="unknown scheme"):
            scheme_unit("nonesuch")


class TestExperimentContext:
    def test_programs_cached(self, ctx):
        assert ctx.programs("gamess") is ctx.programs("gamess")
        assert len(ctx.programs("gamess")) == QUICK.smt_copies

    def test_fault_free_run_cached_and_sane(self, ctx):
        run = ctx.fault_free("gamess", "baseline")
        assert run is ctx.fault_free("gamess", "baseline")
        assert run.cycles > 0
        assert run.committed >= QUICK.dynamic_target
        assert run.fp_rate == 0.0
        assert run.energy.total_pj > 0

    def test_scheme_run_has_fp_rate(self, ctx):
        run = ctx.fault_free("gamess", "faulthound")
        assert 0.0 <= run.fp_rate < 0.5

    def test_campaign_cached(self, ctx):
        a = ctx.campaign("gamess")
        assert a is ctx.campaign("gamess")
        _, characterization = a
        assert characterization.applied_count() > 0

    def test_coverage_result(self, ctx):
        result = ctx.coverage("gamess", "faulthound")
        assert 0.0 <= result.coverage <= 1.0

    def test_srt_coverage_fixed_mode(self, ctx):
        assert ctx.srt_coverage("gamess") == QUICK.srt_fixed_coverage

    def test_quick_variant_shrinks(self):
        cfg = ExperimentConfig().quick()
        assert cfg.dynamic_target < ExperimentConfig().dynamic_target


class TestFigures:
    def test_table1_and_table2(self):
        t1 = figures.table1()
        t2 = figures.table2()
        assert len(t1["rows"]) == 14
        assert "Issue Queue size" in t2["rows"]
        assert "Table 2" in t2["text"]

    def test_fig6_structure(self, ctx):
        result = figures.fig6(ctx, max_instructions=4_000)
        assert set(result["fractions"]) == {"load_addr", "store_addr",
                                            "store_value"}
        assert all(len(v) == 64 for v in result["fractions"].values())

    def test_fig7_rows_complete(self, ctx):
        result = figures.fig7(ctx)
        assert set(result["rows"]) == {"gamess", "bzip2", "MEAN"}
        for row in result["rows"].values():
            assert row["masked"] + row["noisy"] + row["sdc"] \
                == pytest.approx(1.0)

    def test_fig9_includes_srt_column(self, ctx):
        result = figures.fig9(ctx, schemes=("faulthound",))
        assert "srt-iso" in result["rows"]["MEAN"]

    def test_fig10_energy_rows(self, ctx):
        result = figures.fig10(ctx, schemes=("faulthound",),
                               include_srt=False)
        assert "faulthound" in result["rows"]["MEAN"]
