"""Unit tests for the pipeline's building blocks."""

import pytest

from repro.config import HardwareConfig
from repro.errors import SimulationError
from repro.isa import Instruction, Opcode
from repro.isa.opcodes import OpClass
from repro.pipeline.branch import BranchPredictor
from repro.pipeline.func_units import FunctionalUnits, MEM_PORTS
from repro.pipeline.issue_queue import DelayBuffer, IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.regfile import FreeList, PhysicalRegisterFile
from repro.pipeline.rename import RenameTable
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.uops import MicroOp, OpState


def make_op(uid, opcode=Opcode.ADD, thread=0, **inst_kwargs):
    inst = Instruction(opcode, **inst_kwargs)
    return MicroOp(uid, thread, pc=uid, inst=inst,
                   cycle_fetched=0, dispatch_ready_at=0)


class TestMicroOp:
    def test_initial_state(self):
        op = make_op(1)
        assert op.state is OpState.FETCHED
        assert not op.completed

    def test_mark_for_replay_resets_execution_state(self):
        op = make_op(1, Opcode.LD, rd=1, rs1=2)
        op.state = OpState.COMPLETED
        op.result = 42
        op.eff_addr = 0x100
        op.in_delay_buffer = True
        op.mark_for_replay()
        assert op.state is OpState.WAITING
        assert op.replay_marked
        assert op.result is None and op.eff_addr is None
        assert not op.in_delay_buffer

    def test_writes_reg_excludes_r0(self):
        assert make_op(1, Opcode.ADD, rd=5).writes_reg
        assert not make_op(1, Opcode.ADD, rd=0).writes_reg
        assert not make_op(1, Opcode.ST, rs1=1, rs2=2).writes_reg


class TestPhysicalRegisterFile:
    def test_write_sets_ready(self):
        prf = PhysicalRegisterFile(8)
        prf.mark_pending(3)
        assert not prf.is_ready(3)
        prf.write(3, 99)
        assert prf.is_ready(3)
        assert prf.read(3) == 99

    def test_values_masked(self):
        prf = PhysicalRegisterFile(4)
        prf.write(0, -1)
        assert prf.read(0) == (1 << 64) - 1

    def test_flip_bit(self):
        prf = PhysicalRegisterFile(4)
        prf.write(1, 0b1000)
        assert prf.flip_bit(1, 3) == 0
        with pytest.raises(SimulationError):
            prf.flip_bit(1, 64)

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            PhysicalRegisterFile(0)


class TestFreeList:
    def test_fifo_allocation(self):
        fl = FreeList([5, 6, 7])
        assert fl.allocate() == 5
        fl.free(9)
        assert fl.allocate() == 6
        assert len(fl) == 2

    def test_exhaustion_returns_none(self):
        fl = FreeList([1])
        fl.allocate()
        assert fl.allocate() is None
        assert fl.empty

    def test_double_free_tolerated(self):
        # rename faults legitimately cause wrong frees (DESIGN.md §4)
        fl = FreeList([])
        fl.free(3)
        fl.free(3)
        assert fl.allocate() == 3
        assert fl.allocate() == 3


class TestRenameTable:
    def test_mapping_round_trip(self):
        table = RenameTable(list(range(32)), 64)
        table.set(5, 40)
        assert table.get(5) == 40

    def test_copy_from(self):
        a = RenameTable(list(range(32)), 64)
        b = RenameTable(list(range(32, 64)), 64)
        a.copy_from(b)
        assert a.get(0) == 32

    def test_flip_bit_stays_in_range(self):
        table = RenameTable(list(range(32)), num_phys=160)
        for bit in range(8):
            table.flip_bit(3, bit)
            assert 0 <= table.get(3) < 160

    def test_rejects_wrong_size(self):
        with pytest.raises(SimulationError):
            RenameTable([0] * 31, 64)


class TestReorderBuffer:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        ops = [make_op(i) for i in range(3)]
        for op in ops:
            rob.push(op)
        assert rob.head() is ops[0]
        assert rob.pop_head() is ops[0]
        assert len(rob) == 2

    def test_full_and_empty(self):
        rob = ReorderBuffer(2)
        assert rob.empty
        rob.push(make_op(1))
        rob.push(make_op(2))
        assert rob.full

    def test_drain_younger_than_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        for i in range(1, 6):
            rob.push(make_op(i))
        drained = rob.drain_younger_than(2)
        assert [op.uid for op in drained] == [5, 4, 3]
        assert len(rob) == 2

    def test_drain_all(self):
        rob = ReorderBuffer(4)
        rob.push(make_op(1))
        assert len(rob.drain_all()) == 1
        assert rob.empty


class TestDelayBuffer:
    def test_push_until_overflow(self):
        buf = DelayBuffer(2)
        a, b, c = make_op(1), make_op(2), make_op(3)
        assert buf.push(a) is None
        assert buf.push(b) is None
        evicted = buf.push(c)
        assert evicted is a
        assert not a.in_delay_buffer
        assert len(buf) == 2

    def test_predecessors_of(self):
        buf = DelayBuffer(4)
        for uid in (3, 7, 9):
            buf.push(make_op(uid))
        preds = buf.predecessors_of(8)
        assert [op.uid for op in preds] == [3, 7]

    def test_squash_clears_flags(self):
        buf = DelayBuffer(4)
        op = make_op(1)
        buf.push(op)
        dropped = buf.squash()
        assert dropped == [op]
        assert not op.in_delay_buffer
        assert buf.squashes == 1

    def test_zero_capacity_evicts_immediately(self):
        buf = DelayBuffer(0)
        op = make_op(1)
        assert buf.push(op) is op


class TestIssueQueue:
    def make_iq(self, capacity=4, delay=2):
        return IssueQueue(capacity, delay)

    def test_insert_until_full(self):
        iq = self.make_iq(capacity=2)
        assert iq.insert(make_op(1))
        assert iq.insert(make_op(2))
        assert not iq.insert(make_op(3))  # full, nothing evictable

    def test_completed_op_evicted_for_newcomer(self):
        iq = self.make_iq(capacity=2, delay=2)
        a, b = make_op(1), make_op(2)
        iq.insert(a)
        iq.insert(b)
        a.state = OpState.COMPLETED
        iq.on_complete(a)           # a lingers in the delay buffer
        c = make_op(3)
        assert iq.insert(c)          # evicts via delay-buffer squash
        assert a not in iq
        assert iq.delay_buffer.squashes == 1

    def test_waiting_ops_dispatch_ordered(self):
        # dispatch order == age order per thread; the queue preserves
        # insertion order rather than re-sorting (hot path)
        iq = self.make_iq(capacity=8)
        for uid in (5, 2, 9):
            iq.insert(make_op(uid))
        assert [op.uid for op in iq.waiting_ops()] == [5, 2, 9]
        ops = list(iq)
        ops[0].state = OpState.EXECUTING
        assert [op.uid for op in iq.waiting_ops()] == [2, 9]

    def test_mark_predecessors_for_replay(self):
        iq = self.make_iq(capacity=8, delay=4)
        ops = [make_op(uid) for uid in (1, 2, 3)]
        for op in ops:
            iq.insert(op)
            op.state = OpState.COMPLETED
            iq.on_complete(op)
        marked = iq.mark_predecessors_for_replay(trigger_uid=3)
        assert [op.uid for op in marked] == [1, 2]
        assert all(op.state is OpState.WAITING for op in marked)
        assert all(op.replay_marked for op in marked)

    def test_on_complete_aging_vacates_slot(self):
        iq = self.make_iq(capacity=8, delay=1)
        a, b = make_op(1), make_op(2)
        iq.insert(a)
        iq.insert(b)
        for op in (a, b):
            op.state = OpState.COMPLETED
            iq.on_complete(op)
        assert a not in iq      # aged out when b completed
        assert b in iq


class TestLoadStoreQueue:
    def test_ordering_helpers(self):
        lsq = LoadStoreQueue(8)
        store = make_op(1, Opcode.ST, rs1=1, rs2=2)
        load = make_op(2, Opcode.LD, rd=3, rs1=1)
        lsq.push(store)
        lsq.push(load)
        assert not lsq.older_stores_resolved(load)
        store.eff_addr = 0x100
        assert lsq.older_stores_resolved(load)

    def test_forwarding_newest_older_store(self):
        lsq = LoadStoreQueue(8)
        s1 = make_op(1, Opcode.ST, rs1=1, rs2=2)
        s2 = make_op(2, Opcode.ST, rs1=1, rs2=3)
        load = make_op(3, Opcode.LD, rd=4, rs1=1)
        for op in (s1, s2, load):
            lsq.push(op)
        s1.eff_addr, s1.store_value = 0x100, 11
        s2.eff_addr, s2.store_value = 0x100, 22
        hit, value, uid = lsq.forward_value(load, 0x100)
        assert hit and value == 22 and uid == 2

    def test_no_forward_from_younger_store(self):
        lsq = LoadStoreQueue(8)
        load = make_op(1, Opcode.LD, rd=4, rs1=1)
        store = make_op(2, Opcode.ST, rs1=1, rs2=2)
        lsq.push(load)
        lsq.push(store)
        store.eff_addr, store.store_value = 0x100, 5
        hit, _, _ = lsq.forward_value(load, 0x100)
        assert not hit

    def test_violating_loads(self):
        lsq = LoadStoreQueue(8)
        store = make_op(1, Opcode.ST, rs1=1, rs2=2)
        load = make_op(2, Opcode.LD, rd=4, rs1=1)
        lsq.push(store)
        lsq.push(load)
        load.state = OpState.COMPLETED
        load.eff_addr = 0x100
        store.eff_addr = 0x100
        assert lsq.violating_loads(store) == [load]
        # a load that forwarded from a younger store is safe
        load.forwarded_from = 5
        assert lsq.violating_loads(store) == []

    def test_remove_younger_than(self):
        lsq = LoadStoreQueue(8)
        for uid in (1, 2, 3):
            lsq.push(make_op(uid, Opcode.LD, rd=1, rs1=1))
        lsq.remove_younger_than(1)
        assert len(lsq) == 1

    def test_executed_entries(self):
        lsq = LoadStoreQueue(8)
        a = make_op(1, Opcode.LD, rd=1, rs1=1)
        b = make_op(2, Opcode.LD, rd=2, rs1=1)
        lsq.push(a)
        lsq.push(b)
        a.eff_addr = 0x40
        assert lsq.executed_entries() == [a]


class TestBranchPredictor:
    def test_learns_taken_bias(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.update(0, 100, taken=True, mispredicted=False)
        assert predictor.predict(0, 100) is True

    def test_learns_not_taken_bias(self):
        predictor = BranchPredictor()
        for _ in range(4):
            predictor.update(0, 100, taken=False, mispredicted=False)
        assert predictor.predict(0, 100) is False

    def test_misprediction_rate(self):
        predictor = BranchPredictor()
        predictor.predict(0, 1)
        predictor.predict(0, 1)
        predictor.update(0, 1, True, mispredicted=True)
        assert predictor.misprediction_rate == pytest.approx(0.5)

    def test_ideal_mode_uses_hint(self):
        predictor = BranchPredictor(ideal=True)
        assert predictor.predict(0, 1, actual_hint=False) is False
        assert predictor.predict(0, 1, actual_hint=True) is True


class TestFunctionalUnits:
    def test_alu_budget(self):
        fus = FunctionalUnits(HardwareConfig())
        claims = sum(fus.try_claim(OpClass.ALU) for _ in range(10))
        assert claims == 4

    def test_mem_ports_shared_by_loads_and_stores(self):
        fus = FunctionalUnits(HardwareConfig())
        assert fus.try_claim(OpClass.LOAD)
        assert fus.try_claim(OpClass.STORE)
        assert not fus.try_claim(OpClass.LOAD)
        assert MEM_PORTS == 2

    def test_new_cycle_replenishes(self):
        fus = FunctionalUnits(HardwareConfig())
        for _ in range(4):
            fus.try_claim(OpClass.ALU)
        fus.new_cycle()
        assert fus.try_claim(OpClass.ALU)

    def test_branches_share_alu_budget(self):
        fus = FunctionalUnits(HardwareConfig())
        for _ in range(4):
            assert fus.try_claim(OpClass.BRANCH)
        assert not fus.try_claim(OpClass.ALU)
