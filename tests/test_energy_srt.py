"""Energy-model and SRT-baseline tests."""

import pytest

from repro.config import HardwareConfig, PBFSConfig
from repro.core import FaultHoundUnit, PBFSUnit
from repro.energy import (DEFAULT_CONSTANTS, EnergyModel, sram_access_energy,
                          tcam_access_energy)
from repro.errors import ConfigurationError
from repro.pipeline import PipelineCore
from repro.redundancy import dynamic_length, srt_iso_core
from repro.workloads import PROFILES, build_program

HW = HardwareConfig()


def run_core(program, screening=None, **kwargs):
    core = PipelineCore([program], hw=HW, screening=screening, **kwargs)
    core.run(max_cycles=2_000_000)
    assert core.all_halted
    return core


@pytest.fixture(scope="module")
def small_program():
    return build_program(PROFILES["gamess"], 3000)


class TestCacti:
    def test_pbfs_table_costs_like_an_l1_access(self):
        # Section 2.2: the 32KB PBFS table's energy is comparable to L1 D.
        pbfs = sram_access_energy(2048, 128)
        assert 15 <= pbfs <= 40

    def test_faulthound_tcam_much_cheaper_than_pbfs_table(self):
        tcam = tcam_access_energy(32, 128)
        pbfs = sram_access_energy(2048, 128)
        assert tcam < pbfs / 2

    def test_tcam_scales_with_entries(self):
        assert tcam_access_energy(64, 128) > tcam_access_energy(16, 128)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            sram_access_energy(0, 64)
        with pytest.raises(ValueError):
            tcam_access_energy(16, -1)


class TestEnergyModel:
    def test_baseline_breakdown_positive(self, small_program):
        core = run_core(small_program)
        breakdown = EnergyModel().compute(core)
        assert breakdown.total_pj > 0
        assert breakdown.pipeline_pj > 0
        assert breakdown.leakage_pj == core.stats.cycles \
            * DEFAULT_CONSTANTS.leakage_per_cycle_pj
        assert breakdown.screening_pj == 0.0

    def test_overhead_vs_self_is_zero(self, small_program):
        core = run_core(small_program)
        b = EnergyModel().compute(core)
        assert b.overhead_vs(b) == pytest.approx(0.0)

    def test_faulthound_adds_screening_energy(self, small_program):
        baseline = EnergyModel().compute(run_core(small_program))
        fh = EnergyModel().compute(
            run_core(small_program, FaultHoundUnit()))
        assert fh.screening_pj > 0
        assert fh.overhead_vs(baseline) > 0

    def test_pbfs_screening_energy_exceeds_faulthound(self, small_program):
        fh_core = run_core(small_program, FaultHoundUnit())
        pbfs_core = run_core(small_program, PBFSUnit())
        fh = EnergyModel().compute(fh_core)
        pbfs = EnergyModel().compute(pbfs_core)
        # Similar lookup counts, but PBFS pays the 32KB-table price.
        assert pbfs.screening_pj > fh.screening_pj

    def test_as_dict_totals(self, small_program):
        breakdown = EnergyModel().compute(run_core(small_program))
        d = breakdown.as_dict()
        parts = sum(v for k, v in d.items() if k != "total_pj")
        assert parts == pytest.approx(d["total_pj"])


class TestSRT:
    def test_dynamic_length_matches_interpreter(self, small_program):
        assert dynamic_length(small_program) >= 3000

    def test_rejects_bad_coverage(self, small_program):
        with pytest.raises(ConfigurationError):
            srt_iso_core([small_program], coverage=1.5)

    def test_srt_doubles_contexts_and_commits(self, small_program):
        length = dynamic_length(small_program)
        core = srt_iso_core([small_program], hw=HW, coverage=1.0,
                            lengths=[length])
        assert len(core.threads) == 2
        core.run(max_cycles=2_000_000)
        assert core.all_halted
        # trailing copy re-commits (almost) the whole program
        assert core.threads[1].committed_count >= length - 1

    def test_srt_iso_partial_redundancy(self, small_program):
        length = dynamic_length(small_program)
        core = srt_iso_core([small_program], hw=HW, coverage=0.5,
                            lengths=[length])
        core.run(max_cycles=2_000_000)
        trailing = core.threads[1].committed_count
        assert trailing == pytest.approx(0.5 * length, rel=0.05)

    def test_srt_slower_and_hungrier_than_baseline(self, small_program):
        baseline = run_core(small_program)
        length = dynamic_length(small_program)
        srt = srt_iso_core([small_program], hw=HW, coverage=1.0,
                           lengths=[length])
        srt.run(max_cycles=2_000_000)
        assert srt.all_halted
        base_e = EnergyModel().compute(baseline)
        srt_e = EnergyModel().compute(srt)
        assert srt.stats.cycles >= baseline.stats.cycles
        assert srt_e.overhead_vs(base_e) > 0.2  # redundancy is expensive

    def test_trailing_thread_never_misses_or_mispredicts(self, small_program):
        core = srt_iso_core([small_program], hw=HW, coverage=0.3,
                            lengths=[dynamic_length(small_program)])
        core.run(max_cycles=2_000_000)
        assert core.predictors[1].mispredictions == 0
        assert core._ideal_hierarchy.l1.stats.miss_rate == 0.0
