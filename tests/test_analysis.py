"""Tests for the analysis utilities (locality, metrics, tables)."""

import pytest

from repro.analysis import (arithmetic_mean, bit_change_fractions,
                            collect_mem_streams, format_series,
                            format_table, fp_rate, geo_mean, perf_overhead)
from repro.analysis.locality import mean_bits_changed
from repro.core import FaultHoundUnit
from repro.core.actions import CheckAction, CheckKind
from repro.isa import assemble


class TestBitChangeFractions:
    def test_constant_stream_never_changes(self):
        assert bit_change_fractions([5, 5, 5]) == [0.0] * 64

    def test_alternating_bit(self):
        fractions = bit_change_fractions([0, 1, 0, 1])
        assert fractions[0] == 1.0
        assert fractions[1] == 0.0

    def test_counter_changes_low_bits_most(self):
        fractions = bit_change_fractions(list(range(1000)))
        assert fractions[0] == 1.0
        assert fractions[0] > fractions[1] > fractions[2]
        assert fractions[40] == 0.0

    def test_short_stream_is_all_zero(self):
        assert bit_change_fractions([7]) == [0.0] * 64

    def test_mean_bits_changed(self):
        assert mean_bits_changed([0, 0b111, 0b111]) == pytest.approx(1.5)
        assert mean_bits_changed([42]) == 0.0


class TestCollectStreams:
    def test_streams_from_program(self):
        program = assemble("""
            movi r1, 0x100
            movi r2, 9
            st   r2, 0(r1)
            ld   r3, 0(r1)
            halt
        """)
        streams = collect_mem_streams([program])
        assert streams["load_addr"] == [0x100]
        assert streams["store_addr"] == [0x100]
        assert streams["store_value"] == [9]


class TestMetrics:
    def test_perf_overhead(self):
        assert perf_overhead(110, 100) == pytest.approx(0.10)
        assert perf_overhead(100, 0) == 0.0

    def test_fp_rate_counts_recovery_actions(self):
        unit = FaultHoundUnit()
        unit.action_counts[CheckAction.REPLAY] = 3
        unit.action_counts[CheckAction.SQUASH] = 1
        unit.action_counts[CheckAction.SINGLETON] = 1
        unit.action_counts[CheckAction.SUPPRESSED] = 100  # not counted
        assert fp_rate(unit, 1000) == pytest.approx(0.005)
        assert fp_rate(unit, 0) == 0.0

    def test_means(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0
        assert geo_mean([0.0, 0.0]) == pytest.approx(0.0)
        assert 0.0 < geo_mean([0.1, 0.2]) < 0.2
        assert geo_mean([]) == 0.0


class TestTables:
    def test_format_table_alignment_and_percent(self):
        rows = {"alpha": {"x": 0.5, "y": 0.25}, "beta": {"x": 1.0, "y": 0.0}}
        text = format_table("T", rows, percent=True)
        assert "T" in text
        assert "50.0%" in text and "25.0%" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title, rule, header, two data rows
        assert "alpha" in text and "beta" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table("T", {})

    def test_format_table_string_cells(self):
        text = format_table("T", {"row": {"col": "value"}})
        assert "value" in text

    def test_format_series(self):
        text = format_series("S", {"scheme": [0.1, 0.2]},
                             x_labels=["a", "b"], percent=True)
        assert "10.0%" in text and "20.0%" in text
