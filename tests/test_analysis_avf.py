"""AVF estimator tests."""

import pytest

from repro.analysis.avf import AVFEstimator, AVFReport
from repro.faults.model import FaultSite
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs


@pytest.fixture(scope="module")
def report():
    programs = build_smt_programs(PROFILES["bzip2"], 4000)
    core = PipelineCore(programs)
    estimator = AVFEstimator(core)
    return estimator.run(cycles=30_000)


def test_report_fractions_in_range(report):
    assert report.samples > 100
    for value in (report.regfile, report.lsq, report.rename):
        assert 0.0 <= value <= 1.0


def test_regfile_avf_reflects_mapped_share(report):
    # 64 committed mappings of 224 registers is the floor; in-flight
    # destinations push it higher but nowhere near 1.0
    assert 0.25 <= report.regfile <= 0.9


def test_weighted_avf_uses_proportions(report):
    weighted = report.weighted()
    assert 0.0 < weighted < 1.0
    custom = report.weighted({FaultSite.REGFILE: 1.0,
                              FaultSite.LSQ: 0.0,
                              FaultSite.RENAME: 0.0})
    assert custom == pytest.approx(report.regfile)


def test_predicted_masked_floor_consistent(report):
    assert report.predicted_masked_floor() \
        == pytest.approx(1.0 - report.weighted())


def test_avf_is_an_upper_bound_on_unmasked_rate(report):
    """The campaign's measured unmasked fraction (SDC+noisy, ~10%) must
    not exceed the occupancy AVF (which over-approximates ACE-ness)."""
    # measured in the shipped campaigns: unmasked ~0.07-0.15
    assert report.weighted() > 0.10


def test_empty_report():
    programs = build_smt_programs(PROFILES["gamess"], 500)
    estimator = AVFEstimator(PipelineCore(programs))
    assert estimator.report() == AVFReport()


def test_as_dict_keys(report):
    assert set(report.as_dict()) == {"regfile", "lsq", "rename", "weighted"}
