"""Tests for the statistics helpers and ASCII chart renderers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.charts import (bar_chart, grouped_bar_chart,
                                   log_sparkline, sparkline)
from repro.analysis.stats import (Proportion, intervals_overlap,
                                  mean_and_stderr, proportion,
                                  wilson_interval)


class TestWilson:
    def test_half_successes(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert high - low < 0.25

    def test_zero_and_full(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0 and 0 < high < 0.3
        low, high = wilson_interval(20, 20)
        assert 0.7 < low < 1.0 and high == 1.0

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    @given(st.integers(0, 200), st.integers(0, 200))
    def test_interval_always_contains_point(self, a, b):
        successes, trials = min(a, b), max(a, b)
        if trials == 0:
            return
        low, high = wilson_interval(successes, trials)
        assert 0.0 <= low <= successes / trials <= high <= 1.0

    @given(st.integers(1, 50))
    def test_more_trials_tighter_interval(self, successes):
        small = proportion(successes, 2 * successes)
        large = proportion(10 * successes, 20 * successes)
        assert large.half_width < small.half_width

    def test_proportion_str(self):
        p = proportion(3, 10)
        assert "30.0%" in str(p)

    def test_intervals_overlap(self):
        a = proportion(5, 10)
        b = proportion(6, 10)
        c = proportion(99, 100)
        assert intervals_overlap(a, b)
        assert not intervals_overlap(a, c)


class TestMeanStderr:
    def test_basic(self):
        mean, stderr = mean_and_stderr([1.0, 2.0, 3.0])
        assert mean == 2.0
        assert stderr == pytest.approx((1.0 / 3) ** 0.5)

    def test_degenerate(self):
        assert mean_and_stderr([]) == (0.0, 0.0)
        assert mean_and_stderr([5.0]) == (5.0, 0.0)


class TestCharts:
    def test_bar_chart_contains_labels_and_bars(self):
        text = bar_chart("T", {"fh": 0.10, "pbfs": 0.97})
        assert "fh" in text and "pbfs" in text
        assert "█" in text
        # the bigger value gets the longer bar
        fh_line = next(l for l in text.splitlines() if "fh" in l)
        pbfs_line = next(l for l in text.splitlines() if "pbfs" in l)
        assert pbfs_line.count("█") > fh_line.count("█")

    def test_bar_chart_log_scale_compresses(self):
        rows = {"tiny": 0.001, "huge": 1.0}
        linear = bar_chart("T", rows)
        log = bar_chart("T", rows, log_scale=True)
        tiny_linear = next(l for l in linear.splitlines() if "tiny" in l)
        tiny_log = next(l for l in log.splitlines() if "tiny" in l)
        assert tiny_log.count("█") > tiny_linear.count("█")
        assert "log scale" in log

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart("T", {})

    def test_grouped_chart_has_sections(self):
        text = grouped_bar_chart("T", {"bench1": {"a": 0.5},
                                       "bench2": {"a": 0.7}})
        assert "bench1:" in text and "bench2:" in text

    def test_sparkline_length_and_profile(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "█"

    def test_sparkline_empty_and_flat(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "  "

    def test_log_sparkline_shows_small_values(self):
        plain = sparkline([0.001, 1.0])
        log = log_sparkline([0.001, 1.0])
        assert plain[0] == " "
        assert log[0] != " "
