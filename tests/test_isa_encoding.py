"""Binary encoding round-trip tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, assemble
from repro.isa.encoding import (EncodingError, MAGIC, decode_instruction,
                                decode_program, encode_instruction,
                                encode_program)

from .program_gen import random_program

regs = st.integers(0, 31)
imms = st.integers(-(1 << 40), (1 << 40) - 1)


def instructions():
    return st.builds(Instruction,
                     opcode=st.sampled_from(list(Opcode)),
                     rd=regs, rs1=regs, rs2=regs, imm=imms)


class TestInstructionCodec:
    @settings(max_examples=200)
    @given(instructions())
    def test_round_trip(self, inst):
        assert decode_instruction(encode_instruction(inst)) == inst

    def test_word_is_64_bits(self):
        word = encode_instruction(Instruction(Opcode.ADD, rd=31, rs1=31,
                                              rs2=31, imm=-1))
        assert 0 <= word < (1 << 64)

    def test_negative_immediate(self):
        inst = Instruction(Opcode.ADDI, rd=1, rs1=2, imm=-8)
        assert decode_instruction(encode_instruction(inst)).imm == -8

    def test_rejects_oversized_immediate(self):
        with pytest.raises(EncodingError):
            encode_instruction(Instruction(Opcode.MOVI, rd=1, imm=1 << 45))

    def test_rejects_unknown_opcode_id(self):
        with pytest.raises(EncodingError, match="unknown opcode"):
            decode_instruction(0xFF << 56)

    def test_rejects_non_64_bit(self):
        with pytest.raises(EncodingError):
            decode_instruction(1 << 64)


class TestProgramCodec:
    def test_round_trip_assembled_program(self):
        program = assemble("""
            .reg r5 123
            .word 0x100 42
            movi r1, 7
            ld   r2, 0(r1)
            beq  r1, r2, 3
            halt
        """, name="codec-test")
        blob = encode_program(program)
        back = decode_program(blob)
        assert back.instructions == program.instructions
        assert back.initial_regs == program.initial_regs
        assert back.initial_memory == program.initial_memory
        assert back.name == "codec-test"

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_round_trip_random_programs(self, seed):
        program = random_program(random.Random(seed), body_len=15)
        assert decode_program(encode_program(program)).instructions \
            == program.instructions

    def test_round_trip_workload_program(self):
        from repro.workloads import PROFILES, build_program
        program = build_program(PROFILES["mcf"], 2000)
        back = decode_program(encode_program(program))
        assert back.instructions == program.instructions
        assert back.initial_memory == program.initial_memory

    def test_magic_checked(self):
        with pytest.raises(EncodingError, match="magic"):
            decode_program(b"JUNK" + b"\x00" * 20)

    def test_version_checked(self):
        blob = bytearray(encode_program(assemble("halt")))
        blob[4] = 99
        with pytest.raises(EncodingError, match="version"):
            decode_program(bytes(blob))

    def test_trailing_bytes_rejected(self):
        blob = encode_program(assemble("halt")) + b"\x00"
        with pytest.raises(EncodingError, match="trailing"):
            decode_program(blob)

    def test_decoded_program_executes_identically(self):
        from repro.isa.interpreter import run_program
        program = assemble("""
            movi r1, 10
            loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        back = decode_program(encode_program(program))
        assert run_program(back).snapshot() == run_program(program).snapshot()

    def test_magic_constant(self):
        assert encode_program(assemble("halt")).startswith(MAGIC)
