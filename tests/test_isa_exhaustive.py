"""Exhaustive small-program equivalence sweep.

Enumerates every short program over a representative opcode subset and
checks the out-of-order pipeline against the golden interpreter. This
complements the random differential tests with systematic coverage of
operand shapes and hazard patterns (RAW/WAW/WAR on the same registers,
store-to-load pairs, branches around single instructions).
"""

import itertools

import pytest

from repro.isa import Instruction, Opcode, Program
from repro.isa.interpreter import Interpreter
from repro.pipeline import PipelineCore

# a compact operand universe that still exercises every hazard class
CANDIDATES = [
    Instruction(Opcode.MOVI, rd=1, imm=7),
    Instruction(Opcode.MOVI, rd=2, imm=0x100),
    Instruction(Opcode.ADD, rd=1, rs1=1, rs2=2),
    Instruction(Opcode.SUB, rd=2, rs1=2, rs2=1),
    Instruction(Opcode.MUL, rd=3, rs1=1, rs2=2),
    Instruction(Opcode.SLLI, rd=1, rs1=1, imm=3),
    Instruction(Opcode.LD, rd=3, rs1=2, imm=0),
    Instruction(Opcode.ST, rs2=1, rs1=2, imm=0),
    Instruction(Opcode.ST, rs2=3, rs1=2, imm=8),
]


def run_both(instructions):
    program = Program(instructions=list(instructions)
                      + [Instruction(Opcode.HALT)],
                      initial_regs={2: 0x100},
                      initial_memory={0x100: 11, 0x108: 22})
    interp = Interpreter(program)
    interp.run(max_instructions=10_000)
    core = PipelineCore([program])
    core.run(max_cycles=50_000)
    assert core.all_halted
    return (core.threads[0].arch_state_snapshot(core.prf),
            interp.state.snapshot())


@pytest.mark.parametrize("pair", list(itertools.product(CANDIDATES,
                                                        repeat=2)),
                         ids=lambda p: f"{p[0]}|{p[1]}")
def test_all_instruction_pairs(pair):
    got, expected = run_both(pair)
    assert got == expected


@pytest.mark.parametrize("middle", CANDIDATES,
                         ids=lambda i: str(i))
def test_branch_skipping_each_instruction(middle):
    """A taken and a not-taken branch around every candidate."""
    for rs in (0, 1):  # r0==0 -> beq taken; r1 nonzero after movi
        instructions = [
            Instruction(Opcode.MOVI, rd=1, imm=1),
            Instruction(Opcode.BEQ, rs1=rs, rs2=0, imm=3),
            middle,
        ]
        got, expected = run_both(instructions)
        assert got == expected


def test_dense_store_load_chains():
    """Every ordering of two stores and two loads to overlapping slots."""
    ops = [
        Instruction(Opcode.ST, rs2=1, rs1=2, imm=0),
        Instruction(Opcode.ST, rs2=3, rs1=2, imm=0),
        Instruction(Opcode.LD, rd=4, rs1=2, imm=0),
        Instruction(Opcode.LD, rd=5, rs1=2, imm=8),
    ]
    prelude = [Instruction(Opcode.MOVI, rd=1, imm=5),
               Instruction(Opcode.MOVI, rd=3, imm=9)]
    for order in itertools.permutations(ops):
        got, expected = run_both(prelude + list(order))
        assert got == expected
