"""Coverage for the smaller public API surfaces."""

import pytest

from repro.config import FaultHoundConfig, PBFSConfig
from repro.core import FaultHoundUnit, TCAM
from repro.energy import EnergyModel
from repro.errors import ConfigurationError
from repro.isa import Instruction, Opcode, assemble
from repro.isa.opcodes import (OpClass, has_dest, is_branch,
                               is_conditional_branch, op_class, op_latency,
                               reads_two_regs)
from repro.pipeline import PipelineCore


class TestOpcodeHelpers:
    def test_class_assignments(self):
        assert op_class(Opcode.ADD) is OpClass.ALU
        assert op_class(Opcode.MUL) is OpClass.MUL
        assert op_class(Opcode.FADD) is OpClass.FPU
        assert op_class(Opcode.LD) is OpClass.LOAD
        assert op_class(Opcode.ST) is OpClass.STORE
        assert op_class(Opcode.BEQ) is OpClass.BRANCH
        assert op_class(Opcode.HALT) is OpClass.OTHER

    def test_latencies(self):
        assert op_latency(Opcode.ADD) == 1
        assert op_latency(Opcode.MUL) == 4
        assert op_latency(Opcode.FMUL) == 5

    def test_branch_predicates(self):
        assert is_branch(Opcode.JMP)
        assert not is_conditional_branch(Opcode.JMP)
        assert is_conditional_branch(Opcode.BLT)
        assert not is_branch(Opcode.ADD)

    def test_dest_and_source_shapes(self):
        assert has_dest(Opcode.LD)
        assert not has_dest(Opcode.ST)
        assert not has_dest(Opcode.BEQ)
        assert reads_two_regs(Opcode.ST)
        assert not reads_two_regs(Opcode.ADDI)

    def test_instruction_source_regs(self):
        assert Instruction(Opcode.MOVI, rd=1, imm=5).source_regs() == ()
        assert Instruction(Opcode.LD, rd=1, rs1=2).source_regs() == (2,)
        assert Instruction(Opcode.ST, rs1=2, rs2=3).source_regs() == (2, 3)
        assert Instruction(Opcode.JMP, imm=0).source_regs() == ()

    def test_instruction_rejects_bad_registers(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, rd=32)


class TestProgramHelpers:
    def test_static_counts(self):
        program = assemble("""
            ld r1, 0(r2)
            st r1, 8(r2)
            ld r3, 16(r2)
            halt
        """)
        assert program.static_loads == 2
        assert program.static_stores == 1

    def test_ensure_halts_appends_once(self):
        program = assemble("nop\nnop")
        halted = program.ensure_halts()
        assert halted.instructions[-1].opcode is Opcode.HALT
        assert halted.ensure_halts() is halted

    def test_fetch_bounds(self):
        program = assemble("nop\nhalt")
        assert program.fetch(0).opcode is Opcode.NOP
        assert program.fetch(5) is None
        assert program.fetch(-1) is None

    def test_len_and_iter(self):
        program = assemble("nop\nnop\nhalt")
        assert len(program) == 3
        assert len(list(program)) == 3

    def test_rejects_empty(self):
        from repro.isa import Program
        with pytest.raises(ValueError):
            Program(instructions=[])


class TestTCAMExtras:
    def test_trigger_rate_and_flash_clear(self):
        tcam = TCAM(entries=2)
        tcam.lookup(0)
        tcam.lookup(0xFF << 20)          # replace -> trigger
        assert tcam.trigger_rate == pytest.approx(0.5)
        tcam.flash_clear()               # counters cleared, values retained
        assert tcam.valid_entries == 2

    def test_len(self):
        assert len(TCAM(entries=16)) == 16


class TestPBFSConfigVariants:
    def test_counter_resolution(self):
        assert PBFSConfig().counter == "sticky"
        assert PBFSConfig(biased=True).counter == "biased"
        assert PBFSConfig(counter="standard").counter == "standard"

    def test_conflicting_flags_rejected(self):
        with pytest.raises(ConfigurationError):
            PBFSConfig(biased=True, counter="standard")


class TestEnergyNoClusteringPath:
    def test_pc_indexed_faulthound_uses_sram_energy(self):
        cfg = FaultHoundConfig(clustering=False, second_level=False,
                               squash_detection=False)
        core = PipelineCore([assemble("""
            movi r1, 0x800
            ld r2, 0(r1)
            st r2, 8(r1)
            halt
        """)], screening=FaultHoundUnit(cfg))
        core.run(max_cycles=10_000)
        breakdown = EnergyModel().compute(core)
        assert breakdown.screening_pj > 0


class TestHardwarePresets:
    def test_presets_are_valid_configs(self):
        from repro.config import HardwareConfig
        small = HardwareConfig.small_core()
        big = HardwareConfig.aggressive_core()
        assert small.issue_width < big.issue_width
        # both must actually run a program
        for hw in (small, big):
            core = PipelineCore([assemble("movi r1, 3\nhalt")], hw=hw)
            core.run(max_cycles=10_000)
            assert core.all_halted
