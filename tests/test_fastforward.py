"""Event-skip fast-forward equivalence (the perf-opt contract).

The run drivers elide provably idle cycles by jumping ``core.cycle``
straight to the next cycle at which any structure can change state
(``PipelineCore.quiescent_until``). That is only admissible if the fast
path is *bit-for-bit* the cycle-by-cycle reference: same final cycle,
same commit stream, same trigger cycles, same campaign aggregates, with
every composition — sanitizer-armed, stage-profiled, cloned,
checkpointed, chunk-replayed — agreeing too. ``enable_fast_forward``
exists exactly so these tests can run both paths.
"""

import pickle
import random

import pytest

from repro.core import FaultHoundUnit
from repro.faults import Campaign, FaultClass
from repro.harness.diff import run_corpus
from repro.pipeline import PipelineCore
from repro.pipeline.checkpoint import capture_checkpoint
from repro.pipeline.debugger import PipelineDebugger
from repro.pipeline.stats import PipelineStats
from repro.workloads import PROFILES, build_smt_programs

from .program_gen import random_program


def _digest(core):
    """Everything the equivalence contract promises, in one comparable
    blob. Deliberately behavioural — raw scratch state like the FU
    bandwidth dict is reset at the top of every step and may legally
    differ across an elided stretch."""
    return {
        "cycle": core.cycle,
        "stat_cycles": core.stats.cycles,
        "committed": core.stats.committed,
        "per_thread": dict(core.stats.per_thread_committed),
        "recent": list(core.stats.recent_commits),
        "summary": core.stats.summary(),
        "arch": core.arch_snapshot(),
        "triggers": list(core.screen_trigger_cycles),
        "halted": core.all_halted,
    }


def _pair(profile, screening_factory=None, dynamic_target=2_500):
    """One fast-forwarding core and one cycle-by-cycle reference core,
    built identically."""
    cores = []
    for enabled in (True, False):
        unit = screening_factory() if screening_factory else None
        core = PipelineCore(
            build_smt_programs(PROFILES[profile], dynamic_target),
            screening=unit)
        core.enable_fast_forward(enabled)
        cores.append(core)
    return cores


def _disable_globally(monkeypatch):
    """Force the legacy path for cores constructed inside harness code."""
    monkeypatch.setattr(PipelineCore, "elide_idle_cycles",
                        lambda self, bound: False)


# ----------------------------------------------------------------------
# plain runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("profile", ["mcf", "bzip2"])
@pytest.mark.parametrize("scheme", [None, "faulthound"])
def test_plain_run_bit_for_bit(profile, scheme):
    factory = FaultHoundUnit if scheme else None
    fast, slow = _pair(profile, factory)
    fast.run(150_000)
    slow.run(150_000)
    assert fast.cycles_elided > 0          # the fast path actually jumped
    assert slow.cycles_elided == 0
    assert _digest(fast) == _digest(slow)


def test_interleaved_drivers_equivalent():
    """Mixed driver usage (commit-targeted, cycle-targeted, absolute)
    lands both cores on identical state at every boundary."""
    fast, slow = _pair("mcf")
    for core in (fast, slow):
        core.run_until_commits(400)
        core.step_until(core.cycle + 500)
        core.run_to_commit(core.stats.committed + 300, 50_000)
    assert _digest(fast) == _digest(slow)


def test_deadlock_bound_is_exact():
    """A core that can never halt inside the budget lands at exactly
    ``start + max_cycles`` on both paths (the hung-window contract)."""
    fast, slow = _pair("mcf", dynamic_target=50_000)
    fast.run(2_000)
    slow.run(2_000)
    assert fast.cycle == slow.cycle == 2_000
    assert _digest(fast) == _digest(slow)


# ----------------------------------------------------------------------
# composition: sanitizer, stage profiling, clone, checkpoint
# ----------------------------------------------------------------------
@pytest.mark.parametrize("every", [1, 7])
def test_periodic_sanitizer_checks_compose(every):
    """A periodic sanitizer caps each jump so its checks run at exactly
    the legacy cycles — violation counts and state agree; ``every=1``
    degenerates to zero elision."""
    fast, slow = _pair("bzip2")
    sanitizers = []
    for core in (fast, slow):
        sanitizers.append(core.enable_sanitizer(every=every))
        core.run(60_000)
    assert _digest(fast) == _digest(slow)
    assert len(sanitizers[0].violations) == len(sanitizers[1].violations)
    if every == 1:
        assert fast.cycles_elided == 0
    else:
        assert fast.cycles_elided > 0


def test_explicit_sanitizer_mode_does_not_clamp():
    fast, _ = _pair("mcf")
    fast.enable_sanitizer(every=0)
    fast.run(60_000)
    assert fast.cycles_elided > 0
    assert fast.check_invariants() == []


def test_stage_profiling_composes_with_idle_skip():
    fast, slow = _pair("mcf")
    for core in (fast, slow):
        core.enable_stage_profiling()
        core.run(60_000)
    assert _digest(fast) == _digest(slow)
    assert fast.stage_seconds.get("idle-skip", 0.0) > 0.0
    assert "idle-skip" not in slow.stage_seconds


def test_clone_carries_fast_forward_state():
    fast, slow = _pair("bzip2")
    for core in (fast, slow):
        core.run_until_commits(300)
    fork_fast, fork_slow = fast.clone(), slow.clone()
    assert fork_fast.fast_forward and not fork_slow.fast_forward
    fork_fast.run(40_000)
    fork_slow.run(40_000)
    assert _digest(fork_fast) == _digest(fork_slow)
    # the fork's stats derive from the fork's cycle, not the parent's
    assert fork_fast.stats.cycles == fork_fast.cycle != fast.cycle


def test_checkpoint_restore_preserves_equivalence():
    fast, slow = _pair("bzip2")
    for core in (fast, slow):
        core.run_until_commits(300)
    restored_fast = capture_checkpoint(fast).restore()
    restored_slow = capture_checkpoint(slow).restore()
    assert restored_fast.fast_forward and not restored_slow.fast_forward
    # the restored core's stats re-bind to it (live derivation)
    assert restored_fast.stats.cycles == restored_fast.cycle
    restored_fast.run(40_000)
    restored_slow.run(40_000)
    assert _digest(restored_fast) == _digest(restored_slow)


# ----------------------------------------------------------------------
# tandem classifier: serial campaign and chunk-replay (parallel worker)
# ----------------------------------------------------------------------
def _window_digest(results):
    return [(r.applied, r.fault_class, r.state_equal, r.extra_exceptions,
             r.hung, r.replays, r.rollbacks, r.singletons, r.declared,
             r.suppressions, r.triggers, r.inject_cycle,
             r.first_trigger_cycle, r.detection_latency)
            for r in results]


def _campaign(seed=11, n=12, screening=None):
    program = random_program(random.Random(seed), body_len=25,
                             iterations=1_500)
    factory = (lambda: PipelineCore([program], screening=screening()
                                    if screening else None))
    campaign = Campaign("ff-test", factory, num_phys_regs=224,
                        num_threads=1, num_faults=n, seed=seed,
                        warmup_commits=200, window_commits=100,
                        max_window_cycles=30_000)
    return campaign


@pytest.mark.parametrize("screening", [None, FaultHoundUnit])
def test_campaign_characterization_bit_for_bit(monkeypatch, screening):
    fast = _campaign(screening=screening).characterize()
    _disable_globally(monkeypatch)
    slow = _campaign(screening=screening).characterize()
    assert _window_digest(fast.characterization) \
        == _window_digest(slow.characterization)


def test_chunk_replay_matches_serial_tail():
    """A parallel worker replays the skip prefix and must classify its
    chunk bit-for-bit like the serial classifier's tail (with fast-
    forward active on both sides)."""
    serial = _campaign(seed=7)
    whole = serial.classifier(serial.baseline_factory).run(serial.records)

    chunked = _campaign(seed=7)
    split = len(chunked.records) // 2
    tail = chunked.classifier(chunked.baseline_factory).run(
        chunked.records[split:], skip=chunked.records[:split])
    assert _window_digest(tail) == _window_digest(whole[split:])


# ----------------------------------------------------------------------
# differential corpus (the `repro verify` harness)
# ----------------------------------------------------------------------
def _corpus_digest(**kwargs):
    report = run_corpus(count=6, base_seed=12, max_cycles=60_000, **kwargs)
    return (report.summary(),
            [(o.ok, o.cycles, o.commits, o.invariant_violations,
              o.mem_order_violations, o.forwarded_loads)
             for o in report.outcomes])


def test_differential_corpus_unsanitized(monkeypatch):
    fast = _corpus_digest(sanitize=False)
    _disable_globally(monkeypatch)
    assert fast == _corpus_digest(sanitize=False)


def test_differential_corpus_periodic_sanitizer(monkeypatch):
    fast = _corpus_digest(sanitize=True, sanitize_every=5)
    _disable_globally(monkeypatch)
    assert fast == _corpus_digest(sanitize=True, sanitize_every=5)


# ----------------------------------------------------------------------
# debugger
# ----------------------------------------------------------------------
def test_debugger_stops_at_identical_cycles():
    stops = []
    for enabled in (True, False):
        program = random_program(random.Random(3), body_len=20,
                                 iterations=400)
        dbg = PipelineDebugger(PipelineCore([program]))
        dbg.fast_forward = enabled
        dbg.break_on_event("mispredict")
        bp = dbg.cont(100_000)
        first = (dbg.core.cycle, dbg.last_stop, bp is not None)
        dbg.clear_breakpoints()
        dbg.cont(200_000)                      # run to halt
        stops.append((first, dbg.core.cycle, dbg.last_stop,
                      _digest(dbg.core)))
    assert stops[0] == stops[1]


# ----------------------------------------------------------------------
# derived stats.cycles regression
# ----------------------------------------------------------------------
def test_stats_cycles_derives_from_core_cycle():
    core, _ = _pair("mcf")
    core.run_until_commits(100)
    assert core.stats.cycles == core.cycle
    core.step()
    assert core.stats.cycles == core.cycle


def test_stats_summary_shape_unchanged():
    core, _ = _pair("mcf")
    core.run_until_commits(100)
    summary = core.stats.summary()
    assert summary["cycles"] == core.cycle
    assert set(summary) == {
        "cycles", "committed", "ipc", "branch_mispredicts",
        "memory_order_violations", "replay_events", "replayed_ops",
        "rollback_events", "rollback_squashed_ops", "singleton_reexecs",
        "singleton_mismatch_detections", "delay_buffer_squashes",
        "regfile_reads", "regfile_writes", "exceptions"}
    assert summary["ipc"] == round(core.stats.committed / core.cycle, 4)


def test_stats_clone_detaches_and_materialises():
    core, _ = _pair("mcf")
    core.run_until_commits(100)
    frozen = core.stats.clone()
    at_clone = core.cycle
    core.step_until(core.cycle + 50)
    assert frozen.cycles == at_clone          # detached: did not advance
    assert core.stats.cycles == core.cycle


def test_stats_pickle_materialises_and_migrates_legacy_key():
    core, _ = _pair("mcf")
    core.run_until_commits(100)
    at_dump = core.cycle
    restored = pickle.loads(pickle.dumps(core.stats))
    assert restored.cycles == at_dump
    assert restored.ipc == pytest.approx(core.stats.ipc)

    # a stats dict pickled before cycles became derived uses the old key
    legacy_state = restored.__getstate__()
    legacy_state["cycles"] = legacy_state.pop("_cycles")
    legacy = PipelineStats.__new__(PipelineStats)
    legacy.__setstate__(legacy_state)
    assert legacy.cycles == at_dump


def test_stats_setter_still_writes():
    stats = PipelineStats()
    stats.cycles = 42
    assert stats.cycles == 42
