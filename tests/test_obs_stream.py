"""Streaming-monitor tests: the JsonlFollower transport, CampaignMonitor
folding, and live-vs-post-hoc aggregate convergence on a real campaign."""

import json
import os

from repro.cli import main
from repro.obs import (CampaignMonitor, JsonlFollower, aggregates_from_events,
                       read_events, render_status)


def _write_lines(path, records, mode="a"):
    with open(path, mode, encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


# ----------------------------------------------------------------------
# the transport
# ----------------------------------------------------------------------
class TestJsonlFollower:
    def test_incremental_polls_return_only_new_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        follower = JsonlFollower(path)
        assert follower.poll() == []            # missing file is quiet
        _write_lines(path, [{"n": 1}])
        assert [r["n"] for r in follower.poll()] == [1]
        assert follower.poll() == []
        _write_lines(path, [{"n": 2}, {"n": 3}])
        assert [r["n"] for r in follower.poll()] == [2, 3]

    def test_torn_tail_buffers_until_completed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\n{"n": 2')
        follower = JsonlFollower(path)
        assert [r["n"] for r in follower.poll()] == [1]
        assert follower.pending_tail > 0
        with open(path, "a") as handle:         # writer finishes the line
            handle.write("}\n")
        assert [r["n"] for r in follower.poll()] == [2]
        assert follower.pending_tail == 0

    def test_rotation_resets_offset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _write_lines(path, [{"n": 1}, {"n": 2}], mode="w")
        follower = JsonlFollower(path)
        follower.poll()
        _write_lines(path, [{"n": 9}], mode="w")    # recreated, smaller
        assert [r["n"] for r in follower.poll()] == [9]
        assert follower.rotations == 1

    def test_same_size_rotation_detected_by_inode(self, tmp_path):
        """Regression: a rotation that replaces the file with one of the
        exact same byte length never shrinks below the offset, so the
        size check alone silently misses it — the inode must catch it."""
        path = tmp_path / "log.jsonl"
        _write_lines(path, [{"n": 1}], mode="w")
        follower = JsonlFollower(path)
        assert [r["n"] for r in follower.poll()] == [1]
        fresh = tmp_path / "fresh.jsonl"
        _write_lines(fresh, [{"n": 2}], mode="w")   # same byte length
        assert fresh.stat().st_size == follower.offset
        os.replace(fresh, path)
        assert [r["n"] for r in follower.poll()] == [2]
        assert follower.rotations == 1

    def test_rotation_that_regrows_past_old_offset(self, tmp_path):
        """Regression: a replacement file already *larger* than the old
        offset used to be tailed from the stale offset, dropping its
        head and splicing records from two different runs."""
        path = tmp_path / "log.jsonl"
        _write_lines(path, [{"n": 1}], mode="w")
        follower = JsonlFollower(path)
        follower.poll()
        fresh = tmp_path / "fresh.jsonl"
        _write_lines(fresh, [{"n": 7}, {"n": 8}, {"n": 9}], mode="w")
        assert fresh.stat().st_size > follower.offset
        os.replace(fresh, path)
        assert [r["n"] for r in follower.poll()] == [7, 8, 9]
        assert follower.rotations == 1

    def test_bad_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\nnot json\n[1, 2]\n{"n": 2}\n')
        follower = JsonlFollower(path)
        assert [r["n"] for r in follower.poll()] == [1, 2]
        assert follower.bad_lines == 2

    def test_resumable_from_byte_offset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        _write_lines(path, [{"n": 1}, {"n": 2}], mode="w")
        first = JsonlFollower(path)
        first.poll()
        _write_lines(path, [{"n": 3}])
        rebuilt = JsonlFollower(path, offset=first.offset)
        assert [r["n"] for r in rebuilt.poll()] == [3]


# ----------------------------------------------------------------------
# folding synthetic trails
# ----------------------------------------------------------------------
class TestMonitorFolding:
    def test_journal_plan_and_chunks_drive_progress(self, tmp_path):
        _write_lines(tmp_path / "journal.jsonl", [
            {"type": "plan", "phase": "characterize", "benchmark": "mcf",
             "scheme": "baseline", "windows": 10,
             "bounds": [[0, 5], [5, 10]], "resumed_chunks": 0},
            {"type": "chunk_done", "phase": "characterize",
             "lo": 0, "hi": 5, "windows": 5, "attempt": 1},
        ])
        status = CampaignMonitor(tmp_path).poll()
        assert status.state == "running"
        phase = status.phases["characterize"]
        assert phase.windows_total == 10
        assert phase.windows_done == 5
        assert phase.chunks_done == 1
        assert phase.chunks_total == 2
        assert status.windows_done == 5

    def test_resumed_plan_seeds_progress_from_journal(self, tmp_path):
        """Satellite: a resumed run's monitor starts from the adopted
        chunks, not zero — only the missing gap remains."""
        _write_lines(tmp_path / "journal.jsonl", [
            {"type": "plan", "phase": "characterize", "benchmark": "mcf",
             "scheme": "baseline", "windows": 10,
             "bounds": [[6, 10]], "resumed_chunks": 2},
        ])
        status = CampaignMonitor(tmp_path).poll()
        phase = status.phases["characterize"]
        assert phase.windows_done == 6          # 10 minus the [6,10) gap
        assert phase.chunks_done == 2
        assert phase.chunks_total == 3

    def test_quarantine_and_phase_done_fold(self, tmp_path):
        _write_lines(tmp_path / "journal.jsonl", [
            {"type": "plan", "phase": "characterize", "benchmark": "mcf",
             "scheme": "baseline", "windows": 4, "bounds": [[0, 4]],
             "resumed_chunks": 0},
            {"type": "quarantine", "phase": "characterize", "index": 2,
             "scheme": "baseline", "site": "regfile", "bit": 3,
             "reason": "timeout", "attempts": 4},
            {"type": "phase_done", "phase": "characterize",
             "status": "complete-with-quarantine", "windows": 3,
             "quarantined": 1},
        ])
        _write_lines(tmp_path / "events.jsonl", [
            {"ts": 1.0, "type": "run_start", "pid": 1, "run": "r1"},
            {"ts": 9.0, "type": "run_end", "pid": 1, "run": "r1"},
        ])
        status = CampaignMonitor(tmp_path).poll()
        assert status.state == "complete-with-quarantine"
        assert status.quarantined == 1
        assert status.phases["characterize"].windows_done == 3

    def test_throughput_and_eta_from_progress_trail(self, tmp_path):
        _write_lines(tmp_path / "journal.jsonl", [
            {"type": "plan", "phase": "characterize", "benchmark": "mcf",
             "scheme": "baseline", "windows": 100,
             "bounds": [[0, 100]], "resumed_chunks": 0},
        ])
        _write_lines(tmp_path / "events.jsonl", [
            {"ts": 0.0, "type": "run_start", "pid": 1, "run": "r1"},
            {"ts": 10.0, "type": "counter", "pid": 1,
             "name": "campaign_progress", "value": 0,
             "attrs": {"phase": "characterize"}},
            {"ts": 20.0, "type": "counter", "pid": 1,
             "name": "campaign_progress", "value": 20,
             "attrs": {"phase": "characterize"}},
        ])
        status = CampaignMonitor(tmp_path).poll()
        assert status.throughput == 2.0         # 20 windows / 10 s
        assert status.eta_seconds == 50.0       # 100 remaining / 2 per s

    def test_heartbeats_and_supervisor_tallies(self, tmp_path):
        _write_lines(tmp_path / "events.jsonl", [
            {"ts": 1.0, "type": "run_start", "pid": 1, "run": "r1"},
            {"ts": 2.0, "type": "heartbeat", "pid": 1,
             "phase": "characterize", "running": 2, "pending": 3,
             "workers": [41, 42]},
            {"ts": 3.0, "type": "supervisor", "pid": 1, "action": "retry"},
            {"ts": 4.0, "type": "supervisor", "pid": 1,
             "action": "timeout"},
        ])
        status = CampaignMonitor(tmp_path).poll()
        assert status.workers == {41: 2.0, 42: 2.0}
        assert status.retries == 1
        assert status.timeouts == 1
        assert status.state == "running"

    def test_metrics_events_merge_across_polls(self, tmp_path):
        events = tmp_path / "events.jsonl"
        monitor = CampaignMonitor(tmp_path)
        _write_lines(events, [
            {"ts": 1.0, "type": "metrics", "pid": 1, "scope": "worker",
             "snapshot": {"counters": {"n_total": 2}}}])
        monitor.poll()
        _write_lines(events, [
            {"ts": 2.0, "type": "metrics", "pid": 1, "scope": "session",
             "snapshot": {"counters": {"n_total": 3}}}])
        status = monitor.poll()
        assert status.metrics["counters"]["n_total"] == 5

    def test_rotation_resets_event_state_keeps_journal(self, tmp_path):
        """`repro resume` recreates events.jsonl with mode w: the
        monitor drops event-derived state but journal progress stays."""
        _write_lines(tmp_path / "journal.jsonl", [
            {"type": "plan", "phase": "characterize", "benchmark": "mcf",
             "scheme": "baseline", "windows": 10, "bounds": [[0, 10]],
             "resumed_chunks": 0}])
        events = tmp_path / "events.jsonl"
        _write_lines(events, [
            {"ts": 1.0, "type": "run_start", "pid": 1, "run": "first"},
            {"ts": 2.0, "type": "metrics", "pid": 1,
             "snapshot": {"counters": {"n_total": 7}}}], mode="w")
        monitor = CampaignMonitor(tmp_path)
        assert monitor.poll().run_id == "first"
        _write_lines(events, [
            {"ts": 3.0, "type": "run_start", "pid": 2, "run": "second"}],
            mode="w")
        status = monitor.poll()
        assert status.run_id == "second"
        assert status.rotations == 1
        assert status.metrics["counters"] == {}          # event state reset
        assert status.phases["characterize"].windows_total == 10  # kept

    def test_empty_run_dir_is_unknown(self, tmp_path):
        status = CampaignMonitor(tmp_path).poll()
        assert status.state == "unknown"
        assert not status.finished

    def test_render_status_mentions_the_essentials(self, tmp_path):
        _write_lines(tmp_path / "journal.jsonl", [
            {"type": "plan", "phase": "characterize", "benchmark": "mcf",
             "scheme": "baseline", "windows": 4, "bounds": [[0, 4]],
             "resumed_chunks": 0}])
        text = render_status(CampaignMonitor(tmp_path).poll())
        assert "state running" in text
        assert "characterize" in text
        assert "0/4" in text


# ----------------------------------------------------------------------
# live-vs-post-hoc convergence on a real supervised campaign
# ----------------------------------------------------------------------
class TestLiveConvergence:
    def _run_campaign(self, run_dir):
        code = main(["campaign", "mcf", "--faults", "6", "--jobs", "1",
                     "--no-cache", "--run-dir", str(run_dir)])
        assert code == 0

    def test_post_run_monitor_matches_post_hoc_report(self, tmp_path,
                                                      capsys):
        run_dir = tmp_path / "run"
        self._run_campaign(run_dir)
        capsys.readouterr()
        status = CampaignMonitor(run_dir).poll()
        assert status.finished
        assert status.state == "complete"
        events = read_events(run_dir / "events.jsonl")
        assert status.aggregates == aggregates_from_events(events)
        assert status.aggregates["applied"] > 0
        assert status.windows_done == status.windows_total == 6
        # the final metrics event reached the snapshot too
        assert ("classifier_windows_total"
                in status.metrics["counters"])

    def test_monitor_attached_mid_run_converges(self, tmp_path, capsys):
        """Fold the same trails in arbitrary increments: a monitor that
        polled all along ends at the same snapshot as a one-shot one."""
        run_dir = tmp_path / "run"
        self._run_campaign(run_dir)
        capsys.readouterr()
        events_path = run_dir / "events.jsonl"
        blob = events_path.read_bytes()
        incremental = CampaignMonitor(run_dir)
        # replay the event log a few bytes at a time, polling as we go
        events_path.write_bytes(b"")
        step = max(1, len(blob) // 17)
        for start in range(0, len(blob), step):
            with open(events_path, "ab") as handle:
                handle.write(blob[start:start + step])
            incremental.poll()
        final = incremental.poll()
        one_shot = CampaignMonitor(run_dir).poll()
        assert final.as_json() == one_shot.as_json()

    def test_status_json_cli_matches_report_cli(self, tmp_path, capsys):
        """The acceptance check: `repro status --json` on a finished run
        reports aggregates identical to `repro report --events`."""
        run_dir = tmp_path / "run"
        self._run_campaign(run_dir)
        capsys.readouterr()
        assert main(["status", str(run_dir), "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        code = main(["report", "--events",
                     str(run_dir / "events.jsonl")])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert status["aggregates"] == report["aggregates"]
        assert report["schema_errors"] == 0
        assert status["state"] == "complete"

    def test_top_once_and_tail_and_export_cli(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        self._run_campaign(run_dir)
        capsys.readouterr()
        assert main(["top", str(run_dir), "--once", "--no-clear"]) == 0
        frame = capsys.readouterr().out
        assert "state complete" in frame
        assert main(["tail", str(run_dir), "--type", "fault_audit"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 6
        assert all(json.loads(l)["type"] == "fault_audit" for l in lines)
        assert main(["metrics", "export", str(run_dir)]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_classifier_windows_total counter" in text
