"""PC-indexed filter-table tests (the PBFS substrate shared with the
no-clustering ablation)."""

import pytest

from repro.core.pbfs import PCIndexedFilterTable


class TestPCIndexedTable:
    def test_cold_install_no_trigger(self):
        table = PCIndexedFilterTable(16, "sticky")
        triggered, mask = table.check(pc=3, value=0x40)
        assert not triggered and mask == 0
        assert table.lookups == 1 and table.triggers == 0

    def test_mismatch_reports_mask(self):
        table = PCIndexedFilterTable(16, "sticky")
        table.check(3, 0b0000)
        triggered, mask = table.check(3, 0b0101)
        assert triggered and mask == 0b0101
        assert table.triggers == 1

    def test_pc_aliasing_shares_entries(self):
        """PCs congruent modulo the table size collide — the conflict
        behaviour real PBFS tables have."""
        table = PCIndexedFilterTable(8, "sticky")
        table.check(pc=1, value=0)
        triggered, _ = table.check(pc=9, value=0xFF00)   # same entry
        assert triggered

    def test_distinct_pcs_learn_independently(self):
        """The spreading weakness: the same value stream must be learned
        once per static instruction."""
        table = PCIndexedFilterTable(64, "biased")
        triggers = 0
        for pc in (1, 2, 3):
            table.check(pc, 0b00)
            triggered, _ = table.check(pc, 0b01)
            triggers += triggered
        assert triggers == 3

    def test_sticky_saturation_blinds_the_bit(self):
        table = PCIndexedFilterTable(8, "sticky")
        table.check(1, 0b0)
        table.check(1, 0b1)            # trigger + saturate bit 0
        table.check(1, 0b0)
        triggered, _ = table.check(1, 0b1)
        assert not triggered           # bit 0 is dead until flash clear

    def test_flash_clear_rearms(self):
        table = PCIndexedFilterTable(8, "sticky")
        table.check(1, 0b0)
        table.check(1, 0b1)
        table.flash_clear()
        table.check(1, 0b1)            # re-learn the (new) previous value
        triggered, _ = table.check(1, 0b0)
        assert triggered

    def test_biased_bank_decays_instead_of_sticking(self):
        table = PCIndexedFilterTable(8, "biased")
        table.check(1, 0b0)
        table.check(1, 0b1)            # trigger; bit 0 -> changing
        table.check(1, 0b1)            # quiet
        table.check(1, 0b1)            # quiet -> re-armed
        triggered, _ = table.check(1, 0b0)
        assert triggered

    def test_standard_bank_supported(self):
        table = PCIndexedFilterTable(8, "standard", changing_states=3)
        table.check(1, 0)
        triggered, _ = table.check(1, 1)
        assert triggered

    def test_len(self):
        assert len(PCIndexedFilterTable(32, "sticky")) == 32
