#!/usr/bin/env python3
"""Explore FaultHound's filter mechanics on a raw value stream.

Feeds a synthetic load-address stream through a counting TCAM with a
second-level filter and prints, step by step, how the ternary filters
learn the value neighbourhood (paper Figures 1 and 3), when triggers
fire, and how the second-level filter silences delinquent bit positions
(Section 3.2).

Run:  python examples/value_locality_explorer.py
"""

import random

from repro.core import SecondLevelFilter, TCAM


def describe(value, result, allowed_mask):
    if result.cold_install:
        return f"{value:#08x}  cold install into entry {result.closest_index}"
    if not result.triggered:
        return f"{value:#08x}  match (entry {result.closest_index})"
    kind = ("replace" if result.replaced_index is not None
            else f"loosen entry {result.closest_index}")
    verdict = "ALLOWED" if allowed_mask else "suppressed"
    bits = [i for i in range(64) if result.mismatch_mask >> i & 1]
    return (f"{value:#08x}  TRIGGER ({kind}; mismatch bits {bits}) "
            f"-> {verdict} by second-level filter")


def main():
    rng = random.Random(42)
    tcam = TCAM(entries=8, loosen_threshold=4)
    second = SecondLevelFilter()

    print("=== phase 1: a strided address neighbourhood is learned ===")
    for i in range(10):
        value = 0x4000 + 8 * (i % 4)
        result = tcam.lookup(value)
        allowed = second.observe_trigger(result.mismatch_mask) \
            if result.triggered else 0
        print("  " + describe(value, result, allowed))

    print("\nlearned filters (MSB..LSB, x = changing wildcard):")
    for index, entry in enumerate(tcam.entries):
        if entry.valid:
            print(f"  entry {index}: ...{entry.ternary_repr()[-16:]}")

    print("\n=== phase 2: a genuine neighbourhood switch triggers once, "
          "then the new region is learned ===")
    for i in range(6):
        value = 0x9000 + 8 * (i % 4)
        result = tcam.lookup(value)
        allowed = second.observe_trigger(result.mismatch_mask) \
            if result.triggered else 0
        print("  " + describe(value, result, allowed))

    print("\n=== phase 3: a delinquent bit (toggling bit 6) is silenced ===")
    for i in range(8):
        value = 0x4000 | (0x40 if i % 2 else 0)
        result = tcam.lookup(value)
        allowed = second.observe_trigger(result.mismatch_mask) \
            if result.triggered else 0
        print("  " + describe(value, result, allowed))

    print(f"\nsecond-level filter suppressed "
          f"{second.suppressed_triggers}/{second.observed_triggers} "
          f"triggers; delinquent positions: "
          f"{[i for i in range(64) if second.delinquent_mask >> i & 1]}")

    print("\n=== phase 4: a single-bit fault in a stable position is a "
          "fresh alarm -> allowed ===")
    value = (0x4000 + 8) ^ (1 << 20)       # soft fault flips bit 20
    result = tcam.lookup(value)
    allowed = second.observe_trigger(result.mismatch_mask)
    print("  " + describe(value, result, allowed))
    print("\nThat allowed trigger is what the pipeline turns into a "
          "predecessor replay (Section 3.3).")


if __name__ == "__main__":
    main()
