#!/usr/bin/env python3
"""A guided tour of the pipeline debugger.

Sets breakpoints on commits and screening events, inspects architectural
and micro-architectural state, and watches FaultHound react to an
injected fault — all through the same API you would use from a REPL.

Run:  python examples/debugger_tour.py
"""

from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.debugger import PipelineDebugger
from repro.pipeline.uops import OpState

SOURCE = """
    movi r1, 120
    movi r2, 0x1000
    movi r5, 3
loop:
    ld   r4, 0(r2)
    add  r5, r5, r4
    andi r5, r5, 2047
    st   r5, 0(r2)
    addi r2, r2, 8
    andi r2, r2, 0x3FF8
    ori  r2, r2, 0x1000
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def main():
    core = PipelineCore([assemble(SOURCE)], screening=FaultHoundUnit())
    dbg = PipelineDebugger(core)

    print("=== break when the loop's store first commits ===")
    dbg.break_at_pc(6)                       # the st
    hit = dbg.cont()
    print(f"stopped on: {hit.description if hit else dbg.last_stop}")
    print(dbg.where())
    print("\narchitectural registers:")
    print(dbg.registers(count=8))

    print("\n=== what is in flight right now? ===")
    print(dbg.in_flight(limit=10))

    print("\n=== run 100 committed instructions, check the filters ===")
    dbg.clear_breakpoints()
    dbg.break_when("100 more commits",
                   lambda c: c.stats.committed >= 100)
    dbg.cont()
    print(dbg.screening_state())

    print("\n=== inject a fault and break on the replay it causes ===")
    victim = next((op for op in core.threads[0].rob
                   if op.state is OpState.COMPLETED
                   and op.phys_dest is not None), None)
    if victim is None:
        print("(no completed in-flight op right now; skipping)")
        return
    core.inject_prf_bit(victim.phys_dest, bit=40)
    print(f"flipped bit 40 of p{victim.phys_dest} ({victim.inst})")
    dbg.clear_breakpoints()
    replay_bp = dbg.break_on_event("replay")
    rollback_bp = dbg.break_on_event("rollback")
    hit = dbg.cont(max_cycles=20_000)
    print(f"stopped on: {hit.description if hit else dbg.last_stop}")
    print(dbg.where())

    print("\n=== run to completion ===")
    dbg.clear_breakpoints()
    dbg.cont()
    stats = dbg.stats()
    print(f"finished: {stats['committed']} instructions in "
          f"{stats['cycles']} cycles; "
          f"{stats['replay_events']} replays, "
          f"{stats['rollback_events']} rollbacks")


if __name__ == "__main__":
    main()
