#!/usr/bin/env python3
"""Run a miniature fault-injection campaign on one benchmark.

Reproduces the paper's Section 4 methodology end to end on a laptop
scale: plan area-weighted single-bit faults, classify each one with the
tandem golden/faulty comparison (masked / noisy / SDC), then replay the
SDC faults against FaultHound and report coverage and the Figure 11
outcome breakdown.

Run:  python examples/fault_injection_campaign.py [benchmark] [num_faults]
"""

import sys

from repro.config import HardwareConfig
from repro.core import FaultHoundUnit
from repro.faults import Campaign, FaultClass
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "astar"
    num_faults = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    if benchmark not in PROFILES:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {sorted(PROFILES)}")
    hw = HardwareConfig()
    window = 150
    dynamic_target = (400 + (num_faults + 2) * window)  # per thread: enough
    programs = build_smt_programs(PROFILES[benchmark], dynamic_target)

    campaign = Campaign(
        benchmark,
        baseline_factory=lambda: PipelineCore(programs, hw=hw),
        num_phys_regs=hw.phys_regs, num_threads=len(programs),
        num_faults=num_faults, seed=3,
        warmup_commits=400, window_commits=window)

    print(f"campaign: {num_faults} single-bit faults into {benchmark} "
          f"(rename 20% / regfile 72% / LSQ 8%)")
    characterization = campaign.characterize()
    applied = characterization.applied_count()
    print(f"\n--- phase A: characterisation ({applied} faults applied) ---")
    for fault_class in FaultClass:
        frac = characterization.class_fraction(fault_class)
        print(f"  {fault_class.value:8s} {100 * frac:5.1f}%")

    coverage = campaign.run_coverage(
        "faulthound",
        lambda: PipelineCore(programs, hw=hw, screening=FaultHoundUnit()),
        characterization)
    print(f"\n--- phase B: FaultHound vs the {coverage.sdc_count} "
          f"SDC faults ---")
    print(f"  coverage: {100 * coverage.coverage:.1f}%")
    print("  breakdown (Figure 11 bins):")
    for bin_name, frac in coverage.breakdown().items():
        print(f"    {bin_name:24s} {100 * frac:5.1f}%")

    print("\nper-fault detail:")
    for window_result in coverage.coverage_results:
        record = window_result.record
        outcome = coverage.outcomes.get(record.index)
        print(f"  {record.describe():55s} -> "
              f"{outcome.value if outcome else 'not applied'}")


if __name__ == "__main__":
    main()
