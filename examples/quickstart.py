#!/usr/bin/env python3
"""Quickstart: assemble a program, run it on the out-of-order core with
FaultHound attached, inject a soft fault, and watch it get repaired.

Run:  python examples/quickstart.py
"""

from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.uops import OpState

SOURCE = """
    # Sum an array of 64 elements into r5 and store running sums.
    movi r1, 64          # loop counter
    movi r2, 0x1000      # input base
    movi r3, 0x2000      # output base
    movi r5, 0
loop:
    ld   r4, 0(r2)
    add  r5, r5, r4
    st   r5, 0(r3)
    addi r2, r2, 8
    addi r3, r3, 8
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def build_program():
    program = assemble(SOURCE, name="quickstart")
    for i in range(64):
        program.initial_memory[0x1000 + 8 * i] = i + 1
    return program


def run(label, inject=False):
    core = PipelineCore([build_program()], screening=FaultHoundUnit())
    if inject:
        # Let the loop get going, then flip a bit of an *in-flight* value:
        # a completed-but-uncommitted result that consumers are about to
        # read — exactly the population predecessor replay covers.
        core.run_until_commits(120)
        victim = next(op for op in core.threads[0].rob
                      if op.state is OpState.COMPLETED
                      and op.phys_dest is not None)
        core.inject_prf_bit(victim.phys_dest, bit=9)
        print(f"[{label}] flipped bit 9 of p{victim.phys_dest}, the "
              f"in-flight result of '{victim.inst}' (uid {victim.uid})")
    core.run(max_cycles=200_000)
    thread = core.threads[0]
    stats = core.stats
    print(f"[{label}] finished in {stats.cycles} cycles, "
          f"{stats.committed} instructions committed (IPC {stats.ipc:.2f})")
    print(f"[{label}] screening: {stats.replay_events} replays, "
          f"{stats.rollback_events} rollbacks, "
          f"{stats.singleton_reexecs} singleton re-executes")
    total = thread.arch_reg_value(5, core.prf)
    print(f"[{label}] final sum r5 = {total} "
          f"(expected {sum(range(1, 65))})")
    return total


def main():
    print("=== fault-free run ===")
    clean = run("clean")

    print("\n=== fault-injected run ===")
    faulty = run("faulty", inject=True)

    print()
    if faulty == clean:
        print("FaultHound repaired or masked the injected fault: "
              "architectural results match.")
    else:
        print("The injected fault escaped (silent data corruption) — "
              "try a different bit/time; coverage is probabilistic.")


if __name__ == "__main__":
    main()
