#!/usr/bin/env python3
"""Head-to-head comparison of the fault-tolerance schemes on one workload.

Runs the no-fault-tolerance baseline, PBFS, PBFS-biased, FaultHound
(back-end only and full) and the SRT-iso redundant-threading baseline on
the same benchmark, then prints the paper's three headline metrics —
false-positive rate, performance degradation, and energy overhead
(Figures 8b, 9, 10 for a single benchmark).

Run:  python examples/scheme_comparison.py [benchmark]
"""

import sys

from repro.analysis.metrics import fp_rate, perf_overhead
from repro.config import HardwareConfig
from repro.energy import EnergyModel
from repro.harness.experiment import SCHEMES, scheme_unit
from repro.pipeline import PipelineCore
from repro.redundancy import dynamic_length, srt_iso_core
from repro.workloads import PROFILES, build_smt_programs

COMPARED = ("baseline", "pbfs", "pbfs-biased", "fh-backend", "faulthound")


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "specjbb"
    if benchmark not in PROFILES:
        raise SystemExit(f"unknown benchmark {benchmark!r}; "
                         f"choose from {sorted(PROFILES)}")
    hw = HardwareConfig()
    programs = build_smt_programs(PROFILES[benchmark], 8_000)
    energy_model = EnergyModel()

    print(f"benchmark: {benchmark} "
          f"({PROFILES[benchmark].suite}, 2 SMT copies)\n")
    results = {}
    for scheme in COMPARED:
        core = PipelineCore(programs, hw=hw, screening=scheme_unit(scheme))
        core.run(max_cycles=8_000_000)
        results[scheme] = {
            "cycles": core.stats.cycles,
            "fp": fp_rate(core.screening, core.stats.committed),
            "energy": energy_model.compute(core),
            "replays": core.stats.replay_events,
            "rollbacks": core.stats.rollback_events,
        }

    lengths = [dynamic_length(p) for p in programs]
    srt = srt_iso_core(programs, hw=hw, coverage=0.75, lengths=lengths)
    srt.run(max_cycles=8_000_000)
    results["srt-iso"] = {
        "cycles": srt.stats.cycles, "fp": 0.0,
        "energy": energy_model.compute(srt),
        "replays": 0, "rollbacks": 0,
    }

    base = results["baseline"]
    header = (f"{'scheme':14s} {'FP rate':>9s} {'perf ovh':>9s} "
              f"{'energy ovh':>11s} {'replays':>8s} {'rollbacks':>10s}")
    print(header)
    print("-" * len(header))
    for scheme, r in results.items():
        perf = perf_overhead(r["cycles"], base["cycles"])
        energy = r["energy"].overhead_vs(base["energy"])
        print(f"{scheme:14s} {100 * r['fp']:8.2f}% {100 * perf:8.1f}% "
              f"{100 * energy:10.1f}% {r['replays']:8d} {r['rollbacks']:10d}")

    print("\nReading the table the paper's way: PBFS is cheap but blind, "
          "PBFS-biased sees more but pays full rollbacks for every false "
          "positive, SRT-iso pays constant redundancy energy, and "
          "FaultHound holds all three metrics down at once.")


if __name__ == "__main__":
    main()
