#!/usr/bin/env python3
"""Hardware screening vs software redundancy (SWIFT-style).

The paper's related work covers software schemes (SWIFT [22]) that
duplicate computation in spare instruction slots and compare before
stores: no hardware, but "the performance and power overheads remain".
This example builds the same workload twice — plain (run under FaultHound)
and SWIFT-ified (run on the plain core) — and compares their costs, then
injects the same fault into both to show both catch it.

Run:  python examples/software_redundancy.py [benchmark]
"""

import sys

from repro.core import FaultHoundUnit
from repro.energy import EnergyModel
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_program
from repro.workloads.generator import HEAP_BASE, MAX_CHASE_WORDS


def sentinel(profile):
    return HEAP_BASE + 8 * min(profile.working_set_words, MAX_CHASE_WORDS)


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "dealII"
    profile = PROFILES[name]
    plain = build_program(profile, 6000)
    swift = build_program(profile, 6000, swift=True)
    model = EnergyModel()

    baseline = PipelineCore([plain])
    baseline.run(max_cycles=5_000_000)
    base_energy = model.compute(baseline)

    # the generator holds *dynamic length* constant, so the SWIFT build
    # runs fewer loop trips — compare per loop iteration to be fair
    def per_iter(core, program, energy):
        trips = program.initial_regs[1]
        return (core.stats.cycles / trips, energy.total_pj / trips,
                core.stats.committed / trips)

    base_cyc, base_pj, base_insts = per_iter(baseline, plain, base_energy)

    print(f"benchmark: {name}  (costs per loop iteration)\n")
    print(f"{'approach':22s} {'insts':>7s} {'cycles':>8s} "
          f"{'perf ovh':>9s} {'energy ovh':>11s}")
    print(f"{'baseline':22s} {base_insts:7.1f} {base_cyc:8.1f} "
          f"{'-':>9s} {'-':>11s}")
    rows = {
        "FaultHound (hw)": (PipelineCore([plain],
                                         screening=FaultHoundUnit()), plain),
        "SWIFT-lite (sw)": (PipelineCore([swift]), swift),
    }
    for label, (core, program) in rows.items():
        core.run(max_cycles=5_000_000)
        cyc, pj, insts = per_iter(core, program, model.compute(core))
        print(f"{label:22s} {insts:7.1f} {cyc:8.1f} "
              f"{100 * (cyc / base_cyc - 1):8.1f}% "
              f"{100 * (pj / base_pj - 1):10.1f}%")

    print("\n--- inject the same value-register fault into both ---")
    for label, program, screening in (
            ("FaultHound", plain, FaultHoundUnit()),
            ("SWIFT-lite", swift, None)):
        core = PipelineCore([program], screening=screening)
        core.run_until_commits(800)
        victim = core.threads[0].committed_rat.get(4)
        core.inject_prf_bit(victim, bit=12)
        core.run(max_cycles=5_000_000)
        thread = core.threads[0]
        if label == "SWIFT-lite":
            caught = thread.memory.read(sentinel(profile)) == 0xDEAD
            verdict = "handler fired" if caught else "masked or escaped"
        else:
            events = (core.stats.replay_events
                      + core.stats.rollback_events
                      + len(core.declared_faults))
            verdict = (f"{core.stats.replay_events} replays, "
                       f"{core.stats.rollback_events} rollbacks")
        print(f"  {label:12s} -> {verdict}")

    print("\nThe hardware scheme pays only when hints fire and covers every "
          "checked stream; the software scheme pays its duplication on the "
          "protected dataflow forever — and this SWIFT-lite only shadows "
          "the store-value chain (full SWIFT duplicates far more, the "
          "paper's 'overheads remain' point).")


if __name__ == "__main__":
    main()
