#!/usr/bin/env python3
"""Visualize instruction flow through the out-of-order pipeline.

Renders a Konata-style text diagram of a short loop on the core with
FaultHound attached, then injects a fault mid-run and shows the
predecessor-replay disturbance in the lanes.

Lane legend: F fetch/decode, w waiting in issue queue, E executing,
c completed (delay-buffer window), R retired, x squashed.

Run:  python examples/pipeline_visualizer.py
"""

from repro.core import FaultHoundUnit
from repro.isa import assemble
from repro.pipeline import PipelineCore
from repro.pipeline.trace import PipelineTracer
from repro.pipeline.uops import OpState

SOURCE = """
    movi r1, 60
    movi r2, 0x1000
    movi r5, 1
loop:
    ld   r4, 0(r2)
    add  r5, r5, r4
    andi r5, r5, 1023
    st   r5, 0(r2)
    addi r2, r2, 8
    andi r2, r2, 0x1FF8
    ori  r2, r2, 0x1000
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
"""


def main():
    print("=== fault-free flow (first loop iterations) ===")
    core = PipelineCore([assemble(SOURCE)], screening=FaultHoundUnit())
    tracer = PipelineTracer(core)
    tracer.run(60)
    print(tracer.render(limit=22, width=56))

    print("\nstage residency (cycles per committed instruction):")
    for stage, cycles in tracer.stage_histogram().items():
        print(f"  {stage:12s} {cycles:5.1f}")

    print("\n=== now inject a fault into an in-flight result ===")
    core = PipelineCore([assemble(SOURCE)], screening=FaultHoundUnit())
    tracer = PipelineTracer(core)
    tracer.run(120)                     # warm the filters
    victim = next((op for op in core.threads[0].rob
                   if op.state is OpState.COMPLETED
                   and op.phys_dest is not None), None)
    if victim is None:
        print("(no in-flight victim at this point — try a longer warmup)")
        return
    core.inject_prf_bit(victim.phys_dest, bit=40)
    print(f"flipped bit 40 of p{victim.phys_dest} "
          f"({victim.inst}, uid {victim.uid})")
    first_uid = victim.uid - 2
    tracer.run(60)
    print(tracer.render(first_uid=first_uid, limit=20, width=56))
    print(f"\nreplays: {core.stats.replay_events}, "
          f"rollbacks: {core.stats.rollback_events} — look for ops that "
          f"re-enter E after having completed (the replay).")


if __name__ == "__main__":
    main()
