"""Table 2: hardware parameters (paper Section 4, Table 2)."""

from repro.config import FaultHoundConfig, HardwareConfig
from repro.harness import figures


def test_table2_parameters(benchmark, record_figure):
    result = benchmark.pedantic(figures.table2, rounds=1, iterations=1)
    record_figure("table2", result["text"], result)
    rows = result["rows"]
    assert rows["Issue Queue size"]["value"] == "40"
    assert rows["Re-order Buffer"]["value"] == "250"
    assert rows["Delay buffer"]["value"] == "7 instructions"
    assert "32-entry" in rows["FaultHound filters"]["value"]


def test_config_construction_cost(benchmark):
    cfg = benchmark(lambda: (HardwareConfig(), FaultHoundConfig()))
    assert cfg[0].lsq_size == 64
