"""Figure 6: percent change per bit position for the three checked value
streams, aggregated over all benchmarks (paper Section 5.1).

Paper shape: most bit positions change in fewer than 1% of values; a few
low-order positions change much more; ~3 bits change per 64-bit write on
average.
"""

from repro.harness import figures


def test_fig6_bit_position_change(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig6, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig6", result["text"], result)

    for kind in ("load_addr", "store_addr", "store_value"):
        fractions = result["fractions"][kind]
        assert len(fractions) == 64
        # most positions change in <1% of values (high value locality)
        below_1pct = sum(1 for f in fractions if f < 0.01)
        assert below_1pct >= 40, f"{kind}: only {below_1pct} quiet positions"
        # the changing positions concentrate at the low-order end
        busiest = max(range(64), key=fractions.__getitem__)
        assert busiest < 32, f"{kind}: busiest bit {busiest} is high-order"

    # the paper reports ~3 bits changed per 64-bit write on average;
    # accept a generous band around it
    mean_changed = result["rows"]["store_value"]["mean_bits_changed"]
    assert 0.5 <= mean_changed <= 12.0
