"""Shared fixtures for the figure-regeneration benchmarks.

One :class:`ExperimentContext` is shared across the whole benchmark
session so the expensive artefacts (programs, fault-free runs, injection
campaigns) are computed once and reused by every figure.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

- ``quick``   — a 4-benchmark smoke subset, minutes of wall clock;
- ``default`` — all 14 benchmarks at laptop scale (the shipped results);
- ``full``    — larger fault counts and longer runs (closer to the paper;
  expect a long wall-clock).

Execution is controlled by two more environment variables:

- ``REPRO_JOBS``     — worker processes for campaign/figure fan-out
  (default: all CPUs; 1 = the reference serial path);
- ``REPRO_NO_CACHE`` — when set (non-empty), skip the persistent artifact
  cache under ``benchmarks/.cache/`` and recompute everything;
- ``REPRO_EVENTS``   — when set, stream the structured JSONL event log
  (``repro.obs``) of the whole benchmark session to this path.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import ArtifactCache, ExperimentConfig, ExperimentContext
from repro.obs import (EventLog, NULL_LOG, build_manifest,
                       manifest_path_for, write_manifest)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SCALES = {
    "quick": ExperimentConfig(
        benchmarks=("bzip2", "mcf", "gamess", "apache"),
        dynamic_target=5_000, num_faults=24,
        warmup_commits=300, window_commits=120),
    "default": ExperimentConfig(
        dynamic_target=20_000, num_faults=120,
        warmup_commits=400, window_commits=150),
    "full": ExperimentConfig(
        dynamic_target=40_000, num_faults=250,
        warmup_commits=1_000, window_commits=300),
}


def _scale() -> ExperimentConfig:
    name = os.environ.get("REPRO_SCALE", "default")
    try:
        return _SCALES[name]
    except KeyError:
        raise RuntimeError(
            f"REPRO_SCALE={name!r}; choose from {sorted(_SCALES)}") from None


def _jobs():
    value = os.environ.get("REPRO_JOBS", "").strip()
    return int(value) if value else None


def _cache():
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    return ArtifactCache(RESULTS_DIR.parent / ".cache")


def _events():
    path = os.environ.get("REPRO_EVENTS", "").strip()
    return EventLog(path) if path else NULL_LOG


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    events = _events()
    context = ExperimentContext(_scale(), jobs=_jobs(), cache=_cache(),
                                events=events)
    yield context
    if events.enabled:
        events.close()
        write_manifest(
            manifest_path_for(events.path),
            build_manifest("run", context.cfg, context.hw,
                           jobs=context.jobs,
                           phase_seconds=context.metrics.phase_seconds,
                           metrics={
                               "cache_hits": context.metrics.cache_hits,
                               "cache_misses": context.metrics.cache_misses,
                               "windows": context.metrics.windows,
                           }))
    print(f"\n[repro] {context.metrics.summary()}")


@pytest.fixture(scope="session")
def record_figure(ctx):
    """Persist a figure's rendered text (and, when given, its structured
    payload as JSON) under benchmarks/results/, echoing the text so
    ``pytest -s`` shows the series inline. A provenance manifest lands
    next to each figure."""
    from repro.harness.store import ResultStore

    RESULTS_DIR.mkdir(exist_ok=True)
    store = ResultStore(RESULTS_DIR)

    def _record(name: str, text: str, payload=None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if payload is not None:
            slim = {k: v for k, v in payload.items()
                    if k not in ("text", "fractions")}
            store.save(name, slim, config=_scale())
        write_manifest(
            manifest_path_for(RESULTS_DIR / f"{name}.txt"),
            build_manifest("figure", ctx.cfg, ctx.hw,
                           parts={"name": name}, jobs=ctx.jobs))
        print(f"\n{text}\n")

    return _record
