"""Design-space ablations the paper states in prose (beyond Figure 12).

- Section 3: "changing from two-bit to three-bit state machine reduces the
  coverage from 80% to 60%" — deeper bias trades coverage for FP rate.
- Section 3.1: "only 16-32 filters are needed for good coverage even for
  heavy-duty commercial workloads" — TCAM size sweep.
- Section 5.2: "leslie's low coverage across the board improves with
  larger filters".
"""

import pytest

from repro.analysis.metrics import arithmetic_mean, fp_rate
from repro.config import FaultHoundConfig, HardwareConfig
from repro.core import FaultHoundUnit
from repro.harness.experiment import ExperimentContext
from repro.pipeline import PipelineCore


def fault_free_fp(ctx, benchmark, config):
    core = PipelineCore(ctx.programs(benchmark), hw=ctx.hw,
                        screening=FaultHoundUnit(config))
    core.run(max_cycles=8_000_000)
    return fp_rate(core.screening, core.stats.committed)


def test_bias_depth_trades_coverage_for_fp(benchmark, ctx, record_figure):
    """A 3-state-deep biased machine (the "three-bit" machine) suppresses
    more triggers: FP rate drops, and so does the trigger-based coverage
    proxy — the Section 3 trade-off."""
    def sweep():
        rows = {}
        names = list(ctx.cfg.benchmarks)[:4]
        for states in (1, 2, 3):
            cfg = FaultHoundConfig(first_level_changing_states=states,
                                   squash_detection=False)
            fp = arithmetic_mean(
                fault_free_fp(ctx, b, cfg) for b in names)
            rows[f"{states} changing states"] = {"fp_rate": fp}
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.tables import format_table
    record_figure("ablation_bias_depth", format_table(
        "Ablation: biased-machine depth vs FP rate", rows,
        percent=True, decimals=4))
    # deeper bias => fewer false positives (less armed time)
    assert rows["1 changing states"]["fp_rate"] \
        >= rows["3 changing states"]["fp_rate"]


def test_tcam_size_sweep(benchmark, ctx, record_figure):
    """16-32 entries suffice; tiny tables thrash (higher FP). The
    second-level filter is disabled here so the first-level capacity
    effect is visible (with it on, extra thrash just gets suppressed)."""
    def sweep():
        rows = {}
        names = list(ctx.cfg.benchmarks)[:4]
        for entries in (4, 16, 32, 64):
            cfg = FaultHoundConfig(tcam_entries=entries,
                                   second_level=False,
                                   squash_detection=False)
            fp = arithmetic_mean(
                fault_free_fp(ctx, b, cfg) for b in names)
            rows[f"{entries} entries"] = {"fp_rate": fp}
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.tables import format_table
    record_figure("ablation_tcam_size", format_table(
        "Ablation: TCAM entries vs FP rate", rows,
        percent=True, decimals=4))
    assert rows["4 entries"]["fp_rate"] >= rows["32 entries"]["fp_rate"], \
        "a thrashing 4-entry table must false-positive more"


def test_leslie_coverage_improves_with_larger_filters(benchmark, ctx,
                                                      record_figure):
    """Section 5.2: "leslie's low coverage across the board improves with
    larger filters (not shown)". leslie3d's wide value-change profile
    wildcards many TCAM bit positions; more entries let neighbourhoods
    specialise instead of loosening into one catch-all filter."""
    from repro.core import FaultHoundUnit

    def sweep():
        campaign, characterization = ctx.campaign("leslie3d")
        rows = {}
        for entries in (8, 32, 64):
            cfg = FaultHoundConfig(tcam_entries=entries)
            result = campaign.run_coverage(
                f"fh-{entries}",
                lambda: PipelineCore(ctx.programs("leslie3d"), hw=ctx.hw,
                                     screening=FaultHoundUnit(cfg)),
                characterization)
            rows[f"{entries} entries"] = {
                "coverage": result.coverage,
                "sdc_faults": str(result.sdc_count)}
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.tables import format_table
    record_figure("ablation_leslie_filters", format_table(
        "Ablation: leslie3d coverage vs TCAM entries", rows, percent=True))
    # leslie's per-campaign SDC pool is small, so allow sampling noise;
    # the claim is directional (bigger tables must not hurt)
    assert rows["64 entries"]["coverage"] \
        >= rows["8 entries"]["coverage"] - 0.25, \
        "larger filter tables must not collapse leslie's coverage"


def test_pbfs_clear_interval_tradeoff(benchmark, ctx, record_figure):
    """PBFS's periodic flash clear re-arms its sticky counters: a shorter
    interval re-detects more (coverage) but re-alarms more (FP rate).
    The FP side of the trade-off is cheap to measure fault-free."""
    from repro.config import PBFSConfig
    from repro.core import PBFSUnit

    def sweep():
        rows = {}
        names = list(ctx.cfg.benchmarks)[:4]
        for interval in (500, 2_000, 10_000):
            def fp_for(bench):
                core = PipelineCore(
                    ctx.programs(bench), hw=ctx.hw,
                    screening=PBFSUnit(PBFSConfig(clear_interval=interval)))
                core.run(max_cycles=8_000_000)
                return fp_rate(core.screening, core.stats.committed)
            rows[f"clear every {interval}"] = {
                "fp_rate": arithmetic_mean(fp_for(b) for b in names)}
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.tables import format_table
    record_figure("ablation_pbfs_clear", format_table(
        "Ablation: PBFS flash-clear interval vs FP rate", rows,
        percent=True, decimals=4))
    assert rows["clear every 500"]["fp_rate"] \
        >= rows["clear every 10000"]["fp_rate"], \
        "more frequent clears must re-alarm more"


def test_delay_buffer_depth_bounds_replay_size(benchmark, ctx,
                                               record_figure):
    """The delay buffer bounds how many instructions one replay
    re-executes (paper: 6-8 per trigger with a 7-entry buffer)."""
    def sweep():
        rows = {}
        name = list(ctx.cfg.benchmarks)[0]
        for depth in (3, 7, 12):
            hw = HardwareConfig(delay_buffer_size=depth)
            core = PipelineCore(ctx.programs(name), hw=hw,
                                screening=FaultHoundUnit(
                                    FaultHoundConfig(squash_detection=False)))
            core.run(max_cycles=8_000_000)
            events = max(1, core.stats.replay_events)
            rows[f"depth {depth}"] = {
                "ops_per_replay": core.stats.replayed_ops / events}
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.analysis.tables import format_table
    record_figure("ablation_delay_buffer", format_table(
        "Ablation: delay-buffer depth vs replay size", rows))
    for label, row in rows.items():
        depth = int(label.split()[1])
        assert row["ops_per_replay"] <= depth + 1
    assert rows["depth 12"]["ops_per_replay"] \
        >= rows["depth 3"]["ops_per_replay"]
