"""Figure 7: masked / noisy / SDC fault fractions (paper Section 5.1).

Paper shape: ~85% masked, ~5% noisy, ~10% SDC across benchmarks.
"""

import pytest

from repro.harness import figures


def test_fig7_fault_characterization(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig7, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig7", result["text"], result)

    mean = result["rows"]["MEAN"]
    assert mean["masked"] + mean["noisy"] + mean["sdc"] == pytest.approx(1.0)
    # the paper's headline: a large majority of faults are masked
    assert mean["masked"] > 0.70
    # and SDC is the small-but-dangerous remainder
    assert 0.0 < mean["sdc"] < 0.25
    assert mean["noisy"] < 0.20

    for name, row in result["rows"].items():
        if name == "MEAN":
            continue
        assert row["masked"] > 0.5, f"{name}: implausibly low masking"
