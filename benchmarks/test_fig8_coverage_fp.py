"""Figure 8: SDC coverage (a) and false-positive rates (b) for PBFS,
PBFS-biased, FaultHound-backend and FaultHound (paper Section 5.2).

Paper shape: PBFS ~30% coverage at near-zero FP; PBFS-biased reaches
FaultHound-class coverage but at ~8% FP; FaultHound keeps the coverage
(~75%) at ~3% FP — clustering plus the second-level filter buy roughly a
2-3x FP reduction over PBFS-biased.
"""

from repro.harness import figures


def test_fig8_coverage_and_fp(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig8, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig8", result["text"], result)

    coverage = result["coverage"]["MEAN"]
    fp = result["fp_rate"]["MEAN"]

    # -- false-positive ordering (the paper's central tension) --
    assert fp["pbfs"] < 0.01, "sticky PBFS must be near-zero FP"
    assert fp["pbfs-biased"] > 3 * fp["faulthound"] / 2, \
        "clustering+second-level must cut the biased FP rate substantially"
    assert fp["faulthound"] < 0.08

    # -- coverage ordering --
    assert coverage["faulthound"] > coverage["pbfs"], \
        "FaultHound must out-cover sticky PBFS"
    assert coverage["faulthound"] >= coverage["fh-backend"] - 0.08, \
        "rename-fault squash handling should not reduce coverage"
    assert coverage["faulthound"] > 0.35
    assert coverage["pbfs-biased"] > coverage["pbfs"]
