"""Figure 11: breakdown of SDC faults under FaultHound (paper Section 5.5).

Paper shape: the covered slice dominates; second-level masking costs
little; completed/committed-register faults are a modest slice (bypass
consumption masks most register-file faults); uncovered rename faults and
non-triggering faults (~10%) make up most of the remainder.
"""

import pytest

from repro.harness import figures


def test_fig11_sdc_breakdown(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig11, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig11", result["text"], result)

    mean = result["rows"]["MEAN"]
    assert sum(mean.values()) == pytest.approx(1.0, abs=1e-6)
    # the covered slice dominates the breakdown
    assert mean["covered"] == max(mean.values())
    # the second-level filter must not eat much coverage
    assert mean["second_level_masked"] < 0.25
    # every bin is a valid fraction
    for name, value in mean.items():
        assert 0.0 <= value <= 1.0, name
