"""Figure 12: isolating FaultHound's back-end mechanisms (paper Section 5.6).

Three ablations, overall means only (as in the paper):

- left:   clustering and the second-level filter each cut the FP rate;
- middle: predecessor replay dramatically beats full rollback on
  performance (6-8 re-executed instructions vs 100-200);
- right:  the commit-time LSQ check buys a significant slice of coverage.
"""

from repro.harness import figures


def test_fig12_mechanism_isolation(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig12, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig12", result["text"], result)

    left, middle, right = result["left"], result["middle"], result["right"]

    # left: each mechanism lowers the false-positive rate
    no_cluster = left["FH-BE-nocluster-no2level"]["fp_rate"]
    no_second = left["FH-BE-no2level"]["fp_rate"]
    full = left["FH-BE"]["fp_rate"]
    assert no_cluster > full, "clustering+2nd-level must reduce FP rate"
    assert no_second >= full, "the second-level filter must not raise FP"
    assert no_cluster > no_second * 0.8  # clustering contributes too

    # middle: replay beats full rollback
    rollback = middle["FH-BE-full-rollback"]["perf_overhead"]
    replay = middle["FH-BE"]["perf_overhead"]
    assert rollback > replay, "replay must be cheaper than full rollback"

    # right: covering the LSQ raises coverage
    no_lsq = right["FH-BE-noLSQ"]["coverage"]
    with_lsq = right["FH-BE"]["coverage"]
    assert with_lsq >= no_lsq, "the LSQ check must not lose coverage"
