"""Figure 10: energy overhead over the no-fault-tolerance baseline
(paper Section 5.4).

Paper shape: FaultHound-backend ~10%, full FaultHound ~25% (rename-fault
rollbacks cost energy even when their latency hides), SRT-iso ~56%
(redundant instructions cannot hide their energy the way they hide their
time).
"""

from repro.harness import figures


def test_fig10_energy_overhead(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig10, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig10", result["text"], result)

    mean = result["rows"]["MEAN"]
    # ordering: backend-only < full FaultHound < SRT-iso
    assert mean["fh-backend"] < mean["faulthound"], \
        "rename-fault rollbacks must show up as energy"
    assert mean["faulthound"] < mean["srt-iso"], \
        "partial screening must beat outright redundancy on energy"
    # magnitudes in the paper's bands (generous)
    assert 0.0 < mean["fh-backend"] < 0.25
    assert mean["faulthound"] < 0.45
    assert mean["srt-iso"] > 0.20

    # energy, unlike time, cannot hide: every benchmark pays SRT something
    for name, row in result["rows"].items():
        if name != "MEAN":
            assert row["srt-iso"] > 0.0, f"{name}: SRT energy must be paid"
