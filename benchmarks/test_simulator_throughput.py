"""Simulator-throughput microbenchmarks (regression guards for the hot
loop — these are the only benches here that time real wall-clock work the
conventional pytest-benchmark way)."""

from repro.core import FaultHoundUnit, TCAM
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs


def test_pipeline_cycles_per_second(benchmark, ctx):
    programs = ctx.programs(list(ctx.cfg.benchmarks)[0])

    def run_5k_cycles():
        core = PipelineCore(programs)
        for _ in range(5_000):
            core.step()
        return core.stats.committed

    committed = benchmark(run_5k_cycles)
    assert committed > 100


def test_pipeline_with_faulthound_throughput(benchmark, ctx):
    programs = ctx.programs(list(ctx.cfg.benchmarks)[0])

    def run_5k_cycles():
        core = PipelineCore(programs, screening=FaultHoundUnit())
        for _ in range(5_000):
            core.step()
        return core.stats.committed

    committed = benchmark(run_5k_cycles)
    assert committed > 100


def test_tcam_lookup_throughput(benchmark):
    tcam = TCAM(entries=32)
    values = [0x1000 + 8 * (i % 128) for i in range(4096)]
    for v in values[:256]:
        tcam.lookup(v)          # warm

    def lookups():
        for v in values:
            tcam.lookup(v)
        return tcam.lookups

    assert benchmark(lookups) > 0
