"""Batched lockstep fault execution bench: scalar tandem vs lane batch.

The profile is deliberately *masked-heavy* — the population the batched
engine exists for. A wide physical register file (4096 tags, ~84% free
at any instant) over a deep ROB means almost every REGFILE fault lands
in a free register, stays dormant for its whole window (zero per-cycle
cost behind the golden core), and the scalar path's clone + faulty
window re-execution is pure waste. The core geometry (8-wide frontend
feeding a 2-wide backend through a 256-entry issue queue) keeps ~650
micro-ops in flight so each scalar ``clone()`` is expensive — the cost
the dormant path never pays.

Every timed pair first re-asserts bit-for-bit result equivalence: a
throughput number from a diverging classification would be meaningless.
Results land in ``benchmarks/results/bench_batched_lanes.json``.
"""

import random
import time

from repro.config import HardwareConfig
from repro.core.screening import NullScreeningUnit
from repro.faults.campaign import Campaign
from repro.faults.model import FaultRecord, FaultSite
from repro.harness import ExperimentConfig
from repro.harness.store import ResultStore
from repro.pipeline.core import PipelineCore
from repro.workloads import build_smt_programs
from repro.workloads.profiles import WorkloadProfile

from conftest import RESULTS_DIR

_PROFILE = WorkloadProfile(
    name="masked-heavy", suite="bench", working_set_words=256,
    pointer_chase=0.0, loads_per_iter=1, stores_per_iter=1,
    alu_per_iter=12, value_model="counter", branchiness=0.05, seed=42)

_HW = HardwareConfig(phys_regs=4096, rob_size=1024, fetch_width=8,
                     decode_width=8, issue_width=2, commit_width=2,
                     issue_queue_size=256)

_NUM_FAULTS = 60
_WINDOW_COMMITS = 16
_WARMUP_COMMITS = 200
_BATCH_LANES = 8
_CFG = ExperimentConfig(benchmarks=("masked-heavy",), dynamic_target=6_000,
                        num_faults=_NUM_FAULTS,
                        warmup_commits=_WARMUP_COMMITS,
                        window_commits=_WINDOW_COMMITS,
                        batch_lanes=_BATCH_LANES)

_RESULTS = ResultStore(RESULTS_DIR)


def _plan():
    """REGFILE-only fault list: the PRF soft-error population the paper
    characterises, and (with 4096 tags) overwhelmingly masked."""
    rng = random.Random(5)
    return [FaultRecord(index=i, site=FaultSite.REGFILE,
                        inject_at_commit=_WARMUP_COMMITS
                        + i * _WINDOW_COMMITS,
                        bit=rng.randrange(64),
                        reg=rng.randrange(_HW.phys_regs))
            for i in range(_NUM_FAULTS)]


def _signature(results):
    return [(r.record.index, r.applied, r.fault_class, r.state_equal,
             r.declared, r.triggers, r.extra_exceptions, r.hung,
             r.record.reg_status) for r in results]


def _run(batch_lanes: int):
    programs = build_smt_programs(_PROFILE, _CFG.dynamic_target, copies=2)

    def factory():
        return PipelineCore(programs, hw=_HW, screening=NullScreeningUnit())

    campaign = Campaign("masked-heavy", factory, _HW.phys_regs, 2,
                        num_faults=_NUM_FAULTS, seed=5,
                        warmup_commits=_WARMUP_COMMITS,
                        window_commits=_WINDOW_COMMITS,
                        batch_lanes=batch_lanes)
    campaign.records = _plan()
    classifier = campaign.classifier(factory)
    started = time.perf_counter()
    results = classifier.run(campaign.records)
    seconds = time.perf_counter() - started
    return _signature(results), seconds, classifier.lane_stats


def test_batched_lanes_throughput_and_equivalence():
    scalar_best = batched_best = None
    for _ in range(2):  # best-of-2: absorb one-off allocator/cache noise
        scalar_sig, scalar_seconds, _ = _run(batch_lanes=1)
        batched_sig, batched_seconds, stats = _run(
            batch_lanes=_BATCH_LANES)
        assert scalar_sig == batched_sig
        if scalar_best is None or scalar_seconds < scalar_best:
            scalar_best = scalar_seconds
        if batched_best is None or batched_seconds < batched_best:
            batched_best = batched_seconds

    speedup = round(scalar_best / batched_best, 2)
    # masked-heavy faults must overwhelmingly ride the dormant path
    assert stats.lanes == _NUM_FAULTS
    assert stats.dormant + stats.converged >= int(0.8 * _NUM_FAULTS)
    assert stats.fallbacks == 0  # REGFILE-only plan: no LSQ lanes
    # recorded runs clear 3x; keep headroom for noisy CI machines
    assert speedup >= 2.5, (scalar_best, batched_best, stats)

    _RESULTS.save("bench_batched_lanes", {
        "profile": "masked-heavy (regfile-only faults, 4096 phys regs)",
        "num_faults": _NUM_FAULTS,
        "window_commits": _WINDOW_COMMITS,
        "batch_lanes": _BATCH_LANES,
        "scalar_seconds": round(scalar_best, 3),
        "batched_seconds": round(batched_best, 3),
        "scalar_windows_per_sec": round(_NUM_FAULTS / scalar_best, 1),
        "batched_windows_per_sec": round(_NUM_FAULTS / batched_best, 1),
        "speedup": speedup,
        "lane_stats": {
            "lanes": stats.lanes,
            "dormant": stats.dormant,
            "converged": stats.converged,
            "materialized": stats.materialized,
            "fallbacks": stats.fallbacks,
            "dormant_cycles": stats.dormant_cycles,
        },
    }, config=_CFG)
