"""Core-provisioning sensitivity (paper Section 2.2's observation).

The paper notes that false-positive overhead hides under a *higher*
baseline CPI ("the performance overhead would be lower if the baseline CPI
were higher") and criticises partial-redundancy schemes that only work on
aggressively-provisioned cores. This bench measures FaultHound's relative
overhead on a small, the default, and an aggressive core.
"""

from repro.analysis.metrics import arithmetic_mean, perf_overhead
from repro.analysis.tables import format_table
from repro.config import HardwareConfig
from repro.core import FaultHoundUnit
from repro.pipeline import PipelineCore


def _overhead(ctx, hw, benchmark):
    programs = ctx.programs(benchmark)
    base = PipelineCore(programs, hw=hw)
    base.run(max_cycles=20_000_000)
    fh = PipelineCore(programs, hw=hw, screening=FaultHoundUnit())
    fh.run(max_cycles=20_000_000)
    return (perf_overhead(fh.stats.cycles, base.stats.cycles),
            base.stats.ipc)


def test_core_size_sensitivity(benchmark, ctx, record_figure):
    cores = {
        "small (2-wide)": HardwareConfig.small_core(),
        "default (4-wide)": HardwareConfig(),
        "aggressive (6-wide)": HardwareConfig.aggressive_core(),
    }

    def sweep():
        rows = {}
        names = list(ctx.cfg.benchmarks)[:4]
        for label, hw in cores.items():
            results = [_overhead(ctx, hw, b) for b in names]
            rows[label] = {
                "fh_overhead": arithmetic_mean(r[0] for r in results),
                "baseline_ipc": arithmetic_mean(r[1] for r in results),
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_figure("sensitivity_core_size", format_table(
        "Sensitivity: core provisioning vs FaultHound overhead", rows))

    for label, row in rows.items():
        # FaultHound must stay a moderate-overhead scheme on every core
        assert row["fh_overhead"] < 0.5, label
    # wider cores commit faster at the same recovery cost
    assert rows["aggressive (6-wide)"]["baseline_ipc"] \
        >= rows["small (2-wide)"]["baseline_ipc"]
