"""Event-skip fast-forward benches: before/after numbers for the
idle-cycle elision in the run drivers.

Two workload shapes bound the win: ``mcf`` (pointer-chasing over a 1MB
working set — cache-miss-heavy, the pipeline drains for hundreds of
cycles per miss) and ``bzip2`` (store/load reuse — forwarding-heavy,
far fewer long stalls). A third section times a small fault-injection
campaign end to end, the workload the optimisation exists for.

Two "before" references are recorded:

- the in-tree reference — the same code with ``enable_fast_forward(False)``,
  i.e. cycle-by-cycle stepping that still benefits from this change's
  stage gating and hot-loop work, so it *understates* the win;
- the true pre-change core — measured in a subprocess against a checkout
  of the previous revision when ``REPRO_BASELINE_SRC`` points at its
  ``src`` directory (how the shipped JSON's ``pre_change`` section and
  its >=3x cache-miss-heavy speedup were produced). Without the env var
  that section is carried over from the previously shipped results.

Every timed pair also re-asserts bit-for-bit equivalence — a throughput
number from a diverging simulation would be meaningless. Results land in
``benchmarks/results/bench_fastforward.json``.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

from repro.faults import Campaign
from repro.harness import ExperimentConfig
from repro.harness.store import ResultStore
from repro.pipeline import PipelineCore
from repro.workloads import PROFILES, build_smt_programs

_CFG = ExperimentConfig(benchmarks=("mcf", "bzip2"), dynamic_target=6_000,
                        num_faults=12, warmup_commits=250,
                        window_commits=110)
_RUN_BOUND = 400_000
_TRIALS = 3

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_RESULTS = ResultStore(_RESULTS_DIR)

#: Subprocess probe run against the pre-change checkout: same workload,
#: same bound, best-of-N — emits {profile: {seconds, cycles, committed}}.
_BASELINE_PROBE = """
import json, time
from repro.pipeline.core import PipelineCore
from repro.workloads import PROFILES, build_smt_programs
out = {}
for profile in ("mcf", "bzip2"):
    best = None
    for _ in range(%(trials)d):
        core = PipelineCore(build_smt_programs(PROFILES[profile],
                                               %(target)d))
        t0 = time.perf_counter()
        core.run(%(bound)d)
        t = time.perf_counter() - t0
        best = t if best is None or t < best else best
    out[profile] = {"seconds": round(best, 3), "cycles": core.cycle,
                    "committed": core.stats.committed}
print(json.dumps(out))
"""


def _timed_run(profile: str, fast_forward: bool):
    best = None
    for _ in range(_TRIALS):
        programs = build_smt_programs(PROFILES[profile],
                                      _CFG.dynamic_target)
        core = PipelineCore(programs)
        core.enable_fast_forward(fast_forward)
        started = time.perf_counter()
        core.run(_RUN_BOUND)
        seconds = time.perf_counter() - started
        best = seconds if best is None or seconds < best else best
    return core, best


def _digest(core):
    return (core.cycle, core.stats.committed,
            list(core.stats.recent_commits), core.arch_snapshot(),
            core.stats.summary())


def _pre_change_section(payload):
    """True before/after vs the previous revision (see module docstring):
    measure it when REPRO_BASELINE_SRC is set, else keep the shipped
    measurement so reruns don't silently drop it."""
    baseline_src = os.environ.get("REPRO_BASELINE_SRC", "").strip()
    if not baseline_src:
        shipped = _RESULTS_DIR / "bench_fastforward.json"
        if shipped.exists():
            previous = json.loads(shipped.read_text())
            return previous.get("payload", {}).get("pre_change")
        return None
    env = dict(os.environ, PYTHONPATH=baseline_src)
    probe = _BASELINE_PROBE % {"trials": _TRIALS, "bound": _RUN_BOUND,
                               "target": _CFG.dynamic_target}
    out = subprocess.run([sys.executable, "-c", probe], env=env,
                         capture_output=True, text=True, check=True)
    before = json.loads(out.stdout)
    section = {"source": baseline_src, "profiles": {}}
    for profile, measured in before.items():
        after = payload["profiles"][profile]
        # the pre-change core must simulate the identical run
        assert measured["cycles"] == after["cycles"]
        assert measured["committed"] == after["committed"]
        speedup = round(measured["seconds"] * after["fast_cycles_per_sec"]
                        / measured["cycles"], 2)
        section["profiles"][profile] = {
            "seconds": measured["seconds"],
            "cycles_per_sec": round(measured["cycles"]
                                    / measured["seconds"]),
            "speedup_vs_pre_change": speedup,
        }
        if after["shape"] == "cache-miss-heavy":
            assert speedup >= 3.0, section
    return section


def _campaign(fast_forward: bool) -> Campaign:
    programs = build_smt_programs(PROFILES["mcf"], _CFG.dynamic_target)

    def factory():
        core = PipelineCore(programs)
        core.enable_fast_forward(fast_forward)
        return core

    return Campaign("mcf", factory, num_phys_regs=224, num_threads=2,
                    num_faults=_CFG.num_faults, seed=_CFG.seed,
                    warmup_commits=_CFG.warmup_commits,
                    window_commits=_CFG.window_commits,
                    max_window_cycles=_CFG.max_window_cycles)


def test_fastforward_throughput_and_equivalence():
    payload = {"profiles": {}}

    for profile, shape in (("mcf", "cache-miss-heavy"),
                           ("bzip2", "forwarding-heavy")):
        fast, fast_seconds = _timed_run(profile, fast_forward=True)
        slow, slow_seconds = _timed_run(profile, fast_forward=False)
        assert _digest(fast) == _digest(slow)
        speedup = round(slow_seconds / fast_seconds, 2)
        payload["profiles"][profile] = {
            "shape": shape,
            "cycles": fast.cycle,
            "committed": fast.stats.committed,
            "cycles_elided": fast.cycles_elided,
            "elided_fraction": round(fast.cycles_elided / fast.cycle, 4),
            "fast_cycles_per_sec": round(fast.cycle / fast_seconds),
            "gated_reference_cycles_per_sec": round(slow.cycle
                                                    / slow_seconds),
            "speedup_vs_gated_reference": speedup,
        }
        if shape == "cache-miss-heavy":
            # even against the flattering in-tree reference (which shares
            # this change's stage gating), elision must clearly win
            assert speedup >= 1.8, payload["profiles"][profile]
            assert fast.cycles_elided / fast.cycle > 0.5

    # campaign wall-clock: fault characterisation is the real consumer
    started = time.perf_counter()
    fast_result = _campaign(fast_forward=True).characterize()
    fast_seconds = time.perf_counter() - started
    started = time.perf_counter()
    slow_result = _campaign(fast_forward=False).characterize()
    slow_seconds = time.perf_counter() - started
    assert ([(w.applied, w.fault_class, w.inject_cycle,
              w.first_trigger_cycle)
             for w in fast_result.characterization]
            == [(w.applied, w.fault_class, w.inject_cycle,
                 w.first_trigger_cycle)
                for w in slow_result.characterization])
    payload["campaign"] = {
        "benchmark": "mcf",
        "num_faults": _CFG.num_faults,
        "fast_seconds": round(fast_seconds, 3),
        "gated_reference_seconds": round(slow_seconds, 3),
        "speedup": round(slow_seconds / fast_seconds, 2),
    }

    pre_change = _pre_change_section(payload)
    if pre_change is not None:
        payload["pre_change"] = pre_change

    _RESULTS.save("bench_fastforward", payload, config=_CFG)
