"""Figure 9: performance degradation over the no-fault-tolerance baseline
(paper Section 5.3, log-scale Y).

Paper shape: PBFS ~1% (but blind); PBFS-biased ~97% (full-rollback storms);
FaultHound-backend and FaultHound ~10%; SRT-iso slightly above FaultHound,
with commercial workloads hiding both under their cache misses.
"""

from repro.harness import figures
from repro.workloads import SUITES


def test_fig9_performance_degradation(benchmark, ctx, record_figure):
    result = benchmark.pedantic(figures.fig9, args=(ctx,),
                                rounds=1, iterations=1)
    record_figure("fig9", result["text"], result)

    mean = result["rows"]["MEAN"]
    # sticky PBFS barely triggers, so it barely slows anything
    assert mean["pbfs"] < 0.10
    # PBFS-biased pays a full rollback per false positive: dominant cost
    assert mean["pbfs-biased"] > 2 * mean["faulthound"], \
        "replay must dramatically beat rollback-per-FP"
    assert mean["pbfs-biased"] > 0.20
    # FaultHound's overheads stay moderate; backend-only is cheaper
    assert mean["fh-backend"] <= mean["faulthound"] + 0.02
    assert mean["faulthound"] < 0.30
    # SRT-iso pays real resource pressure
    assert mean["srt-iso"] > 0.0

    # commercial workloads hide recovery under cache misses: their
    # PBFS-biased degradation is below the compute-bound suites'
    commercial = [result["rows"][n]["pbfs-biased"]
                  for n in SUITES["commercial"]
                  if n in result["rows"]]
    specint = [result["rows"][n]["pbfs-biased"]
               for n in SUITES["specint"] if n in result["rows"]]
    if commercial and specint:
        assert (sum(commercial) / len(commercial)
                < sum(specint) / len(specint))
