"""Metrics-registry overhead benches.

The telemetry leg's contract is that instrumentation is pure
observation: with metrics *off* every instrumented call site costs one
attribute access on the NULL registry, and with metrics *on* the
fold-per-window bookkeeping stays within 1% of the campaign path's wall
clock. Both sides run identical simulation work, so the delta is
exactly the registry's cost; best-of-N wall times shed scheduler noise.
A micro-bench records the per-call cost of the NULL instruments — the
price every call site pays when nobody is watching.
"""

import pathlib
import time

from repro.harness import ExperimentConfig, ExperimentContext
from repro.harness.store import ResultStore
from repro.obs import MetricsRegistry, NULL_METRICS

#: Same scale as the supervisor-overhead guard: small enough to run in
#: CI, big enough that per-window bookkeeping would show.
_CFG = ExperimentConfig(benchmarks=("mcf",), dynamic_target=4_000,
                        num_faults=16, warmup_commits=250,
                        window_commits=110)

_RESULTS = ResultStore(pathlib.Path(__file__).parent / "results")


def _campaign_seconds(metrics):
    ctx = ExperimentContext(_CFG, jobs=1, metrics=metrics)
    started = time.perf_counter()
    ctx.campaign("mcf")
    ctx.coverage("mcf", "faulthound")
    return time.perf_counter() - started


def _campaign_outcomes(metrics):
    ctx = ExperimentContext(_CFG, jobs=1, metrics=metrics)
    _, characterization = ctx.campaign("mcf")
    coverage = ctx.coverage("mcf", "faulthound")
    return characterization.characterization, coverage.outcomes


def test_metrics_overhead_is_negligible():
    """Campaign wall-clock with a live registry vs the NULL registry:
    the live side must stay within 1%, and the results bit-for-bit
    identical — observation, never perturbation."""
    rounds = 5
    off = min(_campaign_seconds(None) for _ in range(rounds))
    on = min(_campaign_seconds(MetricsRegistry()) for _ in range(rounds))
    overhead = on / off - 1.0

    off_char, off_cov = _campaign_outcomes(None)
    on_char, on_cov = _campaign_outcomes(MetricsRegistry())
    assert on_char == off_char
    assert on_cov == off_cov

    registry = MetricsRegistry()
    _campaign_seconds(registry)
    _RESULTS.save("bench_metrics_overhead", {
        "metrics_off_s": round(off, 3),
        "metrics_on_s": round(on, 3),
        "overhead_pct": round(100 * overhead, 2),
        "rounds": rounds,
        "instruments_populated": len(registry),
        "bit_for_bit": True,
    }, config=_CFG)
    assert overhead <= 0.01, f"metrics overhead {overhead:.1%} > 1%"


def test_null_registry_call_cost_is_nanoseconds():
    """The metrics-off fast path: one NULL counter inc per call site.
    Recorded so a regression (e.g. someone adding allocation to the
    NULL path) shows up as a number, not a hunch."""
    counter = NULL_METRICS.counter("anything")
    loops = 200_000
    started = time.perf_counter()
    for _ in range(loops):
        counter.inc()
    per_call_ns = (time.perf_counter() - started) / loops * 1e9
    _RESULTS.save("bench_null_metrics_call", {
        "per_call_ns": round(per_call_ns, 1),
        "loops": loops,
    }, config=_CFG)
    # generous ceiling: even a slow interpreter stays well under 5 us
    assert per_call_ns < 5_000
