"""Campaign-throughput benches: the parallel execution layer must be
faster than serial where cores allow, and *identical* always.

These time a small characterisation + coverage campaign serially and
with a 2-worker pool, and assert the two produce bit-for-bit equal
results (the tentpole contract: workers re-derive state from explicit
seeds, so fan-out is pure mechanism, never policy). A separate bench
times the warm-cache path, which should be near-instant regardless of
scale.

Two checkpoint benches quantify the deepcopy/replay elimination:
``test_clone_vs_deepcopy`` times the purpose-built ``clone()`` against
``copy.deepcopy`` on a warm core, and
``test_checkpoint_restore_beats_prefix_replay`` times the warm-cache
checkpoint fan-out against the legacy per-worker prefix replay at
jobs=4. Both record windows/sec into ``benchmarks/results``.
"""

import copy
import os
import pathlib
import tempfile
import time

import pytest

from repro.harness import ArtifactCache, ExperimentConfig, ExperimentContext
from repro.harness.parallel import (CheckpointStats, chunk_bounds,
                                    chunk_checkpoints,
                                    classify_windows_parallel)
from repro.harness.store import ResultStore

#: One small benchmark keeps this a guard, not a soak test.
_CFG = ExperimentConfig(benchmarks=("mcf",), dynamic_target=4_000,
                        num_faults=16, warmup_commits=250,
                        window_commits=110)

_RESULTS = ResultStore(pathlib.Path(__file__).parent / "results")


def _campaign_results(jobs, cache=None):
    ctx = ExperimentContext(_CFG, jobs=jobs, cache=cache)
    _, characterization = ctx.campaign("mcf")
    coverage = ctx.coverage("mcf", "faulthound")
    return ctx, characterization, coverage


def test_campaign_serial_throughput(benchmark):
    _, characterization, _ = benchmark.pedantic(
        lambda: _campaign_results(jobs=1), rounds=1, iterations=1)
    assert characterization.throughput is not None
    assert characterization.throughput.windows_per_sec > 0


def test_campaign_parallel_matches_serial(benchmark):
    _, serial_char, serial_cov = _campaign_results(jobs=1)
    _, par_char, par_cov = benchmark.pedantic(
        lambda: _campaign_results(jobs=2), rounds=1, iterations=1)
    # bit-for-bit: same windows, same outcomes, same coverage number
    assert par_char.characterization == serial_char.characterization
    assert par_cov.coverage_results == serial_cov.coverage_results
    assert par_cov.outcomes == serial_cov.outcomes
    assert par_cov.coverage == serial_cov.coverage


def test_campaign_warm_cache_throughput(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(pathlib.Path(tmp))
        _, cold_char, cold_cov = _campaign_results(jobs=1, cache=cache)

        ctx, warm_char, warm_cov = benchmark.pedantic(
            lambda: _campaign_results(jobs=1, cache=cache),
            rounds=1, iterations=1)
        assert ctx.metrics.cache_hits > 0
        assert ctx.metrics.cache_misses == 0
        assert warm_char.throughput.from_cache
        assert warm_char.characterization == cold_char.characterization
        assert warm_cov.outcomes == cold_cov.outcomes


# ----------------------------------------------------------------------
# checkpoint/restore benches
# ----------------------------------------------------------------------
def test_clone_vs_deepcopy():
    """The purpose-built clone() against generic deepcopy on a warm,
    mid-flight FaultHound core — the per-window fork the tandem
    classifier pays for every fault."""
    ctx = ExperimentContext(_CFG, jobs=1)
    core = ctx.make_core("mcf", "faulthound")
    core.run_until_commits(400)

    loops = 20
    started = time.perf_counter()
    for _ in range(loops):
        copy.deepcopy(core)
    deepcopy_seconds = (time.perf_counter() - started) / loops

    started = time.perf_counter()
    for _ in range(loops):
        core.clone()
    clone_seconds = (time.perf_counter() - started) / loops

    speedup = deepcopy_seconds / clone_seconds
    _RESULTS.save("bench_clone_vs_deepcopy", {
        "deepcopy_ms": round(deepcopy_seconds * 1e3, 3),
        "clone_ms": round(clone_seconds * 1e3, 3),
        "speedup": round(speedup, 2),
    }, config=_CFG)
    # the fork must be both equivalent and no slower than deepcopy
    assert core.clone().arch_snapshot() == copy.deepcopy(core).arch_snapshot()
    assert speedup > 1.0


def test_restore_vs_replay_startup():
    """Time to bring a chunk worker to its start boundary — restoring
    the shipped checkpoint vs replaying the golden prefix. This is the
    per-worker cost the dispatcher's golden pass amortises away, and it
    is machine-independent (pure serial work on both sides)."""
    ctx = ExperimentContext(_CFG, jobs=1)
    campaign = ctx.build_campaign("mcf")
    records = campaign.records
    bounds = chunk_bounds(len(records), 4)
    checkpoints = chunk_checkpoints(_CFG, ctx.hw, "mcf", None, records,
                                    bounds, ctx=ctx)
    lo = bounds[-1][0]
    classifier = campaign.classifier(campaign.baseline_factory)

    started = time.perf_counter()
    replayed = campaign.baseline_factory()
    classifier.advance_golden(replayed, records[:lo])
    replay_seconds = time.perf_counter() - started

    started = time.perf_counter()
    restored = checkpoints[-1].restore()
    restore_seconds = time.perf_counter() - started

    # the two startup paths land in the same state
    assert restored.cycle == replayed.cycle
    assert restored.arch_snapshot() == replayed.arch_snapshot()
    speedup = replay_seconds / restore_seconds
    _RESULTS.save("bench_restore_vs_replay_startup", {
        "prefix_windows": lo,
        "replay_ms": round(replay_seconds * 1e3, 2),
        "restore_ms": round(restore_seconds * 1e3, 2),
        "checkpoint_bytes": checkpoints[-1].nbytes,
        "speedup": round(speedup, 1),
    }, config=_CFG)
    assert speedup >= 2.0


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup floor needs >= 4 real cores")
def test_checkpoint_restore_beats_prefix_replay():
    """Warm-cache checkpoint fan-out vs legacy per-worker prefix replay
    at jobs=4: the replay path re-steps O(N^2) golden windows across the
    pool, the checkpoint path restores chunk boundaries and steps O(N).
    The acceptance floor is 2x windows/sec."""
    jobs = 4
    bench_cfg = ExperimentConfig(benchmarks=("mcf",), dynamic_target=4_000,
                                 num_faults=28, warmup_commits=250,
                                 window_commits=110)
    ctx = ExperimentContext(bench_cfg, jobs=jobs)
    campaign = ctx.build_campaign("mcf")
    records = campaign.records
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(pathlib.Path(tmp))
        # one golden pass warms the chunk-boundary checkpoints
        chunk_checkpoints(bench_cfg, ctx.hw, "mcf", None, records,
                          chunk_bounds(len(records), jobs),
                          cache=cache, ctx=ctx, jobs=jobs)

        started = time.perf_counter()
        via_replay = classify_windows_parallel(
            bench_cfg, ctx.hw, "mcf", None,
            [r.fresh_copy() for r in records], ctx._executor,
            use_checkpoints=False)
        replay_seconds = time.perf_counter() - started

        stats = CheckpointStats()
        started = time.perf_counter()
        via_checkpoint = classify_windows_parallel(
            bench_cfg, ctx.hw, "mcf", None,
            [r.fresh_copy() for r in records], ctx._executor,
            cache=cache, ctx=ctx, checkpoint_stats=stats)
        checkpoint_seconds = time.perf_counter() - started

    assert via_checkpoint == via_replay          # same answer, faster
    assert stats.hits > 0 and stats.captured == 0
    replay_wps = len(records) / replay_seconds
    checkpoint_wps = len(records) / checkpoint_seconds
    speedup = checkpoint_wps / replay_wps
    _RESULTS.save("bench_checkpoint_vs_replay", {
        "jobs": jobs,
        "windows": len(records),
        "prefix_replay_windows_per_sec": round(replay_wps, 2),
        "checkpoint_windows_per_sec": round(checkpoint_wps, 2),
        "speedup": round(speedup, 2),
        "golden_pass_seconds": round(stats.golden_pass_seconds, 4),
    }, config=bench_cfg)
    assert speedup >= 2.0


# ----------------------------------------------------------------------
# supervisor overhead
# ----------------------------------------------------------------------
def test_supervisor_overhead_is_negligible():
    """The resilient supervisor (retry/watchdog/quarantine bookkeeping,
    fsync'd journal) must cost <= 3% on a fault-free campaign.

    Measured on the serial dispatch path — identical simulation work on
    both sides, so the delta is exactly the supervisor's bookkeeping —
    with best-of-3 wall times to shed scheduler noise. The supervised
    pool path is timed too and recorded for reference (it additionally
    pays per-phase pool construction, which amortises with campaign
    size and is not supervisor bookkeeping).
    """
    from repro.harness import Supervisor, SupervisorPolicy

    def plain_serial():
        ctx = ExperimentContext(_CFG, jobs=1)
        started = time.perf_counter()
        ctx.campaign("mcf")
        ctx.coverage("mcf", "faulthound")
        return time.perf_counter() - started

    def supervised_serial(run_root):
        sup = Supervisor(SupervisorPolicy(),
                         run_dir=pathlib.Path(run_root) / "run")
        ctx = ExperimentContext(_CFG, jobs=1, supervisor=sup)
        started = time.perf_counter()
        ctx.campaign("mcf")
        ctx.coverage("mcf", "faulthound")
        elapsed = time.perf_counter() - started
        sup.close()
        assert sup.status == "complete"
        return elapsed

    def supervised_pool(run_root):
        sup = Supervisor(SupervisorPolicy(),
                         run_dir=pathlib.Path(run_root) / "run")
        ctx = ExperimentContext(_CFG, jobs=2, supervisor=sup)
        started = time.perf_counter()
        ctx.campaign("mcf")
        ctx.coverage("mcf", "faulthound")
        elapsed = time.perf_counter() - started
        sup.close()
        return elapsed

    rounds = 3
    plain = min(plain_serial() for _ in range(rounds))
    with tempfile.TemporaryDirectory() as tmp:
        supervised = min(
            supervised_serial(os.path.join(tmp, f"s{i}"))
            for i in range(rounds))
        pool = min(supervised_pool(os.path.join(tmp, f"p{i}"))
                   for i in range(rounds))

    overhead = supervised / plain - 1.0
    _RESULTS.save("bench_supervisor_overhead", {
        "plain_serial_s": round(plain, 3),
        "supervised_serial_s": round(supervised, 3),
        "supervised_pool_s": round(pool, 3),
        "serial_overhead_pct": round(100 * overhead, 2),
        "rounds": rounds,
    }, config=_CFG)
    assert overhead <= 0.03, f"supervisor overhead {overhead:.1%} > 3%"
