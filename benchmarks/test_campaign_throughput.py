"""Campaign-throughput benches: the parallel execution layer must be
faster than serial where cores allow, and *identical* always.

These time a small characterisation + coverage campaign serially and
with a 2-worker pool, and assert the two produce bit-for-bit equal
results (the tentpole contract: workers re-derive state from explicit
seeds, so fan-out is pure mechanism, never policy). A separate bench
times the warm-cache path, which should be near-instant regardless of
scale.
"""

import pathlib
import tempfile

from repro.harness import ArtifactCache, ExperimentConfig, ExperimentContext

#: One small benchmark keeps this a guard, not a soak test.
_CFG = ExperimentConfig(benchmarks=("mcf",), dynamic_target=4_000,
                        num_faults=16, warmup_commits=250,
                        window_commits=110)


def _campaign_results(jobs, cache=None):
    ctx = ExperimentContext(_CFG, jobs=jobs, cache=cache)
    _, characterization = ctx.campaign("mcf")
    coverage = ctx.coverage("mcf", "faulthound")
    return ctx, characterization, coverage


def test_campaign_serial_throughput(benchmark):
    _, characterization, _ = benchmark.pedantic(
        lambda: _campaign_results(jobs=1), rounds=1, iterations=1)
    assert characterization.throughput is not None
    assert characterization.throughput.windows_per_sec > 0


def test_campaign_parallel_matches_serial(benchmark):
    _, serial_char, serial_cov = _campaign_results(jobs=1)
    _, par_char, par_cov = benchmark.pedantic(
        lambda: _campaign_results(jobs=2), rounds=1, iterations=1)
    # bit-for-bit: same windows, same outcomes, same coverage number
    assert par_char.characterization == serial_char.characterization
    assert par_cov.coverage_results == serial_cov.coverage_results
    assert par_cov.outcomes == serial_cov.outcomes
    assert par_cov.coverage == serial_cov.coverage


def test_campaign_warm_cache_throughput(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        cache = ArtifactCache(pathlib.Path(tmp))
        _, cold_char, cold_cov = _campaign_results(jobs=1, cache=cache)

        ctx, warm_char, warm_cov = benchmark.pedantic(
            lambda: _campaign_results(jobs=1, cache=cache),
            rounds=1, iterations=1)
        assert ctx.metrics.cache_hits > 0
        assert ctx.metrics.cache_misses == 0
        assert warm_char.throughput.from_cache
        assert warm_char.characterization == cold_char.characterization
        assert warm_cov.outcomes == cold_cov.outcomes
