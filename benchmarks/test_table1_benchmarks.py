"""Table 1: the benchmark roster (paper Section 4, Table 1)."""

from repro.harness import figures
from repro.workloads import PROFILES, build_program


def test_table1_roster(benchmark, record_figure):
    result = benchmark.pedantic(figures.table1, rounds=1, iterations=1)
    record_figure("table1", result["text"], result)
    assert len(result["rows"]) == 14


def test_benchmark_build_throughput(benchmark):
    """Time building one mid-sized workload program (the unit of work the
    whole harness leans on)."""
    program = benchmark(build_program, PROFILES["astar"], 8_000)
    assert len(program) > 10
