"""Collate recorded benchmark results into the performance doc.

Every perf-bearing PR records its before/after numbers as a
``benchmarks/results/bench_*.json`` payload (via
:class:`repro.harness.store.ResultStore`). This script collates them
into one chronological speedup-trajectory table — the repo's running
answer to "what did each optimisation actually buy?" — and embeds it
between the ``bench-summary`` markers in ``docs/performance.md``.

Usage::

    python benchmarks/summarize.py           # rewrite the doc section
    python benchmarks/summarize.py --check   # exit 1 if doc is stale
    make bench-summary

Payloads are heterogeneous by design (each bench records what its
optimisation is about), so per-bench extractors below map known
payloads to table rows; unknown ``bench_*`` files fall back to their
top-level ``speedup`` key when present, and are listed as unsummarised
otherwise — new benches should add an extractor.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Callable, Dict, List, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
DOC_PATH = pathlib.Path(__file__).parent.parent / "docs" / "performance.md"
BEGIN = "<!-- bench-summary:begin -->"
END = "<!-- bench-summary:end -->"

COLUMNS = ("Benchmark", "Measures", "Baseline", "Optimised", "Speedup",
           "Recorded")


def _row(name: str, measures: str, baseline: str, optimised: str,
         speedup, saved_at: str) -> Dict[str, str]:
    if isinstance(speedup, (int, float)):
        speedup = f"{speedup:.2f}x"
    return {"Benchmark": f"`{name}`", "Measures": measures,
            "Baseline": baseline, "Optimised": optimised,
            "Speedup": speedup, "Recorded": (saved_at or "")[:10]}


# ----------------------------------------------------------------------
# per-bench extractors: payload -> rows
# ----------------------------------------------------------------------
def _clone_vs_deepcopy(name, payload, saved_at):
    return [_row(name, "core fork for one tandem window",
                 f"{payload['deepcopy_ms']} ms (`copy.deepcopy`)",
                 f"{payload['clone_ms']} ms (`clone()`)",
                 payload["speedup"], saved_at)]


def _fastforward(name, payload, saved_at):
    rows = []
    campaign = payload.get("campaign")
    if campaign:
        rows.append(_row(
            name, f"{campaign['benchmark']} campaign, event-skip on/off",
            f"{campaign['gated_reference_seconds']} s",
            f"{campaign['fast_seconds']} s", campaign["speedup"], saved_at))
    mcf = payload.get("profiles", {}).get("mcf")
    if mcf:
        rows.append(_row(
            name, "mcf fault-free stepping (cycles/s), "
                  f"{mcf['elided_fraction']:.0%} of cycles elided",
            f"{mcf['gated_reference_cycles_per_sec']:,}",
            f"{mcf['fast_cycles_per_sec']:,}",
            mcf["speedup_vs_gated_reference"], saved_at))
    return rows


def _restore_vs_replay(name, payload, saved_at):
    return [_row(name, "parallel-worker startup "
                       f"({payload['prefix_windows']}-window prefix)",
                 f"{payload['replay_ms']} ms (golden replay)",
                 f"{payload['restore_ms']} ms (checkpoint restore)",
                 payload["speedup"], saved_at)]


def _metrics_overhead(name, payload, saved_at):
    off, on = payload["metrics_off_s"], payload["metrics_on_s"]
    return [_row(name, "campaign with live telemetry on vs off",
                 f"{off} s (metrics off)", f"{on} s (metrics on)",
                 f"{payload['overhead_pct']:+.1f}% overhead", saved_at)]


def _null_metrics_call(name, payload, saved_at):
    return [_row(name, "disabled-registry counter call",
                 "—", f"{payload['per_call_ns']} ns/call", "—", saved_at)]


def _supervisor_overhead(name, payload, saved_at):
    plain, sup = payload["plain_serial_s"], payload["supervised_serial_s"]
    pct = (sup - plain) / plain * 100.0
    return [_row(name, "serial campaign under the supervisor",
                 f"{plain} s (plain)", f"{sup} s (supervised)",
                 f"{pct:+.1f}% overhead", saved_at)]


def _batched_lanes(name, payload, saved_at):
    return [_row(name, "masked-heavy campaign (windows/s), "
                       f"{payload['batch_lanes']} lanes",
                 f"{payload['scalar_windows_per_sec']:,} win/s (scalar)",
                 f"{payload['batched_windows_per_sec']:,} win/s (batched)",
                 payload["speedup"], saved_at)]


EXTRACTORS: Dict[str, Callable] = {
    "bench_clone_vs_deepcopy": _clone_vs_deepcopy,
    "bench_fastforward": _fastforward,
    "bench_restore_vs_replay_startup": _restore_vs_replay,
    "bench_metrics_overhead": _metrics_overhead,
    "bench_null_metrics_call": _null_metrics_call,
    "bench_supervisor_overhead": _supervisor_overhead,
    "bench_batched_lanes": _batched_lanes,
}


def _generic(name, payload, saved_at):
    speedup = payload.get("speedup")
    if speedup is None:
        return []
    return [_row(name, "(no extractor — top-level speedup)", "—", "—",
                 speedup, saved_at)]


# ----------------------------------------------------------------------
# collation
# ----------------------------------------------------------------------
def collect_rows(results_dir: pathlib.Path = RESULTS_DIR
                 ) -> List[Dict[str, str]]:
    entries = []
    for path in sorted(results_dir.glob("bench_*.json")):
        data = json.loads(path.read_text())
        name = data.get("name", path.stem)
        saved_at = data.get("saved_at", "")
        payload = data.get("payload", {})
        extractor = EXTRACTORS.get(name, _generic)
        for row in extractor(name, payload, saved_at):
            entries.append((saved_at, name, row))
    # chronological: the table reads as the optimisation trajectory
    entries.sort(key=lambda e: (e[0], e[1]))
    return [row for _, _, row in entries]


def build_table(rows: List[Dict[str, str]]) -> str:
    if not rows:
        return ("_No recorded benchmark results — run `make bench` to "
                "populate `benchmarks/results/`._")
    lines = ["| " + " | ".join(COLUMNS) + " |",
             "|" + "|".join("---" for _ in COLUMNS) + "|"]
    lines += ["| " + " | ".join(str(row[c]) for c in COLUMNS) + " |"
              for row in rows]
    return "\n".join(lines)


def render_section(results_dir: pathlib.Path = RESULTS_DIR) -> str:
    table = build_table(collect_rows(results_dir))
    return (f"{BEGIN}\n"
            "_Generated by `make bench-summary` from "
            "`benchmarks/results/bench_*.json` — do not edit by hand._\n\n"
            f"{table}\n"
            f"{END}")


def embed(doc_path: pathlib.Path = DOC_PATH,
          results_dir: pathlib.Path = RESULTS_DIR,
          check: bool = False) -> bool:
    """Splice the generated section into *doc_path* between the markers.

    Returns True when the doc already matched (or was updated); with
    *check* the doc is left untouched and a stale doc returns False.
    """
    text = doc_path.read_text()
    begin, end = text.find(BEGIN), text.find(END)
    if begin < 0 or end < 0 or end < begin:
        raise SystemExit(f"{doc_path}: bench-summary markers missing "
                         f"({BEGIN!r} ... {END!r})")
    section = render_section(results_dir)
    updated = text[:begin] + section + text[end + len(END):]
    if updated == text:
        return True
    if check:
        return False
    doc_path.write_text(updated)
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=pathlib.Path,
                        default=RESULTS_DIR,
                        help="results directory (default: %(default)s)")
    parser.add_argument("--doc", type=pathlib.Path, default=DOC_PATH,
                        help="target document (default: %(default)s)")
    parser.add_argument("--check", action="store_true",
                        help="verify the doc is current; exit 1 if stale")
    args = parser.parse_args(argv)
    rows = collect_rows(args.results)
    print(build_table(rows))
    if embed(args.doc, args.results, check=args.check):
        print(f"\n{args.doc}: up to date" if args.check
              else f"\n{args.doc}: updated ({len(rows)} rows)")
        return 0
    print(f"\n{args.doc}: STALE — run `make bench-summary`",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
