"""Command-line interface: ``repro <subcommand>``.

Subcommands
-----------
``repro list``
    Show the available benchmarks, schemes and figures.
``repro run PROGRAM.asm [--scheme S] [--max-cycles N]``
    Assemble and execute a program on the out-of-order core.
``repro bench NAME [--scheme S] [--instructions N]``
    Run one synthetic benchmark fault-free; print timing and energy.
``repro campaign NAME [--faults N] [--scheme S]``
    Fault-injection campaign: characterisation plus scheme coverage.
``repro figure {table1,table2,fig6..fig12} [--scale SCALE]``
    Regenerate one paper table/figure.
``repro verify [--cases N] [--base-seed S] [--scheme S]``
    ISA-differential fuzz: seeded random programs through the OoO core
    and the architectural interpreter in lockstep, with the pipeline
    invariant sanitizer armed (see docs/validation.md).

Observability: ``--emit-events PATH`` streams a structured JSONL event
log (spans, cache traffic, fault audit trail) from any campaign/figure
command; ``--profile`` wraps the command in cProfile; ``repro report
--events PATH`` validates and summarises a recorded log.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from .analysis.metrics import fp_rate
from .config import HardwareConfig
from .energy import EnergyModel
from .errors import ReproError
from .faults import FaultClass
from .harness import (ArtifactCache, ExperimentConfig, ExperimentContext,
                      SCHEMES, figures)
from .harness.experiment import scheme_unit
from .isa import assemble
from .obs import (EventLog, NULL_LOG, build_manifest, format_stage_seconds,
                  load_manifest, manifest_path_for, profiled, read_events,
                  summarize_events, validate_events, verify_manifest,
                  write_manifest)
from .pipeline import PipelineCore
from .workloads import PROFILES, build_smt_programs

_FIGURES = {
    "table1": lambda ctx: figures.table1(),
    "table2": lambda ctx: figures.table2(),
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
}

_SCALES = {
    "quick": ExperimentConfig(benchmarks=("bzip2", "mcf", "gamess", "apache"),
                              dynamic_target=5_000, num_faults=24,
                              warmup_commits=300, window_commits=120),
    "default": ExperimentConfig(),
}


def _add_exec_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=int, default=None,
                     help="worker processes for campaign/figure fan-out "
                          "(default: all CPUs; 1 = serial)")
    sub.add_argument("--no-cache", action="store_true",
                     help="recompute everything instead of using the "
                          "persistent artifact cache")
    sub.add_argument("--emit-events", metavar="PATH", default=None,
                     help="write a structured JSONL event log (spans, "
                          "cache traffic, fault audit trail) to PATH")
    sub.add_argument("--profile", action="store_true",
                     help="cProfile the command and print the hottest "
                          "entries to stderr")


def _make_context(cfg: ExperimentConfig, args,
                  events=None) -> ExperimentContext:
    cache = None if args.no_cache else ArtifactCache.default()
    return ExperimentContext(cfg, jobs=args.jobs, cache=cache,
                             events=events)


@contextmanager
def _session(cfg: ExperimentConfig, args) -> Iterator[ExperimentContext]:
    """An ExperimentContext wired to the requested observability: event
    log opened/closed around the command, optional cProfile, and a
    run-level manifest written next to the event log on exit."""
    events = (EventLog(args.emit_events)
              if getattr(args, "emit_events", None) else NULL_LOG)
    ctx = _make_context(cfg, args, events=events)
    try:
        with profiled(getattr(args, "profile", False)):
            yield ctx
    finally:
        if events.enabled:
            events.close()
            manifest = build_manifest(
                "run", ctx.cfg, ctx.hw, jobs=ctx.jobs,
                phase_seconds=ctx.metrics.phase_seconds,
                metrics={"cache_hits": ctx.metrics.cache_hits,
                         "cache_misses": ctx.metrics.cache_misses,
                         "windows": ctx.metrics.windows,
                         "events": str(events.path)})
            write_manifest(manifest_path_for(events.path), manifest)
            print(f"events: {events.path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FaultHound (ISCA 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run = sub.add_parser("run", help="assemble and run a program")
    run.add_argument("program", help="assembly source file")
    run.add_argument("--scheme", default="faulthound", choices=sorted(SCHEMES))
    run.add_argument("--max-cycles", type=int, default=1_000_000)

    bench = sub.add_parser("bench", help="run one benchmark fault-free")
    bench.add_argument("name", choices=sorted(PROFILES))
    bench.add_argument("--scheme", default="faulthound",
                       choices=sorted(SCHEMES))
    bench.add_argument("--instructions", type=int, default=8_000,
                       help="dynamic target per SMT thread")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile the run and report per-pipeline-"
                            "stage wall-clock")

    campaign = sub.add_parser("campaign", help="fault-injection campaign")
    campaign.add_argument("name", choices=sorted(PROFILES))
    campaign.add_argument("--scheme", default="faulthound",
                          choices=sorted(SCHEMES))
    campaign.add_argument("--faults", type=int, default=60)
    campaign.add_argument("--seed", type=int, default=3)
    _add_exec_flags(campaign)

    figure = sub.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("which", choices=sorted(_FIGURES))
    figure.add_argument("--scale", default="quick", choices=sorted(_SCALES))
    _add_exec_flags(figure)

    report = sub.add_parser(
        "report", help="rebuild EXPERIMENTS.md from benchmarks/results/, "
                       "or validate a recorded event log")
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--events", metavar="PATH", default=None,
                        help="validate and summarise a JSONL event log "
                             "instead of rebuilding EXPERIMENTS.md")
    report.add_argument("--manifest", metavar="PATH", default=None,
                        help="with --events: the run manifest to verify "
                             "(default: PATH's conventional sibling)")

    validate = sub.add_parser(
        "validate", help="measure a workload profile's achieved character")
    validate.add_argument("name", choices=sorted(PROFILES))
    validate.add_argument("--instructions", type=int, default=5_000)

    verify = sub.add_parser(
        "verify", help="ISA-differential fuzz of the pipeline against "
                       "the architectural interpreter (sanitizer armed)")
    verify.add_argument("--cases", type=int, default=200,
                        help="number of consecutive corpus seeds to run")
    verify.add_argument("--base-seed", type=int, default=0,
                        help="first corpus seed")
    verify.add_argument("--scheme", default=None, choices=sorted(SCHEMES),
                        help="force one screening scheme instead of the "
                             "corpus's baseline/faulthound rotation")
    verify.add_argument("--no-sanitizer", action="store_true",
                        help="architectural diff only, skip the per-cycle "
                             "invariant checks")
    verify.add_argument("--sanitize-every", type=int, default=1,
                        help="check invariants every Nth cycle (default 1)")
    verify.add_argument("--max-failures", type=int, default=5,
                        help="print at most this many failing cases")
    verify.add_argument("--emit-events", metavar="PATH", default=None,
                        help="write invariant violations to a JSONL "
                             "event log at PATH")

    return parser


# ----------------------------------------------------------------------
def _cmd_list(_args) -> int:
    print("benchmarks:")
    for name, profile in sorted(PROFILES.items()):
        print(f"  {name:16s} ({profile.suite}, {profile.value_model} values)")
    print("\nschemes:")
    for name in sorted(SCHEMES):
        print(f"  {name}")
    print("\nfigures:")
    print("  " + "  ".join(sorted(_FIGURES)))
    return 0


def _cmd_run(args) -> int:
    with open(args.program) as handle:
        source = handle.read()
    program = assemble(source, name=args.program)
    core = PipelineCore([program], screening=scheme_unit(args.scheme))
    core.run(max_cycles=args.max_cycles)
    if not core.all_halted:
        print(f"warning: hit --max-cycles before HALT", file=sys.stderr)
    for key, value in core.stats.summary().items():
        print(f"{key:24s} {value}")
    thread = core.threads[0]
    regs = [thread.arch_reg_value(r, core.prf) for r in range(8)]
    print("r0-r7:", " ".join(f"{v:#x}" for v in regs))
    return 0


def _cmd_bench(args) -> int:
    hw = HardwareConfig()
    programs = build_smt_programs(PROFILES[args.name], args.instructions)
    with profiled(args.profile):
        baseline = PipelineCore(programs, hw=hw)
        baseline.run(max_cycles=20_000_000)
        core = PipelineCore(programs, hw=hw,
                            screening=scheme_unit(args.scheme))
        if args.profile:
            core.enable_stage_profiling()
        core.run(max_cycles=20_000_000)
    model = EnergyModel()
    base_energy = model.compute(baseline)
    energy = model.compute(core)
    print(f"benchmark            {args.name} ({PROFILES[args.name].suite})")
    print(f"scheme               {args.scheme}")
    print(f"cycles               {core.stats.cycles} "
          f"(baseline {baseline.stats.cycles})")
    print(f"perf degradation     "
          f"{100 * (core.stats.cycles / baseline.stats.cycles - 1):.1f}%")
    print(f"IPC                  {core.stats.ipc:.3f}")
    print(f"false-positive rate  "
          f"{100 * fp_rate(core.screening, core.stats.committed):.2f}%")
    print(f"energy overhead      "
          f"{100 * energy.overhead_vs(base_energy):.1f}%")
    print(f"replays/rollbacks    {core.stats.replay_events}/"
          f"{core.stats.rollback_events}")
    if args.profile:
        print(f"stage wall-clock     "
              f"{format_stage_seconds(core.stage_seconds)}")
    return 0


def _cmd_campaign(args) -> int:
    window = 150
    cfg = ExperimentConfig(
        benchmarks=(args.name,),
        dynamic_target=400 + (args.faults + 2) * window,
        num_faults=args.faults, seed=args.seed,
        warmup_commits=400, window_commits=window,
        max_window_cycles=60_000)
    with _session(cfg, args) as ctx:
        _, characterization = ctx.campaign(args.name)
        print(f"{characterization.applied_count()} faults applied:")
        for fault_class in FaultClass:
            print(f"  {fault_class.value:8s} "
                  f"{100 * characterization.class_fraction(fault_class):5.1f}%")
        coverage = ctx.coverage(args.name, args.scheme)
        print(f"\n{args.scheme} vs {coverage.sdc_count} SDC faults: "
              f"coverage {100 * coverage.coverage:.1f}%")
        for bin_name, fraction in coverage.breakdown().items():
            print(f"  {bin_name:24s} {100 * fraction:5.1f}%")
        print(ctx.metrics.summary(), file=sys.stderr)
    return 0


def _cmd_figure(args) -> int:
    with _session(_SCALES[args.scale], args) as ctx:
        result = _FIGURES[args.which](ctx)
        print(result["text"])
        print(ctx.metrics.summary(), file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    if args.events:
        return _report_events(args)
    from .analysis.report import build_experiments_md
    text = build_experiments_md(args.results)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} from {args.results}/")
    return 0


def _report_events(args) -> int:
    """Validate an event log (and its run manifest); nonzero on any
    schema or provenance error — the CI smoke job's check."""
    try:
        events = read_events(args.events)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    errors = validate_events(events)
    manifest_path = args.manifest or manifest_path_for(args.events)
    if args.manifest or pathlib.Path(manifest_path).exists():
        try:
            manifest = load_manifest(manifest_path)
        except (OSError, ValueError, TypeError) as exc:
            errors.append(f"manifest {manifest_path}: unreadable ({exc})")
        else:
            errors.extend(f"manifest {manifest_path}: {e}"
                          for e in verify_manifest(manifest))
    summary = summarize_events(events)
    summary["schema_errors"] = len(errors)
    print(json.dumps(summary, indent=2))
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


def _cmd_verify(args) -> int:
    """Differential fuzz + invariant sanitizer sweep; nonzero when any
    case diverges from the interpreter or breaks a pipeline invariant."""
    from .harness.diff import run_corpus
    events = EventLog(args.emit_events) if args.emit_events else None
    try:
        report = run_corpus(count=args.cases, base_seed=args.base_seed,
                            scheme=args.scheme,
                            sanitize=not args.no_sanitizer,
                            sanitize_every=args.sanitize_every,
                            events=events)
    finally:
        if events is not None:
            events.close()
            print(f"events: {events.path}", file=sys.stderr)
    summary = report.summary()
    sanitizer = ("off" if args.no_sanitizer
                 else f"every {args.sanitize_every} cycle(s)")
    print(f"cases                {summary['cases']} "
          f"(base seed {args.base_seed})")
    print(f"sanitizer            {sanitizer}")
    print(f"corpus mix           " + "  ".join(
        f"{key}:{count}" for key, count in summary["by_profile"].items()))
    print(f"cycles simulated     {summary['cycles']}")
    print(f"instructions         {summary['commits']}")
    print(f"forwarded loads      {summary['forwarded_loads']}")
    print(f"order violations     {summary['mem_order_violations']}")
    print(f"failures             {summary['failures']}")
    for outcome in report.failures[:args.max_failures]:
        print(f"\nFAIL {outcome.case.label}", file=sys.stderr)
        if outcome.divergence is not None:
            print(f"  divergence: {outcome.divergence}", file=sys.stderr)
        if outcome.invariant_violations:
            print(f"  {outcome.invariant_violations} invariant "
                  f"violation(s), first: {outcome.first_violation}",
                  file=sys.stderr)
    hidden = len(report.failures) - args.max_failures
    if hidden > 0:
        print(f"\n(+{hidden} more failing cases)", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_validate(args) -> int:
    from .workloads.validation import validate_profile
    report = validate_profile(PROFILES[args.name], args.instructions)
    print(f"profile: {args.name}")
    for key, value in report.as_dict().items():
        print(f"  {key:32s} {value}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "bench": _cmd_bench,
    "campaign": _cmd_campaign,
    "figure": _cmd_figure,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "verify": _cmd_verify,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
