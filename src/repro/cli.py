"""Command-line interface: ``repro <subcommand>``.

Subcommands
-----------
``repro list``
    Show the available benchmarks, schemes and figures.
``repro run PROGRAM.asm [--scheme S] [--max-cycles N]``
    Assemble and execute a program on the out-of-order core.
``repro bench NAME [--scheme S] [--instructions N]``
    Run one synthetic benchmark fault-free; print timing and energy.
``repro campaign NAME [--faults N] [--scheme S]``
    Fault-injection campaign: characterisation plus scheme coverage.
    Runs under the resilient supervisor by default (retries, watchdog
    timeouts, poison-window quarantine — see docs/robustness.md); with
    ``--run-dir D`` progress is journaled crash-safely into ``D``.
    With ``--fabric DIR`` chunks are leased to the worker agents
    registered under DIR instead of a local pool, with identical
    results (see docs/distributed.md).
``repro resume RUN_DIR [--fabric DIR]``
    Finish an interrupted ``repro campaign --run-dir RUN_DIR``: only
    the chunks missing from the journal are re-run, and the final
    aggregates are bit-for-bit those of an uninterrupted run.
    ``--fabric`` re-attaches the resume to a distributed fabric;
    without it the resume runs locally — either way converges to the
    same bytes.
``repro agent {start,stop,list}``
    Worker agents for the distributed campaign fabric: ``start`` runs
    a daemon that registers under ``--fabric DIR`` and executes leased
    chunks; ``list`` shows every registered agent and its health;
    ``stop`` shuts agents down (socket first, SIGTERM fallback).
``repro cache {verify,stats,clear}``
    Artifact-cache maintenance; ``verify`` sweeps every entry and
    quarantines unreadable pickles.
``repro figure {table1,table2,fig6..fig12} [--scale SCALE]``
    Regenerate one paper table/figure.
``repro verify [--cases N] [--base-seed S] [--scheme S]``
    ISA-differential fuzz: seeded random programs through the OoO core
    and the architectural interpreter in lockstep, with the pipeline
    invariant sanitizer armed (see docs/validation.md).
``repro status RUN_DIR [--json]``
    One snapshot of a (possibly still running) supervised campaign:
    per-phase progress, worker health, throughput/ETA and the running
    fault-audit aggregates, folded live from the run directory's
    journal and event log.
``repro top RUN_DIR [--interval S]``
    The same snapshot, refreshed in place until the campaign finishes.
``repro tail TARGET [--type T ...] [--follow]``
    Print events from a run's JSONL log, optionally filtered by type
    and followed as they arrive.
``repro metrics export SOURCE``
    Prometheus text exposition of the metrics snapshots recorded in a
    run's event log.
``repro compile SPEC.src.json [-o OUT.run.json]``
    Compile a declarative campaign spec (sweep axes over defaults)
    into its explicit, content-addressed ``.run.json`` task list
    (see docs/serving.md).
``repro serve DIR [--jobs N] [--max-active K]``
    Long-lived campaign job server over DIR: adopts submissions from
    ``DIR/queue/``, runs them by priority as one-shot-equivalent
    ``repro campaign`` subprocesses with job-scoped run dirs, and
    answers a unix-socket control plane (status/cancel/resume).
``repro submit SPEC --serve-dir DIR [--priority P] [--wait]``
    Queue a campaign spec (``.src.json`` compiled on the fly) for the
    server; with ``--wait``, block and exit with the job's one-shot-
    parity exit code.
``repro jobs {list,status,cancel,resume} DIR [JOB]``
    Inspect and steer submitted jobs, live via the server socket or
    offline from the serve directory.

Observability: ``--emit-events PATH`` streams a structured JSONL event
log (spans, cache traffic, fault audit trail) from any campaign/figure
command; a campaign with ``--run-dir D`` defaults the log to
``D/events.jsonl`` so the live monitor has something to tail;
``--profile`` wraps the command in cProfile; ``repro report --events
PATH`` validates and summarises a recorded log.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from .analysis.metrics import fp_rate
from .config import HardwareConfig
from .energy import EnergyModel
from .errors import ReproError
from .faults import FaultClass
from .harness import (ArtifactCache, ExperimentConfig, ExperimentContext,
                      SCHEMES, figures)
from .harness.experiment import scheme_unit
from .isa import assemble
from .obs import (CampaignMonitor, EventLog, JsonlFollower, MetricsRegistry,
                  NULL_LOG, aggregates_from_events, build_manifest,
                  format_stage_seconds, load_manifest, manifest_path_for,
                  profiled, read_events, render_status, snapshot_from_events,
                  summarize_events, to_prometheus, validate_events,
                  verify_manifest, write_manifest)
from .pipeline import PipelineCore
from .workloads import PROFILES, build_smt_programs

_FIGURES = {
    "table1": lambda ctx: figures.table1(),
    "table2": lambda ctx: figures.table2(),
    "fig6": figures.fig6,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
}

_SCALES = {
    "quick": ExperimentConfig(benchmarks=("bzip2", "mcf", "gamess", "apache"),
                              dynamic_target=5_000, num_faults=24,
                              warmup_commits=300, window_commits=120),
    "default": ExperimentConfig(),
}


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 — a value below the
    bound is a parser error, never a silent clamp."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {value})")
    return value


def _add_exec_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--jobs", type=int, default=None,
                     help="worker processes for campaign/figure fan-out "
                          "(default: all CPUs; 1 = serial)")
    sub.add_argument("--no-cache", action="store_true",
                     help="recompute everything instead of using the "
                          "persistent artifact cache")
    sub.add_argument("--emit-events", metavar="PATH", default=None,
                     help="write a structured JSONL event log (spans, "
                          "cache traffic, fault audit trail) to PATH")
    sub.add_argument("--profile", action="store_true",
                     help="cProfile the command and print the hottest "
                          "entries to stderr")


def _add_supervisor_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--run-dir", metavar="DIR", default=None,
                     help="journal campaign progress crash-safely into "
                          "DIR (enables `repro resume DIR`)")
    sub.add_argument("--max-retries", type=int, default=3,
                     help="extra attempts per window chunk before "
                          "bisecting toward quarantine (default 3)")
    sub.add_argument("--chunk-timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="hard watchdog deadline per chunk attempt "
                          "(default: soft deadline only, derived from "
                          "golden-pass throughput)")
    sub.add_argument("--chunk-windows", type=int, default=8,
                     help="target windows per supervised chunk — the "
                          "journal/retry granularity (default 8)")
    sub.add_argument("--no-supervise", action="store_true",
                     help="bypass the resilient supervisor and use the "
                          "bare dispatcher (no retries, no journal)")
    sub.add_argument("--fabric", metavar="DIR", default=None,
                     help="dispatch chunks to the worker agents "
                          "registered under this fabric directory "
                          "(start them with `repro agent start "
                          "--fabric DIR`); results are bit-for-bit "
                          "identical to local execution")


def _make_context(cfg: ExperimentConfig, args, events=None,
                  supervisor=None, metrics=None) -> ExperimentContext:
    cache = None if args.no_cache else ArtifactCache.default()
    return ExperimentContext(cfg, jobs=args.jobs, cache=cache,
                             events=events, supervisor=supervisor,
                             metrics=metrics)


@contextmanager
def _session(cfg: ExperimentConfig, args,
             supervisor=None) -> Iterator[ExperimentContext]:
    """An ExperimentContext wired to the requested observability: event
    log opened/closed around the command, optional cProfile, and a
    run-level manifest written next to the event log on exit. When the
    event log is live a real metrics registry rides along (otherwise
    the harness keeps the zero-cost NULL registry) and its final
    snapshot is emitted as the log's closing ``metrics`` event."""
    events = (EventLog(args.emit_events)
              if getattr(args, "emit_events", None) else NULL_LOG)
    registry = MetricsRegistry() if events.enabled else None
    ctx = _make_context(cfg, args, events=events, supervisor=supervisor,
                        metrics=registry)
    try:
        with profiled(getattr(args, "profile", False)):
            yield ctx
    finally:
        if events.enabled:
            ctx.metrics_registry.emit(events)
            events.close()
            manifest = build_manifest(
                "run", ctx.cfg, ctx.hw, jobs=ctx.jobs,
                phase_seconds=ctx.metrics.phase_seconds,
                metrics={"cache_hits": ctx.metrics.cache_hits,
                         "cache_misses": ctx.metrics.cache_misses,
                         "windows": ctx.metrics.windows,
                         "events": str(events.path)})
            write_manifest(manifest_path_for(events.path), manifest)
            print(f"events: {events.path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FaultHound (ISCA 2015) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, schemes and figures")

    run = sub.add_parser("run", help="assemble and run a program")
    run.add_argument("program", help="assembly source file")
    run.add_argument("--scheme", default="faulthound", choices=sorted(SCHEMES))
    run.add_argument("--max-cycles", type=int, default=1_000_000)

    bench = sub.add_parser("bench", help="run one benchmark fault-free")
    bench.add_argument("name", choices=sorted(PROFILES))
    bench.add_argument("--scheme", default="faulthound",
                       choices=sorted(SCHEMES))
    bench.add_argument("--instructions", type=int, default=8_000,
                       help="dynamic target per SMT thread")
    bench.add_argument("--profile", action="store_true",
                       help="cProfile the run and report per-pipeline-"
                            "stage wall-clock")

    campaign = sub.add_parser("campaign", help="fault-injection campaign")
    campaign.add_argument("name", choices=sorted(PROFILES))
    campaign.add_argument("--scheme", default="faulthound",
                          choices=sorted(SCHEMES))
    campaign.add_argument("--faults", type=int, default=60)
    campaign.add_argument("--seed", type=int, default=3)
    campaign.add_argument("--batch-lanes", type=_positive_int, default=1,
                          dest="batch_lanes", metavar="K",
                          help="group K fault windows into one batched "
                               "tandem lane batch (dormant faults skip "
                               "the clone and faulty re-execution); "
                               "results are bit-for-bit identical to "
                               "the default scalar path (K=1)")
    _add_exec_flags(campaign)
    _add_supervisor_flags(campaign)

    resume = sub.add_parser(
        "resume", help="finish an interrupted campaign from its run "
                       "directory's crash-safe journal")
    resume.add_argument("run_dir", help="the --run-dir of the "
                                        "interrupted campaign")
    resume.add_argument("--jobs", type=int, default=None,
                        help="override the original worker count")
    resume.add_argument("--emit-events", metavar="PATH", default=None,
                        help="write this resume's event log to PATH")
    resume.add_argument("--fabric", metavar="DIR", default=None,
                        help="re-attach the resume to a distributed "
                             "fabric (default: run locally; results "
                             "are identical either way)")

    cache_cmd = sub.add_parser("cache", help="artifact cache maintenance")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command",
                                         required=True)
    cache_verify = cache_sub.add_parser(
        "verify", help="integrity sweep: unpickle every entry, "
                       "quarantine unreadable ones")
    cache_verify.add_argument("--no-quarantine", action="store_true",
                              help="delete corrupt entries instead of "
                                   "moving them to <root>/quarantine/")
    cache_verify.add_argument("--strict", action="store_true",
                              help="exit nonzero when any entry is "
                                   "corrupt")
    cache_stats = cache_sub.add_parser("stats",
                                       help="entry count and location")
    cache_clear = cache_sub.add_parser("clear",
                                       help="delete every cache entry")
    for sub_cmd in (cache_verify, cache_stats, cache_clear):
        sub_cmd.add_argument("--cache-dir", default=None,
                             help="cache root (default: REPRO_CACHE_DIR "
                                  "or benchmarks/.cache)")

    figure = sub.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("which", choices=sorted(_FIGURES))
    figure.add_argument("--scale", default="quick", choices=sorted(_SCALES))
    _add_exec_flags(figure)

    report = sub.add_parser(
        "report", help="rebuild EXPERIMENTS.md from benchmarks/results/, "
                       "or validate a recorded event log")
    report.add_argument("--results", default="benchmarks/results")
    report.add_argument("--output", default="EXPERIMENTS.md")
    report.add_argument("--events", metavar="PATH", default=None,
                        help="validate and summarise a JSONL event log "
                             "instead of rebuilding EXPERIMENTS.md")
    report.add_argument("--manifest", metavar="PATH", default=None,
                        help="with --events: the run manifest to verify "
                             "(default: PATH's conventional sibling)")
    report.add_argument("--run-dir", metavar="DIR", default=None,
                        help="summarise a supervised campaign run "
                             "directory (journal + poisoned windows)")

    status = sub.add_parser(
        "status", help="one snapshot of a supervised campaign run "
                       "directory (works while it is still running)")
    status.add_argument("run_dir", help="the campaign's --run-dir")
    status.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable CampaignStatus instead "
                             "of the rendered summary")

    top = sub.add_parser(
        "top", help="live refreshing view of a running campaign "
                    "(exits when the campaign finishes)")
    top.add_argument("run_dir", help="the campaign's --run-dir")
    top.add_argument("--interval", type=float, default=1.0,
                     help="seconds between refreshes (default 1)")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after N refreshes instead of waiting "
                          "for the campaign to finish")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (= --iterations 1)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of redrawing in place")

    tail = sub.add_parser(
        "tail", help="print a run's JSONL events, optionally filtered "
                     "and followed live")
    tail.add_argument("target", help="run directory or events.jsonl path")
    tail.add_argument("--type", action="append", dest="types",
                      metavar="TYPE", default=None,
                      help="only events of this type (repeatable)")
    tail.add_argument("--follow", "-f", action="store_true",
                      help="keep polling for new events (Ctrl-C stops)")
    tail.add_argument("--interval", type=float, default=0.5,
                      help="poll interval with --follow (default 0.5s)")
    tail.add_argument("--max-events", type=int, default=None,
                      help="stop after printing N events")

    metrics_cmd = sub.add_parser(
        "metrics", help="metrics-registry tooling")
    metrics_sub = metrics_cmd.add_subparsers(dest="metrics_command",
                                             required=True)
    metrics_export = metrics_sub.add_parser(
        "export", help="Prometheus text exposition of the metrics "
                       "snapshots in a recorded event log")
    metrics_export.add_argument(
        "source", help="run directory or events.jsonl path")
    metrics_export.add_argument(
        "--namespace", default="repro",
        help="metric-name prefix (default: repro)")

    compile_cmd = sub.add_parser(
        "compile", help="compile a campaign .src.json spec into its "
                        "explicit .run.json task list")
    compile_cmd.add_argument("spec", help="path to the .src.json spec")
    compile_cmd.add_argument("--output", "-o", default=None,
                             metavar="PATH",
                             help="where to write the run spec "
                                  "(default: sibling .run.json)")

    serve = sub.add_parser(
        "serve", help="long-lived campaign job server: adopts specs "
                      "from DIR/queue/, runs them by priority with "
                      "one-shot CLI parity")
    serve.add_argument("serve_dir", metavar="DIR",
                       help="serve directory (queue, job state, logs)")
    serve.add_argument("--jobs", type=int, default=None,
                       help="total worker budget shared across active "
                            "jobs (default: each task decides)")
    serve.add_argument("--max-active", type=_positive_int, default=1,
                       help="jobs running concurrently (default 1)")
    serve.add_argument("--poll-interval", type=float, default=0.25,
                       help="queue/subprocess poll cadence in seconds")
    serve.add_argument("--max-jobs", type=int, default=None,
                       help="exit after N jobs reach a terminal state "
                            "(CI/test knob; default: serve forever)")
    serve.add_argument("--idle-exit", type=float, default=None,
                       metavar="SECONDS",
                       help="exit after the queue has been empty this "
                            "long (CI/test knob)")
    serve.add_argument("--no-events", action="store_true",
                       help="skip the server-events.jsonl lifecycle log")

    submit = sub.add_parser(
        "submit", help="queue a campaign spec (.src.json is compiled "
                       "on the fly) for a `repro serve` server")
    submit.add_argument("spec", help=".src.json or .run.json spec path")
    submit.add_argument("--serve-dir", required=True, metavar="DIR",
                        help="the server's serve directory")
    submit.add_argument("--priority", type=int, default=None,
                        help="override the spec's priority "
                             "(higher runs first)")
    submit.add_argument("--name", default=None,
                        help="override the spec's job name")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and exit "
                             "with its one-shot-parity exit code")
    submit.add_argument("--timeout", type=float, default=None,
                        help="give up --wait after this many seconds")

    jobs_cmd = sub.add_parser(
        "jobs", help="inspect and steer jobs submitted to a server")
    jobs_sub = jobs_cmd.add_subparsers(dest="jobs_command", required=True)
    jobs_list = jobs_sub.add_parser("list", help="every known job")
    jobs_list.add_argument("serve_dir", metavar="DIR")
    jobs_list.add_argument("--json", action="store_true", dest="as_json",
                           help="machine-readable summaries")
    jobs_status = jobs_sub.add_parser(
        "status", help="one job's document, plus live progress when "
                       "the server is up and the job is running")
    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="stop a running job (graceful supervisor drain) "
                       "or drop a queued one")
    jobs_resume = jobs_sub.add_parser(
        "resume", help="requeue a failed/cancelled/interrupted job; "
                       "settled tasks are kept, the rest re-run as "
                       "journal resumes")
    for sub_cmd in (jobs_status, jobs_cancel, jobs_resume):
        sub_cmd.add_argument("serve_dir", metavar="DIR")
        sub_cmd.add_argument("job_id", metavar="JOB")

    agent_cmd = sub.add_parser(
        "agent", help="worker agents for the distributed campaign "
                      "fabric (see docs/distributed.md)")
    agent_sub = agent_cmd.add_subparsers(dest="agent_command",
                                         required=True)
    agent_start = agent_sub.add_parser(
        "start", help="run a worker agent daemon: registers under the "
                      "fabric directory and executes leased chunks "
                      "until stopped")
    agent_start.add_argument("--fabric", required=True, metavar="DIR",
                             help="fabric directory shared with the "
                                  "campaign (registry + chunk store)")
    agent_start.add_argument("--name", default=None,
                             help="agent name (default: agent-<pid>)")
    agent_start.add_argument("--slots", type=_positive_int, default=1,
                             help="concurrent chunk leases this agent "
                                  "accepts (default 1)")
    agent_start.add_argument("--idle-exit", type=float, default=None,
                             metavar="SECONDS",
                             help="exit after this long without a "
                                  "running chunk (CI/test knob)")
    agent_list = agent_sub.add_parser(
        "list", help="every agent registered under a fabric directory "
                     "and its health (live/unreachable/dead)")
    agent_list.add_argument("--fabric", required=True, metavar="DIR")
    agent_list.add_argument("--json", action="store_true",
                            dest="as_json",
                            help="machine-readable agent rows")
    agent_stop = agent_sub.add_parser(
        "stop", help="shut down agents (socket shutdown verb, SIGTERM "
                     "fallback) and sweep dead registry records")
    agent_stop.add_argument("--fabric", required=True, metavar="DIR")
    agent_stop.add_argument("names", nargs="*", metavar="NAME",
                            help="agents to stop (default: all)")

    validate = sub.add_parser(
        "validate", help="measure a workload profile's achieved character")
    validate.add_argument("name", choices=sorted(PROFILES))
    validate.add_argument("--instructions", type=int, default=5_000)

    verify = sub.add_parser(
        "verify", help="ISA-differential fuzz of the pipeline against "
                       "the architectural interpreter (sanitizer armed)")
    verify.add_argument("--cases", type=int, default=200,
                        help="number of consecutive corpus seeds to run")
    verify.add_argument("--base-seed", type=int, default=0,
                        help="first corpus seed")
    verify.add_argument("--scheme", default=None, choices=sorted(SCHEMES),
                        help="force one screening scheme instead of the "
                             "corpus's baseline/faulthound rotation")
    verify.add_argument("--no-sanitizer", action="store_true",
                        help="architectural diff only, skip the per-cycle "
                             "invariant checks")
    verify.add_argument("--sanitize-every", type=int, default=1,
                        help="check invariants every Nth cycle (default 1)")
    verify.add_argument("--max-failures", type=int, default=5,
                        help="print at most this many failing cases")
    verify.add_argument("--emit-events", metavar="PATH", default=None,
                        help="write invariant violations to a JSONL "
                             "event log at PATH")

    return parser


# ----------------------------------------------------------------------
def _cmd_list(_args) -> int:
    print("benchmarks:")
    for name, profile in sorted(PROFILES.items()):
        print(f"  {name:16s} ({profile.suite}, {profile.value_model} values)")
    print("\nschemes:")
    for name in sorted(SCHEMES):
        print(f"  {name}")
    print("\nfigures:")
    print("  " + "  ".join(sorted(_FIGURES)))
    return 0


def _cmd_run(args) -> int:
    with open(args.program) as handle:
        source = handle.read()
    program = assemble(source, name=args.program)
    core = PipelineCore([program], screening=scheme_unit(args.scheme))
    core.run(max_cycles=args.max_cycles)
    if not core.all_halted:
        print(f"warning: hit --max-cycles before HALT", file=sys.stderr)
    for key, value in core.stats.summary().items():
        print(f"{key:24s} {value}")
    thread = core.threads[0]
    regs = [thread.arch_reg_value(r, core.prf) for r in range(8)]
    print("r0-r7:", " ".join(f"{v:#x}" for v in regs))
    return 0


def _cmd_bench(args) -> int:
    hw = HardwareConfig()
    programs = build_smt_programs(PROFILES[args.name], args.instructions)
    with profiled(args.profile):
        baseline = PipelineCore(programs, hw=hw)
        baseline.run(max_cycles=20_000_000)
        core = PipelineCore(programs, hw=hw,
                            screening=scheme_unit(args.scheme))
        if args.profile:
            core.enable_stage_profiling()
        core.run(max_cycles=20_000_000)
    model = EnergyModel()
    base_energy = model.compute(baseline)
    energy = model.compute(core)
    print(f"benchmark            {args.name} ({PROFILES[args.name].suite})")
    print(f"scheme               {args.scheme}")
    print(f"cycles               {core.stats.cycles} "
          f"(baseline {baseline.stats.cycles})")
    print(f"perf degradation     "
          f"{100 * (core.stats.cycles / baseline.stats.cycles - 1):.1f}%")
    print(f"IPC                  {core.stats.ipc:.3f}")
    print(f"false-positive rate  "
          f"{100 * fp_rate(core.screening, core.stats.committed):.2f}%")
    print(f"energy overhead      "
          f"{100 * energy.overhead_vs(base_energy):.1f}%")
    print(f"replays/rollbacks    {core.stats.replay_events}/"
          f"{core.stats.rollback_events}")
    if args.profile:
        print(f"stage wall-clock     "
              f"{format_stage_seconds(core.stage_seconds)}")
    return 0


def _campaign_config(args) -> ExperimentConfig:
    window = 150
    return ExperimentConfig(
        benchmarks=(args.name,),
        dynamic_target=400 + (args.faults + 2) * window,
        num_faults=args.faults, seed=args.seed,
        warmup_commits=400, window_commits=window,
        max_window_cycles=60_000,
        batch_lanes=getattr(args, "batch_lanes", 1))


def _save_campaign_args(args) -> None:
    """Persist the identity-bearing CLI arguments into the run dir so
    ``repro resume`` can rebuild the exact same campaign."""
    run_dir = pathlib.Path(args.run_dir)
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest = run_dir / "campaign.json"
    if manifest.exists():        # resuming: the original args win
        return
    document = {"command": "campaign", "name": args.name,
                "scheme": args.scheme, "faults": args.faults,
                "seed": args.seed, "jobs": args.jobs,
                "batch_lanes": getattr(args, "batch_lanes", 1),
                "no_cache": bool(args.no_cache),
                "max_retries": args.max_retries,
                "chunk_timeout": args.chunk_timeout,
                "chunk_windows": args.chunk_windows}
    # atomic write: a SIGKILL mid-write must never leave a truncated
    # manifest that would block `repro resume`
    tmp = manifest.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(document, indent=2, sort_keys=True))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, manifest)


def _cmd_campaign(args) -> int:
    from .harness.supervisor import (CampaignAborted, EXIT_ABORTED,
                                     Supervisor, SupervisorPolicy)
    cfg = _campaign_config(args)
    fabric = getattr(args, "fabric", None)
    if fabric and getattr(args, "no_supervise", False):
        print("error: --fabric requires the supervisor "
              "(drop --no-supervise)", file=sys.stderr)
        return 1
    if args.run_dir and not getattr(args, "emit_events", None):
        # a journaled campaign defaults its event log into the run dir
        # so `repro top/status/tail` have something to follow; stderr
        # only — stdout stays byte-identical for the equivalence checks
        args.emit_events = str(pathlib.Path(args.run_dir) / "events.jsonl")
        print(f"events: {args.emit_events}", file=sys.stderr)
    supervisor = None
    if not getattr(args, "no_supervise", False):
        policy = SupervisorPolicy(max_retries=args.max_retries,
                                  chunk_timeout=args.chunk_timeout,
                                  chunk_windows=args.chunk_windows)
        executor = None
        if fabric:
            from .harness.executor import RemoteChunkExecutor
            executor = RemoteChunkExecutor(fabric)
        if args.run_dir:   # before the journal exists: a run dir with a
            _save_campaign_args(args)   # journal is always resumable
        supervisor = Supervisor(policy, run_dir=args.run_dir,
                                executor=executor)
    try:
        with _session(cfg, args, supervisor=supervisor) as ctx:
            if supervisor is None:
                _print_campaign(ctx, args)
                return 0
            with supervisor.graceful():
                _print_campaign(ctx, args)
            _print_quarantine(supervisor)
            return supervisor.exit_code
    except CampaignAborted as exc:
        print(f"aborted: {exc}", file=sys.stderr)
        return EXIT_ABORTED
    finally:
        if supervisor is not None:
            supervisor.close()


def _print_campaign(ctx: ExperimentContext, args) -> None:
    _, characterization = ctx.campaign(args.name)
    print(f"{characterization.applied_count()} faults applied:")
    for fault_class in FaultClass:
        print(f"  {fault_class.value:8s} "
              f"{100 * characterization.class_fraction(fault_class):5.1f}%")
    coverage = ctx.coverage(args.name, args.scheme)
    print(f"\n{args.scheme} vs {coverage.sdc_count} SDC faults: "
          f"coverage {100 * coverage.coverage:.1f}%")
    for bin_name, fraction in coverage.breakdown().items():
        print(f"  {bin_name:24s} {100 * fraction:5.1f}%")
    print(ctx.metrics.summary(), file=sys.stderr)


def _print_quarantine(supervisor) -> None:
    quarantined = supervisor.quarantined
    if not quarantined:
        return
    print(f"\nwarning: {len(quarantined)} poison window(s) quarantined:",
          file=sys.stderr)
    for q in quarantined:
        print(f"  {q.phase}/{q.scheme} window {q.index} "
              f"(site {q.site}, bit {q.bit}): {q.reason} "
              f"after {q.attempts} attempt(s)", file=sys.stderr)
    if supervisor.run_dir is not None:
        print(f"  details: {supervisor.run_dir / 'poisoned.jsonl'}",
              file=sys.stderr)


def _cmd_resume(args) -> int:
    run_dir = pathlib.Path(args.run_dir)
    manifest = run_dir / "campaign.json"
    if not manifest.exists():
        print(f"error: {manifest} not found — was the campaign started "
              f"with --run-dir?", file=sys.stderr)
        return 1
    try:
        saved = json.loads(manifest.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: unreadable {manifest}: {exc}", file=sys.stderr)
        return 1
    if int(saved.get("batch_lanes", 1)) < 1:
        print(f"error: {manifest} records batch_lanes="
              f"{saved.get('batch_lanes')}; must be >= 1",
              file=sys.stderr)
        return 1
    namespace = argparse.Namespace(
        command="campaign", name=saved["name"], scheme=saved["scheme"],
        faults=saved["faults"], seed=saved["seed"],
        batch_lanes=int(saved.get("batch_lanes", 1)),
        jobs=args.jobs if args.jobs is not None else saved.get("jobs"),
        no_cache=bool(saved.get("no_cache", False)),
        emit_events=args.emit_events, profile=False,
        run_dir=str(run_dir), no_supervise=False,
        max_retries=int(saved.get("max_retries", 3)),
        chunk_timeout=saved.get("chunk_timeout"),
        chunk_windows=int(saved.get("chunk_windows", 8)),
        # the fabric is an execution venue, not campaign identity —
        # campaign.json never records it, the resume flag decides
        fabric=getattr(args, "fabric", None))
    return _cmd_campaign(namespace)


def _cmd_cache(args) -> int:
    cache = (ArtifactCache(args.cache_dir) if args.cache_dir
             else ArtifactCache.default())
    if args.cache_command == "stats":
        print(f"root     {cache.root}")
        print(f"entries  {cache.entry_count()}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0
    report = cache.verify(quarantine=not args.no_quarantine)
    print(json.dumps({key: value for key, value in report.items()
                      if key != "entries"}, indent=2))
    for entry in report["entries"]:
        print(f"corrupt: {entry['kind']}/{entry['key']} "
              f"({entry['error']}) -> {entry['action']}", file=sys.stderr)
    return 1 if (report["corrupt"] and args.strict) else 0


def _cmd_figure(args) -> int:
    with _session(_SCALES[args.scale], args) as ctx:
        result = _FIGURES[args.which](ctx)
        print(result["text"])
        print(ctx.metrics.summary(), file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    if args.events:
        return _report_events(args)
    if args.run_dir:
        return _report_run_dir(args)
    from .analysis.report import build_experiments_md
    text = build_experiments_md(args.results)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output} from {args.results}/")
    return 0


def _report_events(args) -> int:
    """Validate an event log (and its run manifest); nonzero on any
    schema or provenance error — the CI smoke job's check."""
    try:
        events = read_events(args.events)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    errors = validate_events(events)
    manifest_path = args.manifest or manifest_path_for(args.events)
    if args.manifest or pathlib.Path(manifest_path).exists():
        try:
            manifest = load_manifest(manifest_path)
        except (OSError, ValueError, TypeError) as exc:
            errors.append(f"manifest {manifest_path}: unreadable ({exc})")
        else:
            errors.extend(f"manifest {manifest_path}: {e}"
                          for e in verify_manifest(manifest))
    summary = summarize_events(events)
    summary["schema_errors"] = len(errors)
    summary["aggregates"] = aggregates_from_events(events)
    print(json.dumps(summary, indent=2))
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    return 1 if errors else 0


def _report_run_dir(args) -> int:
    """Summarise a supervised campaign's run directory: journal record
    counts, per-phase progress, and every quarantined poison window."""
    from .harness.supervisor import summarize_run_dir
    run_dir = pathlib.Path(args.run_dir)
    if not (run_dir / "journal.jsonl").exists():
        print(f"error: no journal.jsonl under {run_dir}", file=sys.stderr)
        return 1
    print(json.dumps(summarize_run_dir(run_dir), indent=2))
    return 0


def _cmd_verify(args) -> int:
    """Differential fuzz + invariant sanitizer sweep; nonzero when any
    case diverges from the interpreter or breaks a pipeline invariant."""
    from .harness.diff import run_corpus
    events = EventLog(args.emit_events) if args.emit_events else None
    try:
        report = run_corpus(count=args.cases, base_seed=args.base_seed,
                            scheme=args.scheme,
                            sanitize=not args.no_sanitizer,
                            sanitize_every=args.sanitize_every,
                            events=events)
    finally:
        if events is not None:
            events.close()
            print(f"events: {events.path}", file=sys.stderr)
    summary = report.summary()
    sanitizer = ("off" if args.no_sanitizer
                 else f"every {args.sanitize_every} cycle(s)")
    print(f"cases                {summary['cases']} "
          f"(base seed {args.base_seed})")
    print(f"sanitizer            {sanitizer}")
    print(f"corpus mix           " + "  ".join(
        f"{key}:{count}" for key, count in summary["by_profile"].items()))
    print(f"cycles simulated     {summary['cycles']}")
    print(f"instructions         {summary['commits']}")
    print(f"forwarded loads      {summary['forwarded_loads']}")
    print(f"order violations     {summary['mem_order_violations']}")
    print(f"failures             {summary['failures']}")
    for outcome in report.failures[:args.max_failures]:
        print(f"\nFAIL {outcome.case.label}", file=sys.stderr)
        if outcome.divergence is not None:
            print(f"  divergence: {outcome.divergence}", file=sys.stderr)
        if outcome.invariant_violations:
            print(f"  {outcome.invariant_violations} invariant "
                  f"violation(s), first: {outcome.first_violation}",
                  file=sys.stderr)
    hidden = len(report.failures) - args.max_failures
    if hidden > 0:
        print(f"\n(+{hidden} more failing cases)", file=sys.stderr)
    return 0 if report.ok else 1


def _events_path(target: str) -> pathlib.Path:
    """Accept either a run directory or an events.jsonl path."""
    path = pathlib.Path(target)
    return path / "events.jsonl" if path.is_dir() else path


def _cmd_status(args) -> int:
    """One CampaignMonitor poll over the run directory; the JSON form
    is the machine interface the live-monitor CI smoke job diffs
    against ``repro report --events``."""
    run_dir = pathlib.Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: {run_dir} is not a run directory", file=sys.stderr)
        return 1
    status = CampaignMonitor(run_dir).poll()
    if args.as_json:
        print(json.dumps(status.as_json(), indent=2, sort_keys=True))
    else:
        print(render_status(status))
    return 0


def _cmd_top(args) -> int:
    """Refresh the status frame until the campaign finishes (or for a
    fixed number of iterations, the testable path)."""
    run_dir = pathlib.Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"error: {run_dir} is not a run directory", file=sys.stderr)
        return 1
    monitor = CampaignMonitor(run_dir)
    limit = 1 if args.once else args.iterations
    clear = not args.no_clear and sys.stdout.isatty()
    frames = 0
    try:
        while True:
            status = monitor.poll()
            if clear and frames:
                print("\x1b[2J\x1b[H", end="")
            print(render_status(status))
            frames += 1
            if limit is not None and frames >= limit:
                break
            if status.finished:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_tail(args) -> int:
    """Filtered event stream off a JsonlFollower — the raw counterpart
    to the folded ``repro status`` view."""
    path = _events_path(args.target)
    if not path.exists() and not args.follow:
        print(f"error: {path} not found", file=sys.stderr)
        return 1
    follower = JsonlFollower(path)
    wanted = set(args.types) if args.types else None
    printed = 0
    try:
        while True:
            for event in follower.poll():
                if wanted is not None and event.get("type") not in wanted:
                    continue
                print(json.dumps(event, sort_keys=True))
                printed += 1
                if args.max_events and printed >= args.max_events:
                    return 0
            if not args.follow:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_metrics(args) -> int:
    """Prometheus text exposition of a recorded log's metrics events."""
    path = _events_path(args.source)
    try:
        events = read_events(path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    text = to_prometheus(snapshot_from_events(events),
                         namespace=args.namespace)
    if text:
        print(text, end="" if text.endswith("\n") else "\n")
    else:
        print("# no metrics events recorded", file=sys.stderr)
    return 0


def _cmd_compile(args) -> int:
    """Pure spec compilation: .src.json -> .run.json (docs/serving.md)."""
    from .harness.spec import compile_file
    out = compile_file(args.spec, args.output)
    run = json.loads(out.read_text(encoding="utf-8"))
    deduped = run.get("deduped", 0)
    extra = f", {deduped} duplicate(s) deduped" if deduped else ""
    print(f"compiled {args.spec} -> {out} "
          f"({len(run['tasks'])} task(s){extra})")
    return 0


def _cmd_serve(args) -> int:
    from .harness.server import JobServer
    server = JobServer(args.serve_dir, jobs=args.jobs,
                       max_active=args.max_active,
                       poll_interval=args.poll_interval,
                       max_jobs=args.max_jobs, idle_exit=args.idle_exit,
                       log_events=not args.no_events)
    return server.run()


def _job_exit_code(doc) -> int:
    """One-shot CLI exit-code parity for a finished job: complete -> 0,
    quarantined windows -> 3, a failed task -> its own exit code,
    cancelled/interrupted -> the supervisor's aborted code."""
    state = doc.get("state")
    if state == "complete":
        return 0
    if state == "complete-with-quarantine":
        return 3
    if state == "failed":
        for task in doc.get("tasks", []):
            code = task.get("exit_code")
            if code not in (None, 0, 3):
                return int(code)
        return 1
    return 4


def _cmd_submit(args) -> int:
    from .harness.client import ServeClient
    client = ServeClient(args.serve_dir)
    job_id = client.submit(args.spec, priority=args.priority,
                           name=args.name)
    print(job_id)
    if not client.server_alive():
        print("note: no server is running — the job is queued and runs "
              "on the next `repro serve`", file=sys.stderr)
    if not args.wait:
        return 0
    doc = client.wait(job_id, timeout=args.timeout)
    print(f"job {job_id}: {doc.get('state')}", file=sys.stderr)
    return _job_exit_code(doc)


def _cmd_jobs(args) -> int:
    from .harness.client import ServeClient
    client = ServeClient(args.serve_dir)
    if args.jobs_command == "list":
        jobs = client.list()
        if args.as_json:
            print(json.dumps(jobs, indent=2, sort_keys=True))
        else:
            print(f"{'job':44s} {'state':26s} {'prio':>4s} "
                  f"{'tasks':>7s}")
            for job in jobs:
                tasks = f"{job['settled']}/{job['tasks']}"
                print(f"{str(job['id']):44s} {job['state']:26s} "
                      f"{job['priority']:>4d} {tasks:>7s}")
        return 0
    if args.jobs_command == "status":
        response = client.status(args.job_id)
    elif args.jobs_command == "cancel":
        response = client.cancel(args.job_id)
    else:
        response = client.resume(args.job_id)
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def _cmd_agent(args) -> int:
    from .harness.agent import AgentDaemon, list_agents, stop_agents
    if args.agent_command == "start":
        daemon = AgentDaemon(args.fabric, name=args.name,
                             slots=args.slots, idle_exit=args.idle_exit)
        return daemon.run()
    if args.agent_command == "list":
        rows = list_agents(args.fabric)
        if args.as_json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        else:
            print(f"{'agent':24s} {'state':12s} {'pid':>7s} "
                  f"{'slots':>5s} {'busy':>4s} {'done':>5s}")
            for row in rows:
                print(f"{row['name']:24s} {row['state']:12s} "
                      f"{row.get('pid', '-'):>7} "
                      f"{row.get('slots', '-'):>5} "
                      f"{row.get('busy', '-'):>4} "
                      f"{row.get('completed', '-'):>5}")
        return 0
    outcomes = stop_agents(args.fabric, names=args.names or None)
    for outcome in outcomes:
        print(f"{outcome['name']}: {outcome['result']}")
    return 0 if all(o["result"] != "unknown" for o in outcomes) else 1


def _cmd_validate(args) -> int:
    from .workloads.validation import validate_profile
    report = validate_profile(PROFILES[args.name], args.instructions)
    print(f"profile: {args.name}")
    for key, value in report.as_dict().items():
        print(f"  {key:32s} {value}")
    return 0


_COMMANDS = {
    "agent": _cmd_agent,
    "list": _cmd_list,
    "run": _cmd_run,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "campaign": _cmd_campaign,
    "compile": _cmd_compile,
    "figure": _cmd_figure,
    "jobs": _cmd_jobs,
    "metrics": _cmd_metrics,
    "report": _cmd_report,
    "resume": _cmd_resume,
    "serve": _cmd_serve,
    "status": _cmd_status,
    "submit": _cmd_submit,
    "tail": _cmd_tail,
    "top": _cmd_top,
    "validate": _cmd_validate,
    "verify": _cmd_verify,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
