"""Batched lockstep fault execution: dormant lanes over a shared golden core.

The scalar tandem path (:meth:`TandemClassifier._classify_one`) pays, for
*every* planned fault, one full ``clone()`` plus a complete faulty-side
re-execution of the run-window — even though, until the flipped bit is
actually *read*, the faulty twin is cycle-for-cycle identical to the
golden core it was cloned from. The paper's AVF results make that the
common case: most register-file faults land in dead or free registers and
stay invisible forever.

This module exploits it. A :class:`LaneBatch` takes the group of faults
planned for consecutive windows, registers each as a **dormant lane** —
logically the golden core *plus a one-entry patch* (the XOR'd physical
register value, or the XOR'd rename mapping) — and steps only the golden
core. Dormancy is maintained by two exact mechanisms:

- a **divergence probe**, run before every golden step, that decides
  whether the coming cycle *could read* the patched entry: a numpy scan
  of the SoA mirror of all in-flight source operands (REGFILE — every
  PRF read in the core reads an op resident in some ROB), or a scan of
  the thread's fetch buffer for instructions naming the patched logical
  register (RENAME — dispatch is the only speculative-RAT reader). The
  probe is conservative: firing early just materializes a lane that
  would have stayed dormant, which is result-neutral.
- a **write watch** — an instance-level shadow of ``prf.write`` (or the
  rename table's ``set``/``copy_from``) — that detects the patched entry
  being overwritten. Because the probe guarantees the patch was never
  read, the overwriting value was computed from un-patched state and is
  identical in both lanes: the fault is dead and the lane **converges**
  (classified from golden state alone, like a fully dormant lane).

Only when the probe fires does the lane **materialize**: a real
``clone()`` of the golden core at the last pre-divergence cycle (its
trajectory up to there is provably identical to the scalar faulty
twin's), the patch applied directly, and the window finished on the
existing scalar path — so batched results are bit-for-bit equal to
``batch_lanes=1`` by construction, not by tolerance.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

import numpy as np

from ..core.screening import NullScreeningUnit
from ..pipeline.core import PipelineCore
from ..pipeline.regfile import PhysicalRegisterFile
from ..pipeline.rename import RenameTable
from .classifier import LaneStats, WindowResult, _EventBaseline
from .injector import FaultInjector
from .model import FaultRecord, FaultSite, RegStatus


# ----------------------------------------------------------------------
# SoA state mirrors
# ----------------------------------------------------------------------
class CoreSoAView:
    """Structure-of-arrays mirrors of a core's fault-reachable state.

    Two consumers with different cost profiles share the view:

    - the dormant-lane divergence probe needs only the flattened source-
      operand matrix (:meth:`src_matrix`), rebuilt at most once per
      cycle (memoised on a cheap activity stamp);
    - equivalence tests and debugging compare two cores field-by-field
      (:meth:`refresh` + :meth:`divergent_fields`) across regfile
      values/ready bits and the ROB/LSQ scalar columns.

    Mirrors are memoised on ``(cycle, uid, committed, squashed,
    issued)``; out-of-band mutation (a direct ``inject_prf_bit``)
    doesn't move the stamp, so such callers pass ``force=True``.
    """

    _STATE_CODES: dict = {}

    def __init__(self, core: PipelineCore):
        self.core = core
        self._srcs_at: Optional[tuple] = None
        self._srcs: Optional[np.ndarray] = None
        self._built_at: Optional[tuple] = None

    def _stamp(self) -> tuple:
        core = self.core
        stats = core.stats
        return (core.cycle, core._uid, stats.committed, stats.squashed,
                stats.issued)

    # -- probe path ----------------------------------------------------
    def src_matrix(self) -> np.ndarray:
        """Flattened physical source operands of every ROB-resident op
        (all threads). Every PRF value read in the core — issue-stage
        address probes, execute-stage operand reads, commit-time
        singleton re-reads, the quiescence scan's load-base peek — reads
        an op that is resident in some ROB at the start of the cycle, so
        this matrix is a sound overapproximation of the registers the
        coming cycle can read."""
        stamp = self._stamp()
        if stamp != self._srcs_at:
            srcs: List[int] = []
            for thread in self.core.threads:
                for op in thread.rob:
                    srcs.extend(op.phys_srcs)
            self._srcs = np.asarray(srcs, dtype=np.int32)
            self._srcs_at = stamp
        return self._srcs

    def reads_phys(self, reg: int) -> bool:
        """Vectorized probe: may any in-flight op read physical *reg*?"""
        srcs = self.src_matrix()
        return srcs.size > 0 and bool((srcs == reg).any())

    # -- compare path --------------------------------------------------
    FIELDS = ("prf_values", "prf_ready", "rob_uid", "rob_state",
              "rob_dest", "rob_result", "rob_result_ok", "rob_addr",
              "lsq_uid", "lsq_addr", "lsq_value", "lsq_value_ok")

    @classmethod
    def _state_code(cls, state) -> int:
        code = cls._STATE_CODES.get(state)
        if code is None:
            code = cls._STATE_CODES[state] = len(cls._STATE_CODES)
        return code

    def refresh(self, force: bool = False) -> "CoreSoAView":
        """(Re)build the full scalar-field mirrors."""
        stamp = self._stamp()
        if not force and stamp == self._built_at:
            return self
        core = self.core
        self.prf_values = np.array(core.prf.values, dtype=np.uint64)
        self.prf_ready = np.array(core.prf.ready, dtype=bool)
        rob_uid: List[int] = []
        rob_state: List[int] = []
        rob_dest: List[int] = []
        rob_result: List[int] = []
        rob_result_ok: List[bool] = []
        rob_addr: List[int] = []
        lsq_uid: List[int] = []
        lsq_addr: List[int] = []
        lsq_value: List[int] = []
        lsq_value_ok: List[bool] = []
        for thread in core.threads:
            for op in thread.rob:
                rob_uid.append(op.uid)
                rob_state.append(self._state_code(op.state))
                rob_dest.append(-1 if op.phys_dest is None else op.phys_dest)
                rob_result.append(0 if op.result is None else op.result)
                rob_result_ok.append(op.result is not None)
                rob_addr.append(-1 if op.eff_addr is None else op.eff_addr)
            for op in thread.lsq:
                lsq_uid.append(op.uid)
                lsq_addr.append(-1 if op.eff_addr is None else op.eff_addr)
                lsq_value.append(0 if op.store_value is None
                                 else op.store_value)
                lsq_value_ok.append(op.store_value is not None)
        self.rob_uid = np.asarray(rob_uid, dtype=np.int64)
        self.rob_state = np.asarray(rob_state, dtype=np.int8)
        self.rob_dest = np.asarray(rob_dest, dtype=np.int32)
        self.rob_result = np.asarray(rob_result, dtype=np.uint64)
        self.rob_result_ok = np.asarray(rob_result_ok, dtype=bool)
        self.rob_addr = np.asarray(rob_addr, dtype=np.int64)
        self.lsq_uid = np.asarray(lsq_uid, dtype=np.int64)
        self.lsq_addr = np.asarray(lsq_addr, dtype=np.int64)
        self.lsq_value = np.asarray(lsq_value, dtype=np.uint64)
        self.lsq_value_ok = np.asarray(lsq_value_ok, dtype=bool)
        self._built_at = stamp
        return self

    def divergent_fields(self, other: "CoreSoAView",
                         force: bool = False) -> List[str]:
        """Names of the mirrored fields on which the two cores differ."""
        self.refresh(force=force)
        other.refresh(force=force)
        return [name for name in self.FIELDS
                if not np.array_equal(getattr(self, name),
                                      getattr(other, name))]


# ----------------------------------------------------------------------
# divergence probes (per fault site)
# ----------------------------------------------------------------------
class _RegfileProbe:
    """May the coming cycle read physical register *reg*?

    The base answer is "some in-flight op names *reg* as a source". On a
    null-screening core the probe is additionally gated on the ready bit,
    which is exact there: every value read is ready-gated (the issue
    stage checks ``srcs_ready`` inline before its load-base ``prf.read``;
    ``IssueQueue.next_event_cycle`` consults ``cannot_issue`` only after
    its own ``srcs_ready`` loop; completion-side reads belong to ops that
    issued with ready sources, and a fault-free golden never frees a
    register before all its consumers commit, so their ready bit cannot
    be cleared mid-flight) and the only non-ready read path in the
    pipeline — the commit-time singleton re-execute — exists solely
    under ``wants_commit_checks`` schemes. Replay/squash actions, which
    *can* clear ready bits of in-flight producers, never come out of the
    null unit either. For any real screening scheme the gate is dropped
    and the conservative source scan stands alone.

    With the gate, a free register reallocated mid-window merely parks
    its new consumers in the ROB (sources pending); the new producer's
    ``prf.write`` then lands on the write-watch and retires the lane as
    CONVERGED before anything could observe the stale value.
    """

    def __init__(self, core: PipelineCore, reg: int,
                 free_at_arm: bool = False):
        self.view = core.soa_view()
        self.reg = reg
        self.prf = core.prf
        self.gated = isinstance(core.screening, NullScreeningUnit)
        # A register that is FREE at arm (no committed-RAT entry, no ROB
        # dest) is unreachable: every old consumer has committed and
        # left the ROB, and any future consumer must be renamed through
        # a fresh allocation of this tag — which runs ``mark_pending``
        # and cannot issue before the new producer's ``prf.write`` lands
        # on the write-watch. On a gated (null-screening) core the probe
        # is therefore a constant False for the whole dormancy, costing
        # nothing per cycle.
        self.never = free_at_arm and self.gated

    def may_read(self) -> bool:
        if self.never:
            return False
        if self.gated and not self.prf.ready[self.reg]:
            return False
        return self.view.reads_phys(self.reg)


class _RenameProbe:
    """May the coming cycle read the speculative mapping of *logical*?

    Dispatch is the only reader of the speculative RAT, and it only
    dispatches ops sitting in the thread's fetch buffer at stage entry —
    ``spec_rat.get`` for each source register, plus ``get(rd)`` (the
    old-mapping read) for register writers. Scanning the whole buffer
    (it is capped at a handful of entries) overapproximates the per-
    cycle decode budget, which is safe: an early fire just materializes
    a lane a cycle or two sooner.
    """

    def __init__(self, core: PipelineCore, thread_id: int, logical: int):
        self.buffer = core._fetch_buffers[thread_id]
        self.logical = logical

    def may_read(self) -> bool:
        logical = self.logical
        for op in self.buffer:
            inst = op.inst
            if logical in inst.source_regs():
                return True
            if op.writes_reg and inst.rd == logical:
                return True
        return False


# ----------------------------------------------------------------------
# write watches (patch-death detection)
# ----------------------------------------------------------------------
class _PrfWatch:
    """Instance-level shadow of ``prf.write`` flagging writes to *reg*.

    Armed only inside a window and always disarmed in ``finally`` —
    the shadow closure is unpicklable by design, and checkpoints are
    captured strictly between windows (``checkpoint.capture`` guards).
    """

    def __init__(self, prf: PhysicalRegisterFile, reg: int):
        self.prf = prf
        self.reg = reg
        self.hit = False
        self.armed = False

    def arm(self) -> None:
        prf, reg = self.prf, self.reg
        unshadowed = PhysicalRegisterFile.write

        def write(target: int, value: int) -> None:
            if target == reg:
                self.hit = True
            unshadowed(prf, target, value)

        prf.write = write
        self.armed = True

    def disarm(self) -> None:
        if self.armed:
            self.prf.__dict__.pop("write", None)
            self.armed = False


class _RatWatch:
    """Shadow of a rename table's ``set``/``copy_from`` flagging writes
    to the patched *logical* mapping (``copy_from`` overwrites every
    entry, so it always counts)."""

    def __init__(self, rat: RenameTable, logical: int):
        self.rat = rat
        self.logical = logical
        self.hit = False
        self.armed = False

    def arm(self) -> None:
        rat, logical = self.rat, self.logical
        unshadowed_set = RenameTable.set
        unshadowed_copy = RenameTable.copy_from

        def set_(target: int, phys: int) -> None:
            if target == logical:
                self.hit = True
            unshadowed_set(rat, target, phys)

        def copy_from(other: RenameTable) -> None:
            self.hit = True
            unshadowed_copy(rat, other)

        rat.set = set_
        rat.copy_from = copy_from
        self.armed = True

    def disarm(self) -> None:
        if self.armed:
            self.rat.__dict__.pop("set", None)
            self.rat.__dict__.pop("copy_from", None)
            self.armed = False


def assert_unwatched(core: PipelineCore) -> None:
    """Raise if *core* carries an armed lane watch (unpicklable shadow
    closures) — the checkpoint layer's defense against capturing one."""
    if "write" in vars(core.prf):
        raise RuntimeError("core carries an armed PRF write watch; "
                           "checkpoints must be captured between windows")
    for thread in core.threads:
        shadows = vars(thread.spec_rat)
        if "set" in shadows or "copy_from" in shadows:
            raise RuntimeError("core carries an armed rename-table watch; "
                               "checkpoints must be captured between windows")


# ----------------------------------------------------------------------
# lanes
# ----------------------------------------------------------------------
class LaneState(enum.Enum):
    DORMANT = "dormant"
    CONVERGED = "converged"
    MATERIALIZED = "materialized"


class LaneBatch:
    """Runs one group of planned faults against a shared golden core.

    Lanes are registered up front (arming a lane records its patch
    coordinates, event baseline and ``reg_status`` — exactly what the
    scalar ``injector.apply`` records at injection time) and stepped in
    lockstep behind the golden core: because the campaign planner tiles
    the commit space one window per fault, at any golden cycle at most
    one lane's window is open, and "lockstep" degenerates to sharing the
    single golden pass across every lane — which is precisely where the
    win lives: a lane that never leaves dormancy costs zero clones, zero
    faulty-side stepping and zero snapshot comparisons.

    LSQ faults fall back to the scalar path wholesale (counted in
    ``batch_fallbacks``): whether such a fault even *lands* is decided
    by faulty-side stepping (the executed-entry retry loop), so there is
    no dormant phase to elide.
    """

    def __init__(self, classifier):
        self.classifier = classifier
        self.stats = LaneStats()

    # -- public entry --------------------------------------------------
    def run(self, golden: PipelineCore,
            records: Sequence[FaultRecord]) -> List[WindowResult]:
        results = [self._run_lane(golden, record) for record in records]
        # Amortised golden audit: the scalar path runs the armed
        # sanitizer after every window; one batch is audited as a unit,
        # so a (hypothetical) simulator bug surfaces at most K windows
        # later while the dormant fast path sheds the per-window O(ROB)
        # structural scan. Classification results are unaffected either
        # way — the sanitizer only raises, it never feeds results.
        self.classifier._check_golden(golden)
        self._fold_stats()
        return results

    def _fold_stats(self) -> None:
        classifier = self.classifier
        classifier.lane_stats.merge(self.stats)
        metrics = classifier.metrics
        if metrics.enabled:
            metrics.counter("lanes_dormant_cycles").inc(
                self.stats.dormant_cycles)
            metrics.counter("lane_divergences").inc(self.stats.materialized)
            metrics.counter("batch_fallbacks").inc(self.stats.fallbacks)

    # -- one lane ------------------------------------------------------
    def _run_lane(self, golden: PipelineCore,
                  record: FaultRecord) -> WindowResult:
        classifier = self.classifier
        self.stats.lanes += 1
        if record.site is FaultSite.LSQ:
            self.stats.fallbacks += 1
            return classifier._classify_one(golden, record)
        result = WindowResult(record=record)
        if not classifier._advance_to(golden, record.inject_at_commit):
            result.applied = False
            record.applied = False
            return result

        # Arm the lane. A dormant lane IS the golden core plus this
        # patch descriptor; registration is the injection.
        inject_cycle = golden.cycle
        before = _EventBaseline.of(golden)
        triggers_before = len(golden.screen_trigger_cycles)
        state = LaneState.DORMANT
        if record.site is FaultSite.REGFILE:
            # what the scalar injector.apply records, computed read-only
            record.reg_status = FaultInjector.reg_status(golden, record.reg)
            reg = record.reg % golden.prf.num_regs
            watch = _PrfWatch(golden.prf, reg)
            probe = _RegfileProbe(
                golden, reg,
                free_at_arm=record.reg_status is RegStatus.FREE)
        else:
            rat = golden.threads[record.thread_id].spec_rat
            old = rat.get(record.logical)
            if (old ^ (1 << record.bit)) % rat.num_phys == old:
                # identity flip: the wrap leaves the mapping unchanged,
                # so the lanes are equal from cycle zero
                state = LaneState.CONVERGED
            watch = _RatWatch(rat, record.logical)
            probe = _RenameProbe(golden, record.thread_id, record.logical)
        record.applied = True

        targets = {t.thread_id: t.committed_count + classifier.window_commits
                   for t in golden.threads}
        golden.set_snapshot_targets(targets)
        bound = golden.cycle + classifier.max_window_cycles
        faulty: Optional[PipelineCore] = None
        dormant_until = golden.cycle
        if state is LaneState.DORMANT:
            watch.arm()
        try:
            # One continuous run_to_capture-shaped loop: the elision
            # signature must span the whole window, or golden's elide
            # pattern (and cycles_elided) would diverge from the scalar
            # path's single golden run_to_capture call.
            signature = -1
            step = golden.step
            while not (golden.all_snapshots_captured or golden.all_halted) \
                    and golden.cycle < bound:
                if state is LaneState.DORMANT and probe.may_read():
                    # First cycle that could observe the patch: clone a
                    # real twin pre-step (its trajectory so far is
                    # provably identical to the scalar faulty core's).
                    watch.disarm()
                    dormant_until = golden.cycle
                    faulty = self._materialize(golden, record)
                    state = LaneState.MATERIALIZED
                current = golden.activity_signature()
                if (current == signature
                        and golden.elide_idle_cycles(bound)
                        and golden.cycle >= bound):
                    break
                signature = current
                step()
                if state is LaneState.DORMANT and watch.hit:
                    # The patched entry was overwritten with a value
                    # computed from un-patched state (the probe rules
                    # out any earlier read): the fault is dead, the
                    # lanes are equal again.
                    watch.disarm()
                    dormant_until = golden.cycle
                    state = LaneState.CONVERGED
        finally:
            watch.disarm()
        if state is LaneState.DORMANT:
            dormant_until = golden.cycle
        self.stats.dormant_cycles += dormant_until - inject_cycle

        if state is LaneState.MATERIALIZED:
            self.stats.materialized += 1
            # The scalar faulty run's cycle budget is measured from the
            # injection cycle, which is exactly this window's bound.
            faulty.run_to_capture(bound - faulty.cycle)
            return classifier._compare_window(golden, faulty, record, before,
                                              triggers_before, inject_cycle)
        if state is LaneState.CONVERGED:
            self.stats.converged += 1
        self.stats.dormant += 1
        # Dormant (or converged) to the end: the faulty lane is the
        # golden core — compare golden against itself, which reproduces
        # every scalar formula (zero event deltas except declared-fault
        # background, state_equal iff all snapshots captured, MASKED).
        return classifier._compare_window(golden, golden, record, before,
                                          triggers_before, inject_cycle)

    def _materialize(self, golden: PipelineCore,
                     record: FaultRecord) -> PipelineCore:
        """A real faulty twin at the last pre-divergence cycle: clone
        golden (targets and any mid-window snapshots ride along) and
        re-apply the patch directly. ``reg_status`` was already recorded
        at arm time, so this must not go through ``injector.apply``."""
        faulty = golden.clone()
        if record.site is FaultSite.REGFILE:
            faulty.inject_prf_bit(record.reg, record.bit)
        else:
            faulty.inject_rat_bit(record.thread_id, record.logical,
                                  record.bit)
        return faulty


__all__ = ["CoreSoAView", "LaneBatch", "LaneState", "assert_unwatched"]
