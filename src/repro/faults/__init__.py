"""Fault-injection methodology (paper Section 4).

Single-bit faults are injected into the physical register file (which also
emulates back-end control/datapath faults, per the paper), the load-store
queue, and the rename table, in McPAT-derived area proportions (front-end
20%, back-end 80% of which the LSQ is 8%). Classification runs a golden
and a fault-injected pipeline in tandem and compares architectural state
after a run-window of committed instructions; differing exception streams
mean a *noisy* fault, equal state means *masked*, the rest is *SDC*.
"""

from .model import (FaultSite, FaultRecord, FaultClass, CoverageOutcome,
                    RegStatus, SITE_PROPORTIONS)
from .injector import FaultInjector
from .classifier import TandemClassifier, WindowResult
from .campaign import Campaign, CampaignResult

__all__ = [
    "FaultSite",
    "FaultRecord",
    "FaultClass",
    "CoverageOutcome",
    "RegStatus",
    "SITE_PROPORTIONS",
    "FaultInjector",
    "TandemClassifier",
    "WindowResult",
    "Campaign",
    "CampaignResult",
]
