"""Fault sites, records and outcome taxonomies."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class FaultSite(enum.Enum):
    """Where a single-bit fault lands (paper Section 4)."""

    REGFILE = "regfile"   # physical register file; proxies back-end datapath
    LSQ = "lsq"           # load-store queue entries awaiting commit
    RENAME = "rename"     # speculative rename-table mappings (front-end)


#: Area-derived injection proportions (Section 4): "front-end 20%, back-end
#: 80% including LSQ's 8%".
SITE_PROPORTIONS: Dict[FaultSite, float] = {
    FaultSite.RENAME: 0.20,
    FaultSite.REGFILE: 0.72,
    FaultSite.LSQ: 0.08,
}


class FaultClass(enum.Enum):
    """Tandem-comparison classification (Section 4 / Figure 7)."""

    MASKED = "masked"     # no architectural difference after the run-window
    NOISY = "noisy"       # extra exception in the fault-injected run
    SDC = "sdc"           # silent data corruption — the coverage target


class RegStatus(enum.Enum):
    """Lifecycle status of an injected physical register at injection time,
    needed for the Figure 11 breakdown."""

    FREE = "free"                # unmapped: fault necessarily masked
    PENDING = "pending"          # allocated, producer not yet completed
    COMPLETED = "completed"      # written back, producer not yet committed
    COMMITTED = "committed"      # architectural value


class CoverageOutcome(enum.Enum):
    """What the scheme did about an SDC fault (Figures 8a and 11)."""

    RECOVERED = "recovered"            # end state matches golden
    DETECTED = "detected"              # declared (LSQ compare / exception)
    SECOND_LEVEL_MASKED = "second_level_masked"
    COMPLETED_REG = "completed_reg"    # fault in completed/committed register
    UNCOVERED_RENAME = "uncovered_rename"
    NO_TRIGGER = "no_trigger"          # fault fell in changing bit positions
    OTHER = "other"

    @property
    def is_covered(self) -> bool:
        return self in (CoverageOutcome.RECOVERED, CoverageOutcome.DETECTED)


@dataclass
class FaultRecord:
    """One injected fault and everything learned about it."""

    index: int
    site: FaultSite
    #: Total committed-instruction count at which the fault is injected —
    #: the scheme-invariant injection coordinate.
    inject_at_commit: int
    bit: int
    #: Site-specific coordinates.
    reg: Optional[int] = None            # REGFILE: physical register
    thread_id: Optional[int] = None      # RENAME / LSQ
    logical: Optional[int] = None        # RENAME: logical register
    lsq_slot: Optional[int] = None       # LSQ: entry choice
    lsq_field: Optional[str] = None      # LSQ: "addr" | "value"
    #: Status of the register at injection time (REGFILE only).
    reg_status: Optional[RegStatus] = None
    #: Whether the injection landed (LSQ may be empty at injection time).
    applied: bool = True
    #: Baseline classification (phase A).
    fault_class: Optional[FaultClass] = None
    #: Scheme outcome (phase B), per scheme name.
    outcomes: Dict[str, CoverageOutcome] = field(default_factory=dict)

    def fresh_copy(self) -> "FaultRecord":
        """An independent copy for replay phases.

        Re-running a fault mutates its record (``applied``,
        ``fault_class``, ``outcomes``), and the characterisation that
        planned it must stay pristine so serial, parallel and cache-hit
        paths agree bit-for-bit. Every field of this dataclass is an
        immutable scalar except ``outcomes``, so a ``replace`` plus one
        dict copy is a complete deep copy — no graph traversal needed.
        """
        return replace(self, outcomes=dict(self.outcomes))

    def describe(self) -> str:
        if self.site is FaultSite.REGFILE:
            where = f"p{self.reg} ({self.reg_status.value if self.reg_status else '?'})"
        elif self.site is FaultSite.RENAME:
            where = f"t{self.thread_id} r{self.logical}"
        else:
            where = f"t{self.thread_id} {self.lsq_field}[{self.lsq_slot}]"
        return (f"fault#{self.index} {self.site.value} {where} bit{self.bit} "
                f"@commit{self.inject_at_commit}")


__all__ = [
    "FaultSite",
    "SITE_PROPORTIONS",
    "FaultClass",
    "RegStatus",
    "CoverageOutcome",
    "FaultRecord",
]
