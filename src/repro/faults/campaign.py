"""Fault-injection campaigns: characterisation and coverage phases.

Phase A (Figure 7) injects the planned fault list into a *baseline* core
(no screening) and bins each fault masked / noisy / SDC. Phase B
(Figures 8a, 11) replays exactly the SDC faults against a screening scheme
and records what the scheme did about each: recovered, detected, or one of
the paper's uncovered categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.screening import ScreeningUnit
from ..obs.metrics import NULL_METRICS
from ..pipeline.core import PipelineCore
from .classifier import TandemClassifier, WindowResult
from .injector import FaultInjector
from .model import (CoverageOutcome, FaultClass, FaultRecord, FaultSite,
                    RegStatus)


@dataclass
class ThroughputRecord:
    """How fast one campaign phase ran (surfaced in campaign results so
    parallel/cache speedups are measurable, not anecdotal)."""

    phase: str                  # "characterize" | "coverage" | ...
    windows: int = 0
    wall_seconds: float = 0.0
    jobs: int = 1
    from_cache: bool = False
    #: Checkpoint instrumentation for the parallel window fan-out: how
    #: many chunk-boundary checkpoints the dispatcher captured fresh vs
    #: reloaded from the artifact cache, and the wall-clock of its one
    #: golden pass (zero when every boundary was a cache hit).
    checkpoints_captured: int = 0
    checkpoint_hits: int = 0
    golden_pass_seconds: float = 0.0
    #: Supervisor instrumentation (zero on unsupervised runs): retry /
    #: watchdog / pool-rebuild counts, windows quarantined as poison,
    #: and chunks adopted from a prior run's journal by `repro resume`.
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    chunks_resumed: int = 0

    @property
    def windows_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.windows / self.wall_seconds


@dataclass
class CampaignResult:
    """Aggregated outcome of one (workload, scheme) campaign."""

    benchmark: str
    scheme: str
    records: List[FaultRecord]
    characterization: List[WindowResult] = field(default_factory=list)
    coverage_results: List[WindowResult] = field(default_factory=list)
    outcomes: Dict[int, CoverageOutcome] = field(default_factory=dict)
    #: Execution-speed instrumentation for the phase that produced this
    #: result (None for results assembled outside the harness).
    throughput: Optional[ThroughputRecord] = None
    #: Windows the supervisor quarantined as poison instead of running
    #: (:class:`repro.harness.supervisor.QuarantineRecord` instances);
    #: empty on unsupervised or healthy campaigns. Aggregates above are
    #: computed over the windows that *did* run.
    quarantined: List[object] = field(default_factory=list)

    # -- Figure 7 ----------------------------------------------------------
    def applied_count(self) -> int:
        return sum(1 for r in self.characterization if r.applied)

    def class_fraction(self, fault_class: FaultClass) -> float:
        applied = self.applied_count()
        if not applied:
            return 0.0
        hits = sum(1 for r in self.characterization
                   if r.applied and r.fault_class is fault_class)
        return hits / applied

    # -- Figure 8a ---------------------------------------------------------
    @property
    def sdc_count(self) -> int:
        return len(self.outcomes)

    @property
    def covered_count(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.is_covered)

    @property
    def coverage(self) -> float:
        """Fraction of SDC faults the scheme recovered or detected."""
        if not self.outcomes:
            return 0.0
        return self.covered_count / len(self.outcomes)

    def coverage_interval(self):
        """Wilson 95% interval for the coverage estimate — the SDC sample
        per benchmark is small at laptop scale, so EXPERIMENTS.md reports
        these alongside the point estimates."""
        from ..analysis.stats import proportion
        return proportion(self.covered_count, len(self.outcomes))

    # -- Figure 11 ---------------------------------------------------------
    def outcome_fraction(self, outcome: CoverageOutcome) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(1 for o in self.outcomes.values() if o is outcome)
                / len(self.outcomes))

    def breakdown(self) -> Dict[str, float]:
        bins = {
            "covered": self.coverage,
            "second_level_masked": self.outcome_fraction(
                CoverageOutcome.SECOND_LEVEL_MASKED),
            "completed_committed_reg": self.outcome_fraction(
                CoverageOutcome.COMPLETED_REG),
            "uncovered_rename": self.outcome_fraction(
                CoverageOutcome.UNCOVERED_RENAME),
            "no_trigger": self.outcome_fraction(CoverageOutcome.NO_TRIGGER),
            "other": self.outcome_fraction(CoverageOutcome.OTHER),
        }
        return bins


class Campaign:
    """Plans and runs the two campaign phases for one workload."""

    def __init__(self, benchmark: str,
                 baseline_factory: Callable[[], PipelineCore],
                 num_phys_regs: int, num_threads: int,
                 num_faults: int = 200, seed: int = 1,
                 warmup_commits: int = 500, window_commits: int = 300,
                 max_window_cycles: int = 60_000,
                 batch_lanes: int = 1,
                 metrics=NULL_METRICS):
        self.benchmark = benchmark
        self.baseline_factory = baseline_factory
        self.metrics = metrics
        self.num_faults = num_faults
        self.seed = seed
        self.warmup_commits = warmup_commits
        self.window_commits = window_commits
        self.max_window_cycles = max_window_cycles
        #: Lane-batch width handed to every classifier this campaign
        #: builds (serial, parallel chunk workers, supervisor — all of
        #: which rebuild the campaign from the same config, so the knob
        #: follows automatically). 1 = scalar tandem.
        self.batch_lanes = batch_lanes
        self.injector = FaultInjector(seed, num_phys_regs, num_threads)
        # Injection points evenly spaced one run-window apart, so the
        # serial golden run never has to rewind (classifier contract).
        self.records = self.injector.plan(
            num_faults, warmup_commits, num_faults * window_commits)
        self._space_records()

    def _space_records(self) -> None:
        for i, record in enumerate(self.records):
            record.inject_at_commit = (self.warmup_commits
                                       + i * self.window_commits)

    def classifier(self, factory, metrics=None) -> TandemClassifier:
        """A tandem classifier over this campaign's window geometry (also
        used by parallel window-chunk workers, which pass their own
        per-process *metrics* accumulator)."""
        # explicit None check: an empty-but-live registry is falsy
        # (len 0), and `or` would silently drop it
        return TandemClassifier(factory, self.injector,
                                window_commits=self.window_commits,
                                max_window_cycles=self.max_window_cycles,
                                batch_lanes=self.batch_lanes,
                                metrics=(metrics if metrics is not None
                                         else self.metrics))

    # ------------------------------------------------------------------
    def characterize(self) -> CampaignResult:
        """Phase A: masked / noisy / SDC binning on the baseline core."""
        result = CampaignResult(self.benchmark, "baseline", self.records)
        result.characterization = self.classifier(
            self.baseline_factory).run(self.records)
        return result

    def run_coverage(self, scheme_name: str,
                     scheme_factory: Callable[[], PipelineCore],
                     characterization: CampaignResult) -> CampaignResult:
        """Phase B: rerun this campaign's SDC faults under a scheme."""
        sdc_records = self.sdc_records(characterization)
        windows = self.classifier(scheme_factory).run(sdc_records)
        return self.collect_coverage(scheme_name, characterization, windows)

    @staticmethod
    def sdc_records(characterization: CampaignResult) -> List[FaultRecord]:
        """The SDC subset a coverage phase replays, in injection order.

        Returned as fresh copies: the replay re-applies each fault and
        mutates its record, and the characterisation must stay pristine so
        serial, parallel and cache-hit paths agree bit-for-bit.
        """
        return [r.record.fresh_copy()
                for r in characterization.characterization
                if r.applied and r.fault_class is FaultClass.SDC]

    def collect_coverage(self, scheme_name: str,
                         characterization: CampaignResult,
                         windows: Sequence[WindowResult]) -> CampaignResult:
        """Assemble a coverage result from already-classified windows (the
        serial tail of :meth:`run_coverage`; also the merge point for
        window chunks classified by parallel workers)."""
        result = CampaignResult(self.benchmark, scheme_name,
                                [w.record for w in windows])
        result.characterization = characterization.characterization
        result.coverage_results = list(windows)
        for window in windows:
            if not window.applied:
                continue
            result.outcomes[window.record.index] = _attribute(window)
        return result


def _attribute(window: WindowResult) -> CoverageOutcome:
    """Bin one SDC fault's scheme outcome (Figure 11 categories)."""
    record = window.record
    if window.state_equal:
        return CoverageOutcome.RECOVERED
    if window.declared > 0 or window.extra_exceptions > 0:
        return CoverageOutcome.DETECTED
    if record.site is FaultSite.RENAME:
        return CoverageOutcome.UNCOVERED_RENAME
    if window.triggers == 0:
        return CoverageOutcome.NO_TRIGGER
    recovery_actions = window.replays + window.rollbacks + window.singletons
    if window.suppressions > 0 and recovery_actions == 0:
        return CoverageOutcome.SECOND_LEVEL_MASKED
    if (record.site is FaultSite.REGFILE
            and record.reg_status in (RegStatus.COMPLETED,
                                      RegStatus.COMMITTED)):
        return CoverageOutcome.COMPLETED_REG
    return CoverageOutcome.OTHER


__all__ = ["Campaign", "CampaignResult", "ThroughputRecord"]
