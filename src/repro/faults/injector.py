"""Planning and applying single-bit fault injections."""

from __future__ import annotations

import random
from typing import List, Optional

from ..pipeline.core import PipelineCore
from ..pipeline.uops import OpState
from .model import (FaultRecord, FaultSite, RegStatus, SITE_PROPORTIONS)


class FaultInjector:
    """Plans a campaign's fault list and applies faults to a live core.

    Sites are drawn with the paper's area proportions; bits uniformly over
    the field width. Injection *time* is expressed in total committed
    instructions, which is comparable across schemes (unlike cycles, which
    shift with replays and rollbacks).
    """

    def __init__(self, seed: int, num_phys_regs: int, num_threads: int):
        self.rng = random.Random(seed)
        self.num_phys_regs = num_phys_regs
        self.num_threads = num_threads
        self._rename_bits = max(1, (num_phys_regs - 1).bit_length())

    def plan(self, count: int, start_commit: int,
             span_commits: int) -> List[FaultRecord]:
        """Plan *count* faults at commit-points uniformly inside
        ``[start_commit, start_commit + span_commits)``, sorted by time."""
        records = []
        for index in range(count):
            site = self._draw_site()
            when = start_commit + self.rng.randrange(max(1, span_commits))
            record = FaultRecord(index=index, site=site,
                                 inject_at_commit=when,
                                 bit=self._draw_bit(site))
            if site is FaultSite.REGFILE:
                record.reg = self.rng.randrange(self.num_phys_regs)
            elif site is FaultSite.RENAME:
                record.thread_id = self.rng.randrange(self.num_threads)
                record.logical = self.rng.randrange(1, 32)
            else:
                record.thread_id = self.rng.randrange(self.num_threads)
                record.lsq_slot = self.rng.randrange(1 << 16)
                record.lsq_field = self.rng.choice(["addr", "value"])
            records.append(record)
        records.sort(key=lambda r: r.inject_at_commit)
        for new_index, record in enumerate(records):
            record.index = new_index
        return records

    def _draw_site(self) -> FaultSite:
        roll = self.rng.random()
        cumulative = 0.0
        for site, weight in SITE_PROPORTIONS.items():
            cumulative += weight
            if roll < cumulative:
                return site
        return FaultSite.REGFILE

    def _draw_bit(self, site: FaultSite) -> int:
        if site is FaultSite.RENAME:
            return self.rng.randrange(self._rename_bits)
        return self.rng.randrange(64)

    # ------------------------------------------------------------------
    @staticmethod
    def reg_status(core: PipelineCore, reg: int) -> RegStatus:
        """Lifecycle status of physical register *reg* right now."""
        for thread in core.threads:
            for logical in range(32):
                if thread.committed_rat.get(logical) == reg:
                    return RegStatus.COMMITTED
        for thread in core.threads:
            for op in thread.rob:
                if op.phys_dest == reg:
                    if op.state is OpState.COMPLETED:
                        return RegStatus.COMPLETED
                    return RegStatus.PENDING
        return RegStatus.FREE

    def apply(self, core: PipelineCore, record: FaultRecord) -> bool:
        """Inject *record* into *core*; returns False if it could not land
        (e.g. the LSQ held no executed entry)."""
        if record.site is FaultSite.REGFILE:
            record.reg_status = self.reg_status(core, record.reg)
            core.inject_prf_bit(record.reg, record.bit)
            record.applied = True
        elif record.site is FaultSite.RENAME:
            core.inject_rat_bit(record.thread_id, record.logical, record.bit)
            record.applied = True
        else:
            record.applied = core.inject_lsq_bit(
                record.thread_id, record.lsq_slot, record.lsq_field,
                record.bit)
        return record.applied


__all__ = ["FaultInjector"]
