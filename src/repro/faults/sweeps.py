"""Parameter-sweep utilities over screening configurations.

The ablation benches and design-space studies all share one shape: vary a
single knob of :class:`~repro.config.FaultHoundConfig` (or the hardware),
re-run workloads, and collect false-positive rate / coverage / overhead
per setting. This module gives that shape a first-class API::

    sweep = ConfigSweep(programs)
    rows = sweep.fp_rate("tcam_entries", [8, 16, 32, 64])
    rows = sweep.coverage("loosen_threshold", [2, 4, 8], campaign=c)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.metrics import fp_rate, perf_overhead
from ..config import FaultHoundConfig, HardwareConfig
from ..core import FaultHoundUnit
from ..pipeline.core import PipelineCore
from .campaign import Campaign, CampaignResult


class ConfigSweep:
    """Sweeps one FaultHoundConfig field across values on fixed programs."""

    def __init__(self, programs: Sequence,
                 hw: Optional[HardwareConfig] = None,
                 base_config: Optional[FaultHoundConfig] = None,
                 max_cycles: int = 20_000_000):
        self.programs = list(programs)
        self.hw = hw or HardwareConfig()
        self.base_config = base_config or FaultHoundConfig()
        self.max_cycles = max_cycles
        self._baseline_cycles: Optional[int] = None

    # ------------------------------------------------------------------
    def _config_with(self, field: str, value) -> FaultHoundConfig:
        return replace(self.base_config, **{field: value})

    def _core(self, config: FaultHoundConfig) -> PipelineCore:
        return PipelineCore(self.programs, hw=self.hw,
                            screening=FaultHoundUnit(config))

    def _run(self, config: FaultHoundConfig) -> PipelineCore:
        core = self._core(config)
        core.run(max_cycles=self.max_cycles)
        return core

    @property
    def baseline_cycles(self) -> int:
        if self._baseline_cycles is None:
            core = PipelineCore(self.programs, hw=self.hw)
            core.run(max_cycles=self.max_cycles)
            self._baseline_cycles = core.stats.cycles
        return self._baseline_cycles

    # ------------------------------------------------------------------
    def fp_rate(self, field: str,
                values: Sequence) -> Dict[str, Dict[str, float]]:
        """Fault-free false-positive rate per setting."""
        rows = {}
        for value in values:
            core = self._run(self._config_with(field, value))
            rows[f"{field}={value}"] = {
                "fp_rate": fp_rate(core.screening, core.stats.committed)}
        return rows

    def perf(self, field: str,
             values: Sequence) -> Dict[str, Dict[str, float]]:
        """Fault-free performance overhead per setting."""
        rows = {}
        for value in values:
            core = self._run(self._config_with(field, value))
            rows[f"{field}={value}"] = {
                "perf_overhead": perf_overhead(core.stats.cycles,
                                               self.baseline_cycles)}
        return rows

    def coverage(self, field: str, values: Sequence,
                 campaign: Campaign,
                 characterization: CampaignResult
                 ) -> Dict[str, Dict[str, float]]:
        """Coverage per setting, reusing one characterisation campaign."""
        rows = {}
        for value in values:
            config = self._config_with(field, value)
            result = campaign.run_coverage(
                f"{field}={value}",
                lambda: self._core(config),
                characterization)
            rows[f"{field}={value}"] = {
                "coverage": result.coverage,
                "sdc_faults": float(result.sdc_count)}
        return rows

    def custom(self, field: str, values: Sequence,
               metric: Callable[[PipelineCore], float],
               metric_name: str = "value") -> Dict[str, Dict[str, float]]:
        """Arbitrary scalar metric per setting."""
        rows = {}
        for value in values:
            core = self._run(self._config_with(field, value))
            rows[f"{field}={value}"] = {metric_name: metric(core)}
        return rows


__all__ = ["ConfigSweep"]
