"""Tandem golden/faulty classification (paper Section 4).

One fault-free *golden* core advances through the workload. For each
planned fault the classifier forks a copy (the purpose-built
:meth:`~repro.pipeline.core.PipelineCore.clone`, not a generic
deepcopy), injects the fault, runs both copies to the same per-thread
committed-instruction boundary (the paper's run-window), and compares:

- extra exceptions in the faulty run  →  **noisy**
- identical architectural state       →  **masked**
- anything else                       →  **SDC**

The golden core is then re-used for the next fault (the paper's trick of
serving all injections from one benchmark run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..obs.metrics import LATENCY_CYCLE_BUCKETS, NULL_METRICS
from ..pipeline.core import PipelineCore
from .injector import FaultInjector
from .model import FaultClass, FaultRecord, FaultSite


@dataclass
class WindowResult:
    """Everything observed about one injected fault's run-window."""

    record: FaultRecord
    fault_class: Optional[FaultClass] = None
    applied: bool = True
    state_equal: bool = False
    extra_exceptions: int = 0
    hung: bool = False
    #: Scheme events observed between injection and the window end.
    replays: int = 0
    rollbacks: int = 0
    singletons: int = 0
    declared: int = 0
    suppressions: int = 0
    triggers: int = 0
    #: Audit-trail coordinates: the faulty core's cycle when the fault
    #: landed, the cycle of the first screening filter trigger at or
    #: after injection, and their difference (-1 = no trigger observed).
    inject_cycle: int = -1
    first_trigger_cycle: int = -1
    detection_latency: int = -1


@dataclass
class LaneStats:
    """Lane lifecycle tallies from the batched tandem engine (always
    maintained, independent of the metrics registry, so equivalence
    tests can assert e.g. "no masked fault ever materialized")."""

    lanes: int = 0              # lanes processed by the batched engine
    dormant: int = 0            # lanes classified without a clone
    converged: int = 0          # ... of which via patch-death detection
    materialized: int = 0       # lanes that diverged (lane_divergences)
    fallbacks: int = 0          # LSQ scalar delegations (batch_fallbacks)
    dormant_cycles: int = 0     # golden cycles spent with a lane dormant

    def merge(self, other: "LaneStats") -> None:
        self.lanes += other.lanes
        self.dormant += other.dormant
        self.converged += other.converged
        self.materialized += other.materialized
        self.fallbacks += other.fallbacks
        self.dormant_cycles += other.dormant_cycles


@dataclass
class _EventBaseline:
    replays: int
    rollbacks: int
    singletons: int
    declared: int
    suppressions: int
    triggers: int

    @staticmethod
    def of(core: PipelineCore) -> "_EventBaseline":
        unit = core.screening
        suppressions = getattr(unit, "second_level_suppressions", 0)
        return _EventBaseline(
            replays=core.stats.replay_events,
            rollbacks=core.stats.rollback_events,
            singletons=core.stats.singleton_reexecs,
            declared=len(core.declared_faults),
            suppressions=suppressions,
            triggers=unit.trigger_count,
        )


class TandemClassifier:
    """Runs an injection list against one workload + scheme combination."""

    def __init__(self, core_factory: Callable[[], PipelineCore],
                 injector: FaultInjector,
                 window_commits: int = 300,
                 max_window_cycles: int = 60_000,
                 lsq_wait_cycles: int = 200,
                 sanitize: bool = True,
                 batch_lanes: int = 1,
                 metrics=NULL_METRICS):
        self.core_factory = core_factory
        self.injector = injector
        self.window_commits = window_commits
        self.max_window_cycles = max_window_cycles
        self.lsq_wait_cycles = lsq_wait_cycles
        #: Lane-batch width for the batched tandem engine
        #: (repro.faults.batched). 1 = the scalar clone-per-fault path;
        #: K > 1 groups K consecutive windows into one lane batch whose
        #: dormant lanes skip the clone and the faulty-side re-execution
        #: entirely. Results are bit-for-bit identical either way.
        self.batch_lanes = max(1, batch_lanes)
        #: Cumulative lane lifecycle tallies (empty on the scalar path).
        self.lane_stats = LaneStats()
        #: Live-telemetry registry (repro.obs.metrics); NULL when off.
        #: Observes only per-window facts, never the golden core's
        #: cumulative stats, so results stay bit-for-bit metrics on/off.
        self.metrics = metrics
        #: Arm the invariant sanitizer on the golden core, checked at
        #: every window's capture point (repro.pipeline.invariants) —
        #: campaigns self-validate their golden reference. Faulty forks
        #: are never sanitized (clone() drops the sanitizer): their
        #: rename invariants break by design.
        self.sanitize = sanitize

    # ------------------------------------------------------------------
    def run(self, records: List[FaultRecord],
            skip: Sequence[FaultRecord] = (),
            golden: Optional[PipelineCore] = None,
            resume_at_commit: int = 0) -> List[WindowResult]:
        """Classify every fault in *records*.

        The one golden core serves every window, which is only sound
        because the injection plan never asks it to rewind — asserted
        here as a cheap monotonicity check on ``inject_at_commit``
        (``Campaign._space_records`` guarantees it) instead of
        re-deriving golden state per window.

        *skip* is the fast-forward prefix a worker can replay when it has
        nothing better: the golden core replays those windows (advance +
        capture, no fault, no tandem copy) so it reaches bit-for-bit the
        same state the serial classifier would carry into ``records[0]``.

        *golden* skips even that: a caller that already holds the
        prefix-advanced core — restored from a chunk-boundary
        :class:`~repro.pipeline.checkpoint.CoreCheckpoint` — passes it
        directly with *resume_at_commit* set to the commit coordinate it
        was advanced through, and no replay happens at all.
        """
        if golden is not None and skip:
            raise ValueError("pass either a restored golden core or a "
                             "skip prefix, not both")
        self._check_contract(skip, records,
                             resume_at_commit if golden is not None else 0)
        if golden is None:
            golden = self.core_factory()
        self._arm_sanitizer(golden)
        for record in skip:
            self._skip_window(golden, record)
        results: List[WindowResult] = []
        if self.batch_lanes > 1:
            for start in range(0, len(records), self.batch_lanes):
                group = records[start:start + self.batch_lanes]
                results.extend(self._classify_batch(golden, group))
        else:
            for record in records:
                result = self._classify_one(golden, record)
                results.append(result)
        self._record_metrics(results)
        return results

    def _classify_batch(self, golden: PipelineCore,
                        records: Sequence[FaultRecord]) -> List[WindowResult]:
        """One lane batch over the shared golden core (imported lazily:
        repro.faults.batched imports this module)."""
        from .batched import LaneBatch
        return LaneBatch(self).run(golden, records)

    def _record_metrics(self, results: Sequence[WindowResult]) -> None:
        """Fold one run's per-window observations into the registry."""
        if not self.metrics.enabled or not results:
            return
        self.metrics.counter("classifier_windows_total").inc(len(results))
        self.metrics.counter("classifier_applied_total").inc(
            sum(1 for r in results if r.applied))
        latency = self.metrics.histogram("classifier_detection_latency_cycles",
                                         LATENCY_CYCLE_BUCKETS)
        for result in results:
            if result.detection_latency >= 0:
                latency.observe(result.detection_latency)

    def advance_golden(self, golden: PipelineCore,
                       records: Sequence[FaultRecord]) -> None:
        """Advance *golden* through *records* exactly as the serial
        classifier's golden side would (the dispatcher's one golden pass
        that captures chunk-boundary checkpoints)."""
        self._arm_sanitizer(golden)
        for record in records:
            self._skip_window(golden, record)

    def _arm_sanitizer(self, golden: PipelineCore) -> None:
        """Arm the invariant sanitizer on the golden core in explicit-
        check mode: one full check per window at the capture point, well
        under the ≤2× golden-pass budget. Never rearms (a restored
        checkpoint may carry an armed sanitizer already) and never
        touches the per-cycle step path."""
        if self.sanitize \
                and getattr(golden, "_sanitizer", None) is None \
                and hasattr(golden, "enable_sanitizer"):
            golden.enable_sanitizer(every=0)

    @staticmethod
    def _check_contract(skip: Sequence[FaultRecord],
                        records: Sequence[FaultRecord],
                        already_at_commit: int = 0) -> None:
        previous = already_at_commit if already_at_commit else None
        for record in (*skip, *records):
            if previous is not None and record.inject_at_commit < previous:
                raise ValueError(
                    "fault records must be sorted by inject_at_commit: "
                    "the shared golden core never rewinds")
            previous = record.inject_at_commit

    def _skip_window(self, golden: PipelineCore, record: FaultRecord) -> None:
        """Advance the golden core through one window without classifying.

        Mirrors exactly the golden-side stepping of
        :meth:`_classify_one` (advance to the injection commit, arm the
        snapshot targets, run to capture) so a chunk worker's golden core
        is indistinguishable from the serial one. When the serial run
        would have failed to land the fault it leaves golden parked at
        the injection commit; only LSQ faults can fail, and the decision
        depends on faulty-side stepping, so those are probed on a
        throwaway copy.
        """
        if not self._advance_to(golden, record.inject_at_commit):
            return
        if record.site is FaultSite.LSQ:
            probe = golden.clone()
            if not self._apply_with_retry(probe, record):
                return
        targets = {t.thread_id: t.committed_count + self.window_commits
                   for t in golden.threads}
        golden.set_snapshot_targets(targets)
        self._run_to_capture(golden)
        self._check_golden(golden)

    def _check_golden(self, golden: PipelineCore) -> None:
        """Run the armed sanitizer at a capture point (no-op otherwise).
        Raises InvariantError: a structurally broken golden core would
        silently skew every classification it serves."""
        if hasattr(golden, "check_invariants"):
            golden.check_invariants()

    def _advance_to(self, core: PipelineCore, total_commits: int) -> bool:
        """Advance *core* until its total committed count reaches
        *total_commits*; False when it halted first. Delegates to the
        core's event-skip driver: idle stretches (long-latency misses,
        redirect stalls) are jumped instead of stepped."""
        return core.run_to_commit(total_commits, self.max_window_cycles * 4)

    def _classify_one(self, golden: PipelineCore,
                      record: FaultRecord) -> WindowResult:
        result = WindowResult(record=record)
        if not self._advance_to(golden, record.inject_at_commit):
            result.applied = False
            record.applied = False
            return result

        faulty = golden.clone()
        if not self._apply_with_retry(faulty, record):
            result.applied = False
            return result
        before = _EventBaseline.of(faulty)
        inject_cycle = faulty.cycle
        triggers_before = len(faulty.screen_trigger_cycles)

        # Arm both cores to capture each thread's state one run-window of
        # commits past the injection point.
        targets = {t.thread_id: t.committed_count + self.window_commits
                   for t in golden.threads}
        golden.set_snapshot_targets(targets)
        faulty.set_snapshot_targets(targets)
        self._run_to_capture(golden)
        self._check_golden(golden)
        self._run_to_capture(faulty)

        return self._compare_window(golden, faulty, record, before,
                                    triggers_before, inject_cycle)

    def _compare_window(self, golden: PipelineCore, faulty: PipelineCore,
                        record: FaultRecord, before: _EventBaseline,
                        triggers_before: int,
                        inject_cycle: int) -> WindowResult:
        """Classify one finished window from its golden/faulty pair.

        The comparison tail shared by the scalar path and the batched
        engine's materialized lanes — and, with ``faulty is golden``, the
        batched engine's dormant/converged lanes: a lane whose patch was
        never read (and, if overwritten, overwritten with a value
        computed from un-patched state) is the golden core, and feeding
        golden for both sides reproduces every scalar formula exactly
        (zero event deltas bar the declared-fault count, ``state_equal``
        iff all snapshots captured, never noisy — masked).
        """
        result = WindowResult(record=record)
        result.inject_cycle = inject_cycle

        if not faulty.all_snapshots_captured and not faulty.all_halted:
            result.hung = True

        golden_exc = [tuple(t.exceptions) for t in golden.threads]
        faulty_exc = [tuple(t.exceptions) for t in faulty.threads]
        result.extra_exceptions = sum(
            max(0, len(f) - len(g)) for g, f in zip(golden_exc, faulty_exc))

        result.state_equal = (
            faulty.all_snapshots_captured
            and golden.captured_snapshots == faulty.captured_snapshots)

        after = _EventBaseline.of(faulty)
        golden_after = _EventBaseline.of(golden)
        golden_before_delta = _Delta(before, golden_after)
        # events attributable to the fault = faulty delta minus the
        # false-positive background the golden run shows in the same window
        delta = _Delta(before, after)
        result.replays = max(0, delta.replays - golden_before_delta.replays)
        result.rollbacks = max(0, delta.rollbacks - golden_before_delta.rollbacks)
        result.singletons = max(0, delta.singletons - golden_before_delta.singletons)
        result.declared = delta.declared
        result.suppressions = max(
            0, delta.suppressions - golden_before_delta.suppressions)
        result.triggers = max(0, delta.triggers - golden_before_delta.triggers)

        # Detection latency: injection to the faulty core's first filter
        # trigger afterwards. The series may include the same background
        # false positives the golden run shows, but the first trigger in
        # a window that *did* react to the fault is overwhelmingly the
        # fault's own (the FP rate is a few per thousand commits).
        new_triggers = faulty.screen_trigger_cycles[triggers_before:]
        if new_triggers:
            result.first_trigger_cycle = new_triggers[0]
            result.detection_latency = max(
                0, new_triggers[0] - result.inject_cycle)

        if result.extra_exceptions or (faulty.all_halted
                                       and not golden.all_halted):
            result.fault_class = FaultClass.NOISY
        elif result.state_equal:
            result.fault_class = FaultClass.MASKED
        else:
            result.fault_class = FaultClass.SDC
        record.fault_class = result.fault_class
        return result

    def _apply_with_retry(self, faulty: PipelineCore,
                          record: FaultRecord) -> bool:
        """Inject; LSQ faults wait (a bounded number of cycles) for an
        executed entry to exist.

        The retry loop elides provably idle cycles: the LSQ's executed-
        entry set cannot change while the core is quiescent, so a failing
        ``apply`` keeps failing identically across the skipped stretch
        and the injection lands at exactly the cycle the cycle-by-cycle
        loop would have found.
        """
        if self.injector.apply(faulty, record):
            return True
        if record.site is not FaultSite.LSQ:
            return False
        bound = faulty.cycle + self.lsq_wait_cycles
        signature = -1
        while faulty.cycle < bound:
            if faulty.all_halted:
                return False
            current = faulty.activity_signature()
            if (current == signature and faulty.elide_idle_cycles(bound)
                    and faulty.cycle >= bound):
                break
            signature = current
            faulty.step()
            if self.injector.apply(faulty, record):
                return True
        return False

    def _run_to_capture(self, core: PipelineCore) -> None:
        core.run_to_capture(self.max_window_cycles)


class _Delta:
    """Difference between two event baselines."""

    def __init__(self, before: _EventBaseline, after: _EventBaseline):
        self.replays = after.replays - before.replays
        self.rollbacks = after.rollbacks - before.rollbacks
        self.singletons = after.singletons - before.singletons
        self.declared = after.declared - before.declared
        self.suppressions = after.suppressions - before.suppressions
        self.triggers = after.triggers - before.triggers


__all__ = ["LaneStats", "TandemClassifier", "WindowResult"]
