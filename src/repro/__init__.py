"""FaultHound reproduction: value-locality-based soft-fault tolerance.

A complete Python implementation of the ISCA 2015 paper *FaultHound:
Value-Locality-Based Soft-Fault Tolerance* (Nitin, Pomeranz, Vijaykumar)
together with every substrate its evaluation needs — an out-of-order SMT
pipeline, a fault-injection methodology, PBFS/SRT baselines, an energy
model and synthetic workload generators. See README.md for a tour and
DESIGN.md for the paper-to-module map.

The most commonly used entry points are re-exported here::

    from repro import (FaultHoundConfig, FaultHoundUnit, HardwareConfig,
                       PipelineCore, assemble)

    core = PipelineCore([assemble("movi r1, 1\\nhalt")],
                        screening=FaultHoundUnit())
    core.run()
"""

from .config import (FaultHoundConfig, HardwareConfig, PBFSConfig,
                     VALUE_BITS, VALUE_MASK)
from .core import (CheckAction, CheckKind, FaultHoundUnit,
                   NullScreeningUnit, PBFSUnit, TCAM)
from .isa import Instruction, Interpreter, Opcode, Program, assemble
from .pipeline import PipelineCore, PipelineStats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "VALUE_BITS",
    "VALUE_MASK",
    "FaultHoundConfig",
    "HardwareConfig",
    "PBFSConfig",
    "CheckAction",
    "CheckKind",
    "FaultHoundUnit",
    "NullScreeningUnit",
    "PBFSUnit",
    "TCAM",
    "Instruction",
    "Interpreter",
    "Opcode",
    "Program",
    "assemble",
    "PipelineCore",
    "PipelineStats",
]
