"""Stride/stream prefetcher for the data-cache hierarchy (opt-in).

Disabled in the shipped evaluation configuration (the paper's Table 2
machine has no prefetcher and the calibration depends on its miss
behaviour), but available for sensitivity studies: streaming workloads'
baseline CPI drops sharply with it on, which *unhides* recovery penalties
exactly the way the paper's Section 2.2 CPI argument predicts.
"""

from __future__ import annotations

from typing import Dict, Optional


class StridePrefetcher:
    """Classic per-space stride detector with configurable degree.

    Tracks the last miss line and stride per address space (SMT context).
    Two consecutive misses with the same stride arm the stream; once
    armed, each further miss prefetches ``degree`` lines ahead.
    """

    def __init__(self, degree: int = 2):
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self.degree = degree
        self._last_line: Dict[int, int] = {}
        self._stride: Dict[int, int] = {}
        self._armed: Dict[int, bool] = {}
        self.issued = 0
        self.useful = 0

    def on_miss(self, space: int, line: int) -> list:
        """Observe a demand miss; return the lines to prefetch."""
        last = self._last_line.get(space)
        prefetches = []
        if last is not None:
            stride = line - last
            if stride != 0 and stride == self._stride.get(space):
                self._armed[space] = True
            else:
                self._armed[space] = False
            self._stride[space] = stride
            if self._armed.get(space):
                prefetches = [line + stride * i
                              for i in range(1, self.degree + 1)]
                self.issued += len(prefetches)
        self._last_line[space] = line
        return prefetches

    def note_useful(self) -> None:
        self.useful += 1

    def clone(self) -> "StridePrefetcher":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = StridePrefetcher(self.degree)
        twin._last_line = dict(self._last_line)
        twin._stride = dict(self._stride)
        twin._armed = dict(self._armed)
        twin.issued = self.issued
        twin.useful = self.useful
        return twin

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0


__all__ = ["StridePrefetcher"]
