"""Sparse 64-bit-word main memory with a fixed access latency."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..config import VALUE_MASK
from ..errors import MemoryFault
from ..isa.semantics import check_address


class MainMemory:
    """Byte-addressed, 8-byte-word-granular sparse memory.

    Unwritten words read as zero. All accesses must be 8-byte aligned and
    inside the valid segment; violations raise
    :class:`~repro.errors.MemoryFault` (the classifier's "noisy" channel).
    """

    def __init__(self, latency: int = 200,
                 image: Dict[int, int] | None = None):
        self.latency = latency
        self._words: Dict[int, int] = dict(image) if image else {}

    def read(self, address: int) -> int:
        if not check_address(address):
            raise MemoryFault(address)
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        if not check_address(address):
            raise MemoryFault(address)
        self._words[address] = value & VALUE_MASK

    def load_image(self, image: Dict[int, int]) -> None:
        """Bulk-install an initial memory image (e.g. from a Program)."""
        for address, value in image.items():
            self.write(address, value)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._words.items()

    def clone(self) -> "MainMemory":
        """Independent copy for core forking (checkpoint protocol)."""
        return MainMemory(self.latency, self._words)

    def nonzero_snapshot(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted (address, value) pairs for all non-zero words."""
        return tuple(sorted(
            (a, v) for a, v in self._words.items() if v))

    def __len__(self) -> int:
        return len(self._words)


__all__ = ["MainMemory"]
