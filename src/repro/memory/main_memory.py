"""Sparse 64-bit-word main memory with a fixed access latency."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..config import VALUE_MASK
from ..errors import MemoryFault
from ..isa.semantics import check_address


class MainMemory:
    """Byte-addressed, 8-byte-word-granular sparse memory.

    Unwritten words read as zero. All accesses must be 8-byte aligned and
    inside the valid segment; violations raise
    :class:`~repro.errors.MemoryFault` (the classifier's "noisy" channel).
    """

    def __init__(self, latency: int = 200,
                 image: Dict[int, int] | None = None):
        self.latency = latency
        self._words: Dict[int, int] = dict(image) if image else {}

    def read(self, address: int) -> int:
        if not check_address(address):
            raise MemoryFault(address)
        return self._words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        if not check_address(address):
            raise MemoryFault(address)
        self._words[address] = value & VALUE_MASK

    def load_image(self, image: Dict[int, int]) -> None:
        """Bulk-install an initial memory image (e.g. from a Program)."""
        for address, value in image.items():
            self.write(address, value)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._words.items()

    def clone(self) -> "MainMemory":
        """Independent copy for core forking (checkpoint protocol)."""
        return MainMemory(self.latency, self._words)

    def nonzero_snapshot(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted (address, value) pairs for all non-zero words.

        Vectorised: the fault classifier snapshots every thread's memory
        once per injection window on both tandem lanes, so a Python-level
        ``sorted`` over the whole image dominated campaign profiles. A
        numpy key sort produces the identical tuple (addresses are unique
        dict keys, so sorting by address alone equals sorting the pairs;
        ``tolist`` restores Python ints) at a fraction of the cost.
        """
        words = self._words
        if not words:
            return ()
        n = len(words)
        addrs = np.fromiter(words.keys(), dtype=np.int64, count=n)
        vals = np.fromiter(words.values(), dtype=np.uint64, count=n)
        keep = vals != 0
        if not keep.all():
            addrs, vals = addrs[keep], vals[keep]
        order = np.argsort(addrs)
        return tuple(zip(addrs[order].tolist(), vals[order].tolist()))

    def __len__(self) -> int:
        return len(self._words)


__all__ = ["MainMemory"]
