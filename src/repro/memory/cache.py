"""Set-associative tag-array cache model with LRU replacement.

Only tags are modelled — the cache answers "hit or miss, at what latency"
and counts events for the energy model. Line data stays in the
architectural memory, which is authoritative for values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from ..errors import ConfigurationError


@dataclass
class CacheStats:
    """Access counters consumed by the energy model and reports."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0


class Cache:
    """One level of set-associative cache (LRU, allocate-on-miss).

    ``size_kb`` / ``assoc`` / ``line_bytes`` must describe a power-of-two
    set count. ``latency`` is the hit latency in cycles.
    """

    def __init__(self, name: str, size_kb: int, assoc: int,
                 line_bytes: int, latency: int):
        num_lines = (size_kb * 1024) // line_bytes
        if num_lines <= 0 or num_lines % assoc:
            raise ConfigurationError(
                f"{name}: {size_kb}KB / {assoc}-way / {line_bytes}B lines "
                "does not tile into whole sets")
        self.name = name
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.latency = latency
        self.num_sets = num_lines // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(f"{name}: set count must be a power of two")
        self.stats = CacheStats()
        # Per-set list of tags in LRU order (index 0 = most recent).
        self._sets: Dict[int, List[int]] = {}

    def _index_tag(self, address: int) -> tuple:
        line = address // self.line_bytes
        return line % self.num_sets, line // self.num_sets

    def access(self, address: int) -> bool:
        """Touch *address*; return True on hit. Misses allocate the line."""
        self.stats.accesses += 1
        index, tag = self._index_tag(address)
        ways = self._sets.get(index)
        if ways is None:
            ways = []
            self._sets[index] = ways
        try:
            ways.remove(tag)
        except ValueError:
            self.stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            return False
        ways.insert(0, tag)
        self.stats.hits += 1
        return True

    def probe(self, address: int) -> bool:
        """Non-destructive lookup: True when the line is resident."""
        index, tag = self._index_tag(address)
        return tag in self._sets.get(index, ())

    def install(self, address: int) -> None:
        """Insert a line without touching the demand-access statistics
        (prefetch fills)."""
        index, tag = self._index_tag(address)
        ways = self._sets.setdefault(index, [])
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()

    def flush(self) -> None:
        self._sets.clear()

    def clone(self) -> "Cache":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = Cache.__new__(Cache)
        twin.name = self.name
        twin.assoc = self.assoc
        twin.line_bytes = self.line_bytes
        twin.latency = self.latency
        twin.num_sets = self.num_sets
        twin.stats = replace(self.stats)
        twin._sets = {index: list(ways)
                      for index, ways in self._sets.items()}
        return twin

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())


__all__ = ["Cache", "CacheStats"]
