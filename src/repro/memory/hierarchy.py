"""Two-level data-cache hierarchy (paper Table 2: L1D 32KB/2-way/3cyc,
L2 2MB/4-way/20cyc, main memory behind it)."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HardwareConfig
from .cache import Cache


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one data access: total latency and where it hit."""

    latency: int
    level: str  # "l1" | "l2" | "mem"

    @property
    def l1_hit(self) -> bool:
        return self.level == "l1"


class MemoryHierarchy:
    """Timing model for data-side accesses.

    Line fills are *timed*: a miss records when its line becomes ready, and
    a subsequent access to the same line before that point pays the
    remaining fill latency (so wrong-path or squashed-and-refetched loads
    get genuine prefetch overlap, never an instant free hit).

    ``space`` segregates SMT contexts' identical virtual layouts into
    disjoint physical lines. ``ideal=True`` makes every access an L1 hit —
    used by SRT-iso's trailing threads, which the paper grants a perfect
    load-value queue (no trailing cache misses).
    """

    #: Virtual address spaces are salted above this bit per SMT context.
    SPACE_SHIFT = 44

    def __init__(self, hw: HardwareConfig | None = None, ideal: bool = False):
        hw = hw or HardwareConfig()
        self.ideal = ideal
        self.l1 = Cache("L1D", hw.l1d_size_kb, hw.l1d_assoc,
                        hw.line_bytes, hw.l1d_latency)
        self.l2 = Cache("L2", hw.l2_size_kb, hw.l2_assoc,
                        hw.line_bytes, hw.l2_latency)
        self.memory_latency = hw.memory_latency
        self.line_bytes = hw.line_bytes
        # line id -> cycle its in-flight fill completes
        self._fill_ready = {}
        self.prefetcher = None
        self._prefetched: set = set()
        if getattr(hw, "prefetch_degree", 0):
            from .prefetch import StridePrefetcher
            self.prefetcher = StridePrefetcher(hw.prefetch_degree)

    def access(self, address: int, now: int = 0,
               space: int = 0) -> AccessResult:
        """Access *address* (loads and stores alike), returning timing."""
        if self.ideal:
            self.l1.stats.accesses += 1
            self.l1.stats.hits += 1
            return AccessResult(self.l1.latency, "l1")
        address += space << self.SPACE_SHIFT
        line = address // self.line_bytes
        if self.l1.access(address):
            if self.prefetcher is not None and line in self._prefetched:
                self._prefetched.discard(line)
                self.prefetcher.note_useful()
            ready = self._fill_ready.get(line)
            if ready is not None:
                if ready <= now:
                    del self._fill_ready[line]
                else:
                    # hit on a line whose fill is still in flight
                    return AccessResult(
                        max(self.l1.latency, ready - now), "l1")
            return AccessResult(self.l1.latency, "l1")
        if self.l2.access(address):
            latency = self.l1.latency + self.l2.latency
            level = "l2"
        else:
            latency = (self.l1.latency + self.l2.latency
                       + self.memory_latency)
            level = "mem"
        self._fill_ready[line] = now + latency
        if self.prefetcher is not None:
            for pf_line in self.prefetcher.on_miss(space, line):
                pf_addr = pf_line * self.line_bytes
                if not self.l1.probe(pf_addr):
                    self.l1.install(pf_addr)
                    self.l2.install(pf_addr)
                    self._fill_ready[pf_line] = now + latency
                    self._prefetched.add(pf_line)
        return AccessResult(latency, level)

    def next_event_cycle(self, now: int):
        """Event-skip contract: in-flight fills (``_fill_ready``) are
        consulted only when an access probes their line, and accesses
        happen only at issue — the hierarchy never changes core state on
        its own, so it contributes no autonomous events."""
        return None

    def clone(self) -> "MemoryHierarchy":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = MemoryHierarchy.__new__(MemoryHierarchy)
        twin.ideal = self.ideal
        twin.l1 = self.l1.clone()
        twin.l2 = self.l2.clone()
        twin.memory_latency = self.memory_latency
        twin.line_bytes = self.line_bytes
        twin._fill_ready = dict(self._fill_ready)
        twin.prefetcher = (self.prefetcher.clone()
                           if self.prefetcher is not None else None)
        twin._prefetched = set(self._prefetched)
        return twin

    def warm(self, addresses, space: int = 0) -> None:
        """Pre-touch *addresses* (cache warm-up, per the paper's Table 1)."""
        for address in addresses:
            self.access(address, space=space)
        self._fill_ready.clear()

    def flush(self) -> None:
        self.l1.flush()
        self.l2.flush()
        self._fill_ready.clear()


__all__ = ["AccessResult", "MemoryHierarchy"]
