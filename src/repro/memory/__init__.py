"""Memory-system substrate: sparse main memory and a timing cache hierarchy.

Data correctness lives in the architectural memory dictionaries owned by the
threads; the caches here are *timing and energy* models (tag arrays with LRU
replacement) exactly as trace-driven simulators use them. This separation
keeps fault-injection semantics clean: a bit flip corrupts architectural
values, never cache metadata.
"""

from .main_memory import MainMemory
from .cache import Cache, CacheStats
from .hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "MainMemory",
    "Cache",
    "CacheStats",
    "AccessResult",
    "MemoryHierarchy",
]
