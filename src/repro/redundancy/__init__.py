"""Redundant-execution baselines (SRT / SRT-iso, paper Section 4)."""

from .srt import srt_iso_core, dynamic_length

__all__ = ["srt_iso_core", "dynamic_length"]
