"""SRT and SRT-iso: redundant-multithreading comparison points.

The paper compares against an idealised SRT [21]: each leading thread has
a trailing copy on the same core which never mispredicts (branch outcome
queue) and never misses the cache (load value queue), paying only the
resource pressure of its instructions. *SRT-iso* further runs the trailing
copy for only a fraction of the program equal to FaultHound's coverage, so
the two schemes are compared at matched coverage.

Here a trailing copy is a real extra SMT context executing the same
program with ``ideal_branch``/``ideal_memory`` set and ``max_commits``
capping it at the coverage fraction. Energy and slowdown then emerge from
the shared-resource contention the paper describes rather than from an
analytic adder. The baseline for comparison runs the same leading threads
without the trailing contexts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from ..config import HardwareConfig
from ..errors import ConfigurationError
from ..isa.interpreter import Interpreter
from ..isa.program import Program
from ..pipeline.core import PipelineCore


def dynamic_length(program: Program, cap: int = 2_000_000) -> int:
    """Committed-instruction count of *program* (golden interpretation)."""
    interp = Interpreter(program)
    interp.run(max_instructions=cap)
    return interp.state.instret


def srt_iso_core(programs: Sequence[Program],
                 hw: Optional[HardwareConfig] = None,
                 coverage: float = 1.0,
                 lengths: Optional[Sequence[int]] = None) -> PipelineCore:
    """Build a core running *programs* plus their SRT trailing copies.

    ``coverage=1.0`` is plain SRT (full redundancy); smaller values give
    SRT-iso at that coverage. *lengths* (committed instructions per leading
    program) may be passed to avoid re-interpreting; they are computed
    otherwise.
    """
    if not 0.0 <= coverage <= 1.0:
        raise ConfigurationError("coverage must be within [0, 1]")
    hw = hw or HardwareConfig()
    contexts = 2 * len(programs)
    hw_srt = replace(hw, smt_contexts=contexts)

    if lengths is None:
        lengths = [dynamic_length(p) for p in programs]

    all_programs: List[Program] = list(programs) + list(programs)
    options: List[dict] = [{} for _ in programs]
    for length in lengths:
        max_commits = max(1, int(coverage * length))
        options.append({
            "ideal_branch": True,
            "ideal_memory": True,
            "max_commits": max_commits,
        })
    return PipelineCore(all_programs, hw=hw_srt, thread_options=options)


__all__ = ["srt_iso_core", "dynamic_length"]
