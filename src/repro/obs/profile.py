"""Opt-in profiling hooks: cProfile around campaigns, top-N dump.

``repro campaign --profile`` / ``repro figure --profile`` wrap the whole
command in :func:`profiled`; ``repro bench --profile`` additionally
turns on the core's cheap per-stage wall-clock accounting
(:meth:`~repro.pipeline.core.PipelineCore.enable_stage_profiling`) so
the hot loop's cost splits by pipeline stage without a full profiler
run.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator, Optional, TextIO


@contextmanager
def profiled(enabled: bool, top: int = 20,
             stream: Optional[TextIO] = None) -> Iterator[None]:
    """cProfile the body and print the *top* cumulative-time entries.

    A no-op when *enabled* is false, so call sites wrap unconditionally.
    """
    if not enabled:
        yield
        return
    stream = stream or sys.stderr
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats("cumulative").print_stats(top)
        print(f"[repro] cProfile top {top} by cumulative time:",
              file=stream)
        print(buffer.getvalue().rstrip(), file=stream)


def format_stage_seconds(stage_seconds: dict) -> str:
    """One-line rendering of a core's per-stage accounting."""
    total = sum(stage_seconds.values()) or 1.0
    parts = [f"{name}={seconds:.3f}s ({100 * seconds / total:.0f}%)"
             for name, seconds in sorted(stage_seconds.items(),
                                         key=lambda kv: -kv[1])]
    return " ".join(parts) if parts else "no stages timed"


__all__ = ["format_stage_seconds", "profiled"]
