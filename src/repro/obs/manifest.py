"""Run manifests: the provenance record behind every artefact.

A manifest answers "what exactly produced this result?" after the run
is gone: the artefact kind and cache key, the canonicalised
:class:`~repro.harness.experiment.ExperimentConfig` and
:class:`~repro.config.HardwareConfig` that parameterised it, a SHA-256
digest of that configuration, the code-version salt of the source tree,
the worker count, per-phase wall-clock and cache provenance. One is
written next to every persistent cache artefact
(``<digest>.manifest.json`` beside the ``.pkl``), next to every figure
the benchmark suite records, and next to the event log of every CLI run
that asked for one.

Verification is self-contained: the canonical config is embedded, so
:func:`verify_manifest` can recompute the digest from the manifest
alone, and — given a live config — prove the artefact belongs to it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Manifest format version.
MANIFEST_SCHEMA = 1


def _canonical(value: Any) -> Any:
    # Lazy import: harness.experiment imports repro.obs at module level,
    # so obs must not import harness until call time.
    from ..harness.cache import _canonical as canonical
    return canonical(value)


def _code_salt() -> str:
    from ..harness.cache import code_version_salt
    return code_version_salt()


def config_digest(cfg: Any, hw: Any) -> str:
    """SHA-256 over the canonical (experiment, hardware) configuration."""
    document = {"cfg": _canonical(cfg), "hw": _canonical(hw)}
    blob = json.dumps(document, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:32]


@dataclass
class RunManifest:
    """Everything needed to trace one artefact back to its inputs."""

    kind: str                       # "fault_free" | "figure" | "campaign" ...
    config_digest: str
    code_salt: str
    config: Dict[str, Any]          # canonical ExperimentConfig
    hw: Dict[str, Any]              # canonical HardwareConfig
    parts: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None       # artifact-cache key, when cached
    jobs: int = 1
    from_cache: bool = False
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    created: str = ""
    schema: int = MANIFEST_SCHEMA

    def as_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def build_manifest(kind: str, cfg: Any, hw: Any, *,
                   parts: Optional[Dict[str, Any]] = None,
                   key: Optional[str] = None, jobs: int = 1,
                   from_cache: bool = False,
                   phase_seconds: Optional[Dict[str, float]] = None,
                   metrics: Optional[Dict[str, Any]] = None) -> RunManifest:
    """Assemble a manifest for one artefact or run."""
    return RunManifest(
        kind=kind,
        config_digest=config_digest(cfg, hw),
        code_salt=_code_salt(),
        config=_canonical(cfg),
        hw=_canonical(hw),
        parts=_canonical(parts or {}),
        key=key,
        jobs=jobs,
        from_cache=from_cache,
        phase_seconds={k: round(v, 6)
                       for k, v in (phase_seconds or {}).items()},
        metrics=metrics or {},
        created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()))


def write_manifest(path: str | os.PathLike, manifest: RunManifest) -> bool:
    """Write *manifest* as pretty JSON; False when the write failed
    (provenance must never take the run down)."""
    path = pathlib.Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest.as_dict(), sort_keys=True,
                                   indent=2) + "\n", encoding="utf-8")
    except OSError:
        return False
    return True


def load_manifest(path: str | os.PathLike) -> RunManifest:
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    fields = {f.name for f in dataclasses.fields(RunManifest)}
    return RunManifest(**{k: v for k, v in document.items() if k in fields})


def verify_manifest(manifest: RunManifest, cfg: Any = None,
                    hw: Any = None) -> List[str]:
    """Consistency errors (empty list = verified).

    Always recomputes the digest from the embedded canonical config;
    with a live ``cfg``/``hw`` pair, additionally proves the manifest
    describes *that* configuration.
    """
    errors = []
    document = {"cfg": manifest.config, "hw": manifest.hw}
    blob = json.dumps(document, sort_keys=True).encode()
    recomputed = hashlib.sha256(blob).hexdigest()[:32]
    if recomputed != manifest.config_digest:
        errors.append(f"config digest mismatch: recorded "
                      f"{manifest.config_digest}, recomputed {recomputed}")
    if cfg is not None and hw is not None:
        live = config_digest(cfg, hw)
        if live != manifest.config_digest:
            errors.append(f"manifest does not describe this configuration: "
                          f"live digest {live}, recorded "
                          f"{manifest.config_digest}")
    if manifest.schema != MANIFEST_SCHEMA:
        errors.append(f"unknown manifest schema {manifest.schema}")
    return errors


def manifest_path_for(artefact_path: str | os.PathLike) -> pathlib.Path:
    """The manifest's conventional location next to an artefact."""
    artefact_path = pathlib.Path(artefact_path)
    return artefact_path.with_suffix(".manifest.json") \
        if artefact_path.suffix == ".pkl" \
        else artefact_path.with_name(artefact_path.name + ".manifest.json")


__all__ = ["MANIFEST_SCHEMA", "RunManifest", "build_manifest",
           "config_digest", "load_manifest", "manifest_path_for",
           "verify_manifest", "write_manifest"]
