"""Structured event log: typed, timestamped JSONL telemetry.

One :class:`EventLog` belongs to one run (one CLI invocation or one
benchmark session) and appends one JSON object per line to a single
file. Events are *typed* — ``span_start``/``span_end`` pairs around
every harness phase, ``counter`` samples, ``cache`` hit/miss records,
worker lifecycle markers and one ``fault_audit`` record per injected
fault — so the log is machine-readable after the run ends
(``repro report --events`` validates and summarises it; the field
contract lives in :mod:`repro.obs.schema`).

Process-pool safety (the PR-1 fan-out): workers never share the parent's
file handle. Instead the parent exports ``REPRO_EVENTS_WORKER_DIR``
before fanning out and each worker appends to a private
``worker-<pid>.jsonl`` spool inside it (:func:`worker_task_span` opens
and closes the spool per task, so no handle survives a fork or an
absorb). After every fan-out the parent merges the spools back into the
main log, ordered by timestamp, and emits one ``worker_merge`` marker
per absorbed worker.

When observability is disabled every call site holds the shared
:data:`NULL_LOG` whose methods are no-ops — the log costs nothing when
it is off.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

#: Environment variable through which the parent hands pool workers the
#: spool directory for their private event files.
WORKER_DIR_ENV = "REPRO_EVENTS_WORKER_DIR"

#: Version stamped into ``run_start`` events and manifests.
SCHEMA_VERSION = 1


def _now() -> float:
    return round(time.time(), 6)


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we may not steal spools from."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True     # exists but not ours (EPERM) — still alive
    return True


def _spool_pid(spool: pathlib.Path) -> int:
    """The owning pid encoded in a ``worker-<pid>.jsonl`` filename."""
    try:
        return int(spool.stem.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return -1


class NullEventLog:
    """Do-nothing sink: the disabled-observability fast path."""

    enabled = False
    path = None

    def emit(self, event_type: str, **fields: Any) -> None:
        pass

    def counter(self, name: str, value: float, **attrs: Any) -> None:
        pass

    def cache_event(self, kind: str, key: str, hit: bool) -> None:
        pass

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        yield None

    def worker_spool(self) -> Optional[str]:
        return None

    def absorb_worker_files(self) -> int:
        return 0

    def close(self) -> None:
        pass


#: The shared disabled sink; ``log is NULL_LOG`` is the "off" test.
NULL_LOG = NullEventLog()


class EventLog:
    """Append-only JSONL event sink with nested spans.

    Spans nest through an explicit stack: ``span_start`` carries the
    enclosing span's id as ``parent``, so the log reconstructs the full
    phase tree (figure → phase → fan-out → worker task) offline.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike, run_id: Optional[str] = None):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.run_id = run_id or f"run-{os.getpid()}-{int(time.time())}"
        self._ids = itertools.count(1)
        self._stack: List[str] = []
        self._closed = False
        self.emit("run_start", run=self.run_id, schema=SCHEMA_VERSION)
        self._sweep_stale_spools()

    def _sweep_stale_spools(self) -> None:
        """Delete worker spool files left behind by a previous run.

        A worker SIGKILLed before the parent's merge — or a parent that
        died mid-campaign — leaves ``worker-*.jsonl`` files in the spool
        directory. They belong to a different run, so merging them here
        would corrupt this log's timeline; sweep them instead, leaving
        one ``orphan_spool`` marker behind. A spool whose encoded pid is
        still alive (a concurrent run's active worker) is kept."""
        directory = self.worker_dir
        if not directory.is_dir():
            return
        swept = kept = 0
        for spool in sorted(directory.glob("worker-*.jsonl")):
            pid = _spool_pid(spool)
            if pid != os.getpid() and _pid_alive(pid):
                kept += 1
                continue
            try:
                spool.unlink()
                swept += 1
            except OSError:
                pass
        if swept:
            self.emit("orphan_spool", files=swept, action="swept_stale")
        if kept:
            self.emit("orphan_spool", files=kept, action="kept_live")

    # -- emission ------------------------------------------------------
    def emit(self, event_type: str, **fields: Any) -> None:
        if self._closed:
            return
        record: Dict[str, Any] = {"ts": _now(), "type": event_type,
                                  "pid": os.getpid()}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def counter(self, name: str, value: float, **attrs: Any) -> None:
        self.emit("counter", name=name, value=value, attrs=attrs)

    def cache_event(self, kind: str, key: str, hit: bool) -> None:
        self.emit("cache", kind=kind, key=key, hit=bool(hit))

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[str]:
        """Emit a ``span_start``/``span_end`` pair around the body."""
        span_id = f"{os.getpid()}:{next(self._ids)}"
        parent = self._stack[-1] if self._stack else None
        self.emit("span_start", span=span_id, parent=parent, name=name,
                  attrs=attrs)
        self._stack.append(span_id)
        started = time.perf_counter()
        try:
            yield span_id
        finally:
            self._stack.pop()
            self.emit("span_end", span=span_id, name=name,
                      seconds=round(time.perf_counter() - started, 6))

    # -- worker spool --------------------------------------------------
    @property
    def worker_dir(self) -> pathlib.Path:
        return self.path.with_name(self.path.name + ".workers")

    def worker_spool(self) -> str:
        """Create (if needed) and return the worker spool directory."""
        self.worker_dir.mkdir(parents=True, exist_ok=True)
        return str(self.worker_dir)

    def absorb_worker_files(self) -> int:
        """Merge every worker spool file into the main log (ts order).

        Returns the number of absorbed events. Spool files are removed
        once absorbed; a truncated trailing line (worker killed mid-
        write) is skipped, not fatal.
        """
        directory = self.worker_dir
        if not directory.is_dir():
            return 0
        absorbed: List[Dict[str, Any]] = []
        merges: List[Dict[str, Any]] = []
        for spool in sorted(directory.glob("worker-*.jsonl")):
            records = []
            try:
                with open(spool, encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            records.append(json.loads(line))
                        except json.JSONDecodeError:
                            continue
                spool.unlink()
            except OSError:
                continue
            if not records:
                continue
            absorbed.extend(records)
            merges.append({"worker_pid": records[0].get("pid", -1),
                           "events": len(records)})
        absorbed.sort(key=lambda r: (r.get("ts", 0.0), r.get("pid", 0)))
        for record in absorbed:
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        for merge in merges:
            self.emit("worker_merge", **merge)
        self._handle.flush()
        return len(absorbed)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self.absorb_worker_files()
        self._drop_orphan_spools()
        self.emit("run_end", run=self.run_id)
        self._closed = True
        self._handle.close()

    def _drop_orphan_spools(self) -> None:
        """Final spool-directory sweep on run exit.

        Everything mergeable was just absorbed; whatever remains is an
        orphan (a spool the absorb pass could not read, or one written
        by a worker racing the shutdown). Delete the leftovers — except
        any owned by a still-live foreign pid — record the fact, and
        remove the (now empty) directory."""
        directory = self.worker_dir
        if not directory.is_dir():
            return
        dropped = kept = 0
        for spool in directory.glob("worker-*.jsonl"):
            pid = _spool_pid(spool)
            if pid != os.getpid() and _pid_alive(pid):
                kept += 1
                continue
            try:
                spool.unlink()
                dropped += 1
            except OSError:
                pass
        if dropped:
            self.emit("orphan_spool", files=dropped, action="deleted")
        if kept:
            self.emit("orphan_spool", files=kept, action="kept_live")
        try:
            directory.rmdir()
        except OSError:
            pass    # live spools or nested dirs present, or a racer

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# worker-side emission (pool processes; no shared handles)
# ----------------------------------------------------------------------
_WORKER_IDS = itertools.count(1)
_WORKER_STARTED: set = set()


@contextmanager
def worker_task_span(name: str, **attrs: Any) -> Iterator[None]:
    """Span a worker task; buffered and appended to this worker's spool.

    A no-op unless the parent exported :data:`WORKER_DIR_ENV`. The spool
    file is opened append-only for one single write per task, so forked
    children never inherit a live handle and the parent can absorb the
    spool between fan-outs.
    """
    directory = os.environ.get(WORKER_DIR_ENV)
    if not directory:
        yield
        return
    pid = os.getpid()
    records: List[Dict[str, Any]] = []

    def emit(event_type: str, **fields: Any) -> None:
        record: Dict[str, Any] = {"ts": _now(), "type": event_type,
                                  "pid": pid}
        record.update(fields)
        records.append(record)

    if (pid, directory) not in _WORKER_STARTED:
        _WORKER_STARTED.add((pid, directory))
        emit("worker_start")
    span_id = f"{pid}:w{next(_WORKER_IDS)}"
    emit("span_start", span=span_id, parent=None, name=name, attrs=attrs)
    started = time.perf_counter()
    try:
        yield
    finally:
        emit("span_end", span=span_id, name=name,
             seconds=round(time.perf_counter() - started, 6))
        from .metrics import drain_worker_metrics
        snapshot = drain_worker_metrics()
        if snapshot:
            emit("metrics", snapshot=snapshot, scope="worker")
        try:
            path = pathlib.Path(directory) / f"worker-{pid}.jsonl"
            with open(path, "a", encoding="utf-8") as handle:
                handle.write("".join(json.dumps(r, sort_keys=True) + "\n"
                                     for r in records))
        except OSError:
            pass    # telemetry must never take the computation down


def read_events(path: str | os.PathLike) -> List[Dict[str, Any]]:
    """Load a JSONL event log into a list of dicts.

    Parsing is strict for every *complete* (newline-terminated) line —
    a corrupt one raises ``ValueError``. A torn final line with no
    trailing newline is the signature of a writer killed mid-append;
    it is tolerated: if it parses it is kept, otherwise it is replaced
    by one synthesized ``truncated_tail`` note event so downstream
    consumers can see the log ended raggedly without crashing.
    """
    with open(path, encoding="utf-8", newline="") as handle:
        content = handle.read()
    lines = content.split("\n")
    tail = lines.pop()          # "" when content ends with a newline
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: not JSON: {exc}") from None
    if tail.strip():
        try:
            events.append(json.loads(tail))
        except json.JSONDecodeError:
            last_ts = events[-1].get("ts", 0.0) if events else 0.0
            events.append({"ts": last_ts, "type": "truncated_tail",
                           "pid": 0, "line": len(lines) + 1,
                           "bytes": len(tail.encode("utf-8"))})
    return events


__all__ = ["EventLog", "NullEventLog", "NULL_LOG", "SCHEMA_VERSION",
           "WORKER_DIR_ENV", "read_events", "worker_task_span"]
