"""Typed, low-overhead metrics registry: the fifth leg of ``repro.obs``.

Three instrument kinds, mirroring the Prometheus data model:

- :class:`Counter` — monotonically increasing totals (cycles stepped,
  cache hits, supervisor retries);
- :class:`Gauge` — last-written values (IPC, average ROB occupancy,
  workers alive);
- :class:`Histogram` — fixed-bucket distributions (chunk seconds,
  artifact bytes, detection latency). Bucket schemas are *fixed at
  registration* so snapshots from different processes merge with plain
  element-wise addition and aggregates compare with ``==``.

The registry follows the ``NULL_LOG`` pattern exactly: call sites hold
:data:`NULL_METRICS` (a shared no-op singleton) when telemetry is off,
so the instrumented hot paths cost one attribute call that does
nothing. Fork-safety reuses the worker-spool design of
:mod:`repro.obs.events`: pool workers accumulate into a private
module-level registry (:func:`worker_metrics`) that
:func:`repro.obs.events.worker_task_span` drains into the worker's
event spool as one ``metrics`` event per task; the parent absorbs the
spools and any consumer folds the per-process snapshots back together
with :func:`snapshot_from_events` / :meth:`MetricsRegistry.merge`.

:func:`to_prometheus` renders a snapshot in the Prometheus text
exposition format for ``repro metrics export``.
"""

from __future__ import annotations

import os
import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

# -- shared bucket schemas ---------------------------------------------
#: Detection-latency buckets, matching the fixed geometry of
#: ``repro.obs.audit.detection_latency_histogram`` (8 bins x 16 cycles;
#: everything past the last bound lands in the implicit overflow bucket).
LATENCY_CYCLE_BUCKETS: Tuple[float, ...] = tuple(
    float(16 * (i + 1)) for i in range(8))

#: Wall-clock buckets for spans/chunks/phases, in seconds.
SECONDS_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)

#: Payload-size buckets for cache traffic, in bytes.
BYTES_BUCKETS: Tuple[float, ...] = (
    1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
    1048576.0, 4194304.0, 16777216.0)


def _num(value: float) -> Any:
    """Ints where exact — keeps snapshots JSON-clean and ``==``-stable."""
    as_float = float(value)
    if as_float.is_integer():
        return int(as_float)
    return as_float


class Counter:
    """Monotonic total. ``inc()`` is the only mutator."""

    __slots__ = ("name", "_value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def value(self) -> float:
        return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "_value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with sum and count.

    ``buckets`` are inclusive upper bounds in ascending order; one
    implicit overflow bucket catches everything beyond the last bound.
    Counts are stored per-bucket (not cumulative) so two snapshots
    merge by element-wise addition; :func:`to_prometheus` converts to
    the cumulative ``le`` form on export.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float]):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"histogram {name!r}: buckets must be ascending and "
                f"unique, got {bounds}")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def value(self) -> Dict[str, Any]:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "sum": _num(self.sum), "count": self.count}


class _NullInstrument:
    """One no-op stands in for all three kinds when metrics are off."""

    __slots__ = ()
    name = "null"

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def value(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Named instruments, memoised by name, snapshot/merge-able.

    Names are namespaced by convention (``core_cycles_total``,
    ``cache_hits_total``, ``supervisor_chunk_seconds``); re-registering
    a name returns the existing instrument, and registering it as a
    different kind (or a histogram with a different bucket schema) is a
    programming error and raises.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    # -- registration --------------------------------------------------
    def _get(self, name: str, kind: str, factory) -> Any:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != kind:
            raise ValueError(f"metric {name!r} already registered as "
                             f"{instrument.kind}, not {kind}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name))

    def histogram(self, name: str,
                  buckets: Iterable[float] = SECONDS_BUCKETS) -> Histogram:
        histogram = self._get(name, "histogram",
                              lambda: Histogram(name, buckets))
        wanted = tuple(float(b) for b in buckets)
        if histogram.buckets != wanted:
            raise ValueError(f"histogram {name!r} already registered with "
                             f"buckets {histogram.buckets}, not {wanted}")
        return histogram

    # -- snapshot / merge ----------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: ``{"counters": .., "gauges": .., "histograms": ..}``."""
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.kind == "counter":
                counters[name] = _num(instrument.value())
            elif instrument.kind == "gauge":
                gauges[name] = _num(instrument.value())
            else:
                histograms[name] = instrument.value()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram cells add; gauges take the incoming
        value (last writer wins, matching single-process semantics).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, dump in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, dump["buckets"])
            counts = dump["counts"]
            if len(counts) != len(histogram.counts):
                raise ValueError(f"histogram {name!r}: merge with "
                                 f"mismatched bucket schema")
            for index, cell in enumerate(counts):
                histogram.counts[index] += cell
            histogram.sum += dump.get("sum", 0.0)
            histogram.count += dump.get("count", 0)

    def clear(self) -> None:
        self._instruments.clear()

    def emit(self, events: Any, scope: str = "session") -> None:
        """Write one ``metrics`` event carrying the current snapshot."""
        if self._instruments and getattr(events, "enabled", False):
            events.emit("metrics", snapshot=self.snapshot(), scope=scope)


class NullMetricsRegistry:
    """Do-nothing registry: the metrics-off fast path."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str,
                  buckets: Iterable[float] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        pass

    def clear(self) -> None:
        pass

    def emit(self, events: Any, scope: str = "session") -> None:
        pass


#: The shared disabled registry; ``metrics is NULL_METRICS`` is the
#: "off" test, exactly like ``NULL_LOG``.
NULL_METRICS = NullMetricsRegistry()


# ----------------------------------------------------------------------
# worker-side accumulation (pool processes; drained via the event spool)
# ----------------------------------------------------------------------
_WORKER_REGISTRY = MetricsRegistry()


def worker_metrics() -> Any:
    """The per-process accumulator for pool workers.

    Live only when the parent exported the worker spool directory
    (``REPRO_EVENTS_WORKER_DIR``) — i.e. exactly when worker events are
    being collected; otherwise the NULL registry, so library code can
    call this unconditionally.
    """
    from .events import WORKER_DIR_ENV
    if os.environ.get(WORKER_DIR_ENV):
        return _WORKER_REGISTRY
    return NULL_METRICS


def drain_worker_metrics() -> Optional[Dict[str, Any]]:
    """Snapshot-and-reset the worker accumulator (None when empty)."""
    if not len(_WORKER_REGISTRY):
        return None
    snapshot = _WORKER_REGISTRY.snapshot()
    _WORKER_REGISTRY.clear()
    return snapshot


# ----------------------------------------------------------------------
# consumption
# ----------------------------------------------------------------------
def snapshot_from_events(events: Iterable[dict]) -> Dict[str, Any]:
    """Merge every ``metrics`` event in a log into one snapshot."""
    registry = MetricsRegistry()
    for event in events:
        if event.get("type") == "metrics":
            snapshot = event.get("snapshot")
            if isinstance(snapshot, dict):
                registry.merge(snapshot)
    return registry.snapshot()


_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(namespace: str, name: str) -> str:
    return _NAME_RE.sub("_", f"{namespace}_{name}" if namespace else name)


def _prom_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


def to_prometheus(snapshot: Dict[str, Any], namespace: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        full = _prom_name(namespace, name)
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_prom_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        full = _prom_name(namespace, name)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_prom_value(value)}")
    for name, dump in snapshot.get("histograms", {}).items():
        full = _prom_name(namespace, name)
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        for bound, cell in zip(dump["buckets"], dump["counts"]):
            cumulative += cell
            lines.append(f'{full}_bucket{{le="{_prom_value(bound)}"}} '
                         f"{cumulative}")
        cumulative += dump["counts"][-1]
        lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{full}_sum {_prom_value(dump.get('sum', 0))}")
        lines.append(f"{full}_count {dump.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetricsRegistry", "NULL_METRICS",
           "LATENCY_CYCLE_BUCKETS", "SECONDS_BUCKETS", "BYTES_BUCKETS",
           "worker_metrics", "drain_worker_metrics",
           "snapshot_from_events", "to_prometheus"]
