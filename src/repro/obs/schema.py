"""The event-log field contract and its validator.

The schema is deliberately plain data — a dict of required/optional
field types per event type — validated with stock Python so the CI
smoke job needs no external JSON-schema dependency. Two layers:

- **field validation** (:func:`validate_event`): every event carries the
  common envelope (``ts``/``type``/``pid``) plus its type's required
  fields with the right primitive types;
- **structural validation** (:func:`check_spans`): ``span_start`` /
  ``span_end`` pair up per span id, and within one process they close
  in LIFO order (proper nesting), even after worker spools have been
  merged into the main log.

:func:`validate_events` runs both over a parsed log and returns a flat
list of human-readable errors (empty means schema-valid).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

_NUMBER = (int, float)

#: Required fields (name → allowed types) per event type, beyond the
#: common ``ts``/``type``/``pid`` envelope.
REQUIRED_FIELDS: Dict[str, Dict[str, tuple]] = {
    "run_start": {"run": (str,), "schema": (int,)},
    "run_end": {"run": (str,)},
    "span_start": {"span": (str,), "name": (str,), "attrs": (dict,)},
    "span_end": {"span": (str,), "name": (str,), "seconds": _NUMBER},
    "counter": {"name": (str,), "value": _NUMBER},
    "cache": {"kind": (str,), "key": (str,), "hit": (bool,)},
    "checkpoint": {"action": (str,), "window": (int,)},
    "worker_start": {},
    "worker_merge": {"worker_pid": (int,), "events": (int,)},
    "invariant": {"invariant": (str,), "cycle": (int,), "detail": (str,)},
    "fault_audit": {
        "benchmark": (str,), "scheme": (str,), "phase": (str,),
        "index": (int,), "site": (str,), "bit": (int,),
        "inject_at_commit": (int,), "applied": (bool,),
        "triggers": (int,), "replays": (int,), "rollbacks": (int,),
        "singletons": (int,), "suppressions": (int,), "declared": (int,),
        "recovery": (str,),
    },
    # the resilient campaign supervisor's lifecycle trail
    "supervisor": {"action": (str,)},
    # the harness deliberately reduced capability instead of aborting
    "degradation": {"reason": (str,)},
    # the artifact cache hit (and dropped or quarantined) an unreadable entry
    "cache_corrupt": {"kind": (str,)},
    # worker event spools left behind by dead workers, swept by the parent
    "orphan_spool": {"files": (int,)},
    # one folded metrics-registry snapshot (session close / worker drain)
    "metrics": {"snapshot": (dict,)},
    # periodic supervisor liveness beacon while a fan-out is in flight
    "heartbeat": {"phase": (str,), "running": (int,), "pending": (int,)},
    # synthesized by read_events/the follower for a torn final JSONL line
    "truncated_tail": {"line": (int,), "bytes": (int,)},
    # the campaign job server's lifecycle trail (`repro serve`)
    "job": {"action": (str,), "job": (str,)},
    # fabric agent membership, as seen by the remote chunk executor
    "agent": {"action": (str,), "agent": (str,)},
    # chunk-lease lifecycle on the distributed campaign fabric
    "lease": {"action": (str,), "key": (str,), "agent": (str,)},
}

#: Optional fields that, when present, must have these types
#: (``None`` is always allowed for optional fields).
OPTIONAL_FIELDS: Dict[str, Dict[str, tuple]] = {
    "span_start": {"parent": (str,)},
    "counter": {"attrs": (dict,)},
    "checkpoint": {"benchmark": (str,), "scheme": (str,),
                   "bytes": (int,), "committed": (int,), "cycle": (int,)},
    "fault_audit": {"fault_class": (str,), "outcome": (str,),
                    "detection_latency": (int,),
                    "first_trigger_cycle": (int,),
                    "inject_cycle": (int,)},
    # emitted by the pipeline invariant sanitizer; seed/case identify the
    # fuzz program when `repro verify` is the driver
    "invariant": {"seed": (int,), "case": (str,)},
    "supervisor": {"phase": (str,), "benchmark": (str,), "scheme": (str,),
                   "lo": (int,), "hi": (int,), "attempt": (int,),
                   "reason": (str,), "error": (str,), "key": (str,),
                   "status": (str,), "chunks": (int,), "windows": (int,),
                   "resumed": (int,), "quarantined": (int,),
                   "pending": (int,), "running": (int,),
                   "executor": (str,)},
    "degradation": {"detail": (str,), "jobs_from": (int,),
                    "jobs_to": (int,), "phase": (str,)},
    "cache_corrupt": {"key": (str,), "path": (str,), "error": (str,),
                      "action": (str,)},
    "orphan_spool": {"action": (str,), "events": (int,)},
    "metrics": {"scope": (str,)},
    "heartbeat": {"benchmark": (str,), "scheme": (str,),
                  "workers": (list,), "windows_done": (int,),
                  "windows_total": (int,)},
    "job": {"name": (str,), "priority": (int,), "task": (str,),
            "index": (int,), "state": (str,), "exit_code": (int,),
            "reason": (str,)},
    "agent": {"pid": (int,), "reason": (str,), "slots": (int,),
              "fabric": (str,)},
    "lease": {"lo": (int,), "hi": (int,), "attempt": (int,),
              "reason": (str,), "phase": (str,),
              "speculative": (bool,)},
}

#: The recovery labels a ``fault_audit`` event may carry.
RECOVERY_LABELS = ("rollback", "replay", "singleton", "suppress", "none")

#: The actions a ``checkpoint`` event may carry: the dispatcher either
#: captured a fresh chunk-boundary checkpoint or reloaded a cached one.
CHECKPOINT_ACTIONS = ("capture", "hit")

#: The lifecycle actions a ``supervisor`` event may carry.
SUPERVISOR_ACTIONS = ("plan", "chunk_done", "retry", "timeout",
                      "pool_rebuild", "bisect", "quarantine", "drain",
                      "phase_done")

#: The lifecycle actions a ``job`` event may carry (`repro serve`).
JOB_ACTIONS = ("submitted", "adopted", "started", "task_start",
               "task_done", "done", "cancelled", "requeued",
               "interrupted")

#: Fabric-agent membership transitions (`repro agent` / ``--fabric``).
AGENT_ACTIONS = ("join", "rejoin", "leave", "lost")

#: Chunk-lease lifecycle on the distributed fabric. ``adopt`` marks a
#: result folded straight from the shared store (no live lease);
#: ``dedup`` marks a second result for an already-completed chunk key
#: (first result wins).
LEASE_ACTIONS = ("grant", "complete", "expire", "speculate", "cancel",
                 "dedup", "adopt")

#: What the cache did about a corrupt entry.
CACHE_CORRUPT_ACTIONS = ("dropped", "quarantined")

#: What the parent did about an orphaned worker spool file:
#: swept a stale one on open, deleted a leftover on close, or kept one
#: whose owning pid is still alive (a concurrent run's active worker).
ORPHAN_SPOOL_ACTIONS = ("swept_stale", "deleted", "kept_live")


def validate_event(event: Any, where: str = "event") -> List[str]:
    """Field-level errors for one parsed event (empty list = valid)."""
    if not isinstance(event, dict):
        return [f"{where}: not an object"]
    errors = []
    for field, types in (("ts", _NUMBER), ("type", (str,)), ("pid", (int,))):
        if field not in event:
            errors.append(f"{where}: missing common field {field!r}")
        elif not isinstance(event[field], types):
            errors.append(f"{where}: field {field!r} has type "
                          f"{type(event[field]).__name__}")
    event_type = event.get("type")
    if not isinstance(event_type, str):
        return errors
    if event_type not in REQUIRED_FIELDS:
        errors.append(f"{where}: unknown event type {event_type!r}")
        return errors
    for field, types in REQUIRED_FIELDS[event_type].items():
        if field not in event:
            errors.append(f"{where}: {event_type} missing field {field!r}")
        elif not isinstance(event[field], types):
            errors.append(f"{where}: {event_type}.{field} has type "
                          f"{type(event[field]).__name__}")
    for field, types in OPTIONAL_FIELDS.get(event_type, {}).items():
        value = event.get(field)
        if value is not None and field in event \
                and not isinstance(value, types):
            errors.append(f"{where}: {event_type}.{field} has type "
                          f"{type(value).__name__}")
    if (event_type == "fault_audit"
            and event.get("recovery") not in RECOVERY_LABELS):
        errors.append(f"{where}: fault_audit.recovery "
                      f"{event.get('recovery')!r} not in {RECOVERY_LABELS}")
    if (event_type == "checkpoint"
            and event.get("action") not in CHECKPOINT_ACTIONS):
        errors.append(f"{where}: checkpoint.action "
                      f"{event.get('action')!r} not in {CHECKPOINT_ACTIONS}")
    if (event_type == "supervisor"
            and event.get("action") not in SUPERVISOR_ACTIONS):
        errors.append(f"{where}: supervisor.action "
                      f"{event.get('action')!r} not in {SUPERVISOR_ACTIONS}")
    if event_type == "job" and event.get("action") not in JOB_ACTIONS:
        errors.append(f"{where}: job.action "
                      f"{event.get('action')!r} not in {JOB_ACTIONS}")
    if event_type == "agent" and event.get("action") not in AGENT_ACTIONS:
        errors.append(f"{where}: agent.action "
                      f"{event.get('action')!r} not in {AGENT_ACTIONS}")
    if event_type == "lease" and event.get("action") not in LEASE_ACTIONS:
        errors.append(f"{where}: lease.action "
                      f"{event.get('action')!r} not in {LEASE_ACTIONS}")
    if (event_type == "cache_corrupt" and "action" in event
            and event.get("action") not in CACHE_CORRUPT_ACTIONS):
        errors.append(f"{where}: cache_corrupt.action "
                      f"{event.get('action')!r} not in "
                      f"{CACHE_CORRUPT_ACTIONS}")
    if (event_type == "orphan_spool" and "action" in event
            and event.get("action") not in ORPHAN_SPOOL_ACTIONS):
        errors.append(f"{where}: orphan_spool.action "
                      f"{event.get('action')!r} not in "
                      f"{ORPHAN_SPOOL_ACTIONS}")
    return errors


def check_spans(events: Iterable[dict]) -> List[str]:
    """Structural errors: unmatched or improperly nested spans.

    Nesting is checked per process id — after worker spools merge into
    the main log, each pid's spans must still close LIFO.
    """
    errors = []
    stacks: Dict[int, List[Tuple[str, str]]] = {}
    for event in events:
        event_type = event.get("type")
        pid = event.get("pid", -1)
        if event_type == "span_start":
            stacks.setdefault(pid, []).append(
                (event.get("span", "?"), event.get("name", "?")))
        elif event_type == "span_end":
            stack = stacks.setdefault(pid, [])
            span = event.get("span", "?")
            if not stack:
                errors.append(f"span_end {span} without open span "
                              f"(pid {pid})")
            elif stack[-1][0] != span:
                errors.append(f"span_end {span} closes out of order: "
                              f"top of pid-{pid} stack is {stack[-1][0]}")
                stack.pop()
            else:
                stack.pop()
    for pid, stack in stacks.items():
        for span, name in stack:
            errors.append(f"span {span} ({name!r}) never ended (pid {pid})")
    return errors


def validate_events(events: Iterable[dict]) -> List[str]:
    """Every field-level and structural error in a parsed event log."""
    events = list(events)
    errors = []
    for index, event in enumerate(events):
        errors.extend(validate_event(event, where=f"line {index + 1}"))
    errors.extend(check_spans(events))
    return errors


def summarize_events(events: Iterable[dict]) -> Dict[str, Any]:
    """A compact roll-up used by ``repro report --events``."""
    events = list(events)
    by_type: Dict[str, int] = {}
    span_seconds: Dict[str, float] = {}
    cache_hits = cache_misses = 0
    workers = set()
    for event in events:
        event_type = event.get("type", "?")
        by_type[event_type] = by_type.get(event_type, 0) + 1
        if event_type == "span_end":
            name = event.get("name", "?")
            span_seconds[name] = (span_seconds.get(name, 0.0)
                                  + float(event.get("seconds", 0.0)))
        elif event_type == "cache":
            if event.get("hit"):
                cache_hits += 1
            else:
                cache_misses += 1
        elif event_type == "worker_start":
            workers.add(event.get("pid"))
    return {
        "events": len(events),
        "by_type": dict(sorted(by_type.items())),
        "span_seconds": dict(sorted(span_seconds.items(),
                                    key=lambda kv: -kv[1])),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "workers": len(workers),
    }


__all__ = ["REQUIRED_FIELDS", "OPTIONAL_FIELDS", "RECOVERY_LABELS",
           "CHECKPOINT_ACTIONS", "SUPERVISOR_ACTIONS", "JOB_ACTIONS",
           "AGENT_ACTIONS", "LEASE_ACTIONS",
           "CACHE_CORRUPT_ACTIONS", "ORPHAN_SPOOL_ACTIONS",
           "validate_event", "validate_events",
           "check_spans", "summarize_events"]
