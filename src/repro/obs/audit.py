"""Fault-injection audit trail: one queryable record per injected fault.

CHAOS and InjectV treat the per-injection record — site, activation,
propagation, outcome — as the core deliverable of a fault-injection
platform; this module derives exactly that from the tandem classifier's
:class:`~repro.faults.classifier.WindowResult`: where the fault landed
(site / bit / injection commit), whether it applied, what the screening
scheme saw (filter triggers), which recovery action it took (suppress /
replay / rollback / singleton re-execute), the detection latency in
cycles from injection to the first filter trigger, and the final
classifier outcome (masked / noisy / SDC in phase A; the Figure 11
coverage bin in phase B).

The records aggregate into the two summary views the evaluation leans
on: the **recovery mix** (how often each action fired) and the
**detection-latency histogram** (how many cycles faults stay latent
before the filters notice). Both are pure functions of the window
results, so serial, parallel and warm-cache runs agree bit-for-bit —
the property the observability tests pin down.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterable, List, Optional

#: Precedence for the primary recovery label when a window saw several
#: action kinds: the strongest action tells the recovery story.
_RECOVERY_PRECEDENCE = ("rollback", "replay", "singleton", "suppress")

#: Histogram geometry (cycles per bin, number of bounded bins).
LATENCY_BIN_WIDTH = 16
LATENCY_BINS = 8


@dataclass(frozen=True)
class FaultAuditRecord:
    """Everything learned about one injected fault, flattened."""

    benchmark: str
    scheme: str
    phase: str                      # "characterize" | "coverage"
    index: int
    site: str
    bit: int
    inject_at_commit: int
    applied: bool
    fault_class: Optional[str]      # masked | noisy | sdc (once classified)
    triggers: int                   # filter triggers attributed to the fault
    replays: int
    rollbacks: int
    singletons: int
    suppressions: int
    declared: int                   # declared detections (LSQ compare)
    inject_cycle: int               # faulty core's cycle at injection (-1 n/a)
    first_trigger_cycle: int        # first trigger at/after injection (-1 none)
    detection_latency: Optional[int]  # cycles injection → first trigger
    recovery: str                   # rollback|replay|singleton|suppress|none
    outcome: Optional[str]          # CoverageOutcome value (phase B only)

    @classmethod
    def from_window(cls, window: Any, benchmark: str, scheme: str,
                    phase: str, outcome: Optional[str] = None
                    ) -> "FaultAuditRecord":
        record = window.record
        counts = {
            "rollback": window.rollbacks,
            "replay": window.replays,
            "singleton": window.singletons,
            "suppress": window.suppressions,
        }
        recovery = next((label for label in _RECOVERY_PRECEDENCE
                         if counts[label] > 0), "none")
        latency = (window.detection_latency
                   if getattr(window, "detection_latency", -1) >= 0 else None)
        return cls(
            benchmark=benchmark, scheme=scheme, phase=phase,
            index=record.index, site=record.site.value, bit=record.bit,
            inject_at_commit=record.inject_at_commit,
            applied=bool(window.applied),
            fault_class=(window.fault_class.value
                         if window.fault_class is not None else None),
            triggers=window.triggers, replays=window.replays,
            rollbacks=window.rollbacks, singletons=window.singletons,
            suppressions=window.suppressions, declared=window.declared,
            inject_cycle=getattr(window, "inject_cycle", -1),
            first_trigger_cycle=getattr(window, "first_trigger_cycle", -1),
            detection_latency=latency, recovery=recovery, outcome=outcome)

    def as_event(self) -> Dict[str, Any]:
        """The ``fault_audit`` event payload (flat JSON-safe dict)."""
        return asdict(self)


def audit_records(result: Any, phase: str) -> List[FaultAuditRecord]:
    """One audit record per window of a campaign phase's result.

    ``phase="characterize"`` walks the baseline characterisation windows;
    ``phase="coverage"`` walks the scheme's coverage windows and joins in
    the Figure 11 outcome bin per fault.
    """
    if phase == "characterize":
        return [FaultAuditRecord.from_window(w, result.benchmark,
                                             result.scheme, phase)
                for w in result.characterization]
    if phase == "coverage":
        records = []
        for window in result.coverage_results:
            outcome = result.outcomes.get(window.record.index)
            records.append(FaultAuditRecord.from_window(
                window, result.benchmark, result.scheme, phase,
                outcome=outcome.value if outcome is not None else None))
        return records
    raise ValueError(f"unknown audit phase {phase!r}")


# ----------------------------------------------------------------------
# aggregation (records or raw fault_audit event dicts)
# ----------------------------------------------------------------------
def _field(record: Any, name: str) -> Any:
    if isinstance(record, dict):
        return record.get(name)
    return getattr(record, name)


def recovery_mix(records: Iterable[Any]) -> Dict[str, int]:
    """Applied-fault counts per primary recovery action (stable order)."""
    mix = {label: 0 for label in (*_RECOVERY_PRECEDENCE, "none")}
    for record in records:
        if not _field(record, "applied"):
            continue
        label = _field(record, "recovery") or "none"
        mix[label] = mix.get(label, 0) + 1
    return mix


def detection_latency_histogram(records: Iterable[Any],
                                bin_width: int = LATENCY_BIN_WIDTH,
                                bins: int = LATENCY_BINS) -> Dict[str, int]:
    """Cycles-to-first-trigger histogram over detected faults.

    Fixed geometry (``bins`` bins of ``bin_width`` cycles plus one
    overflow bin), every bin present even when empty, so histograms from
    different runs compare with ``==``.
    """
    histogram = {f"{i * bin_width}-{(i + 1) * bin_width - 1}": 0
                 for i in range(bins)}
    overflow = f">={bins * bin_width}"
    histogram[overflow] = 0
    for record in records:
        latency = _field(record, "detection_latency")
        if latency is None or latency < 0:
            continue
        slot = latency // bin_width
        if slot < bins:
            histogram[f"{slot * bin_width}-{(slot + 1) * bin_width - 1}"] += 1
        else:
            histogram[overflow] += 1
    return histogram


def audit_aggregates(records: Iterable[Any]) -> Dict[str, Any]:
    """The roll-up the acceptance criteria compare bit-for-bit."""
    records = list(records)
    applied = [r for r in records if _field(r, "applied")]
    outcomes: Dict[str, int] = {}
    for record in applied:
        outcome = _field(record, "outcome")
        if outcome:
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
    return {
        "records": len(records),
        "applied": len(applied),
        "recovery_mix": recovery_mix(records),
        "detection_latency_histogram": detection_latency_histogram(records),
        "outcomes": dict(sorted(outcomes.items())),
    }


def aggregates_from_events(events: Iterable[dict]) -> Dict[str, Any]:
    """Audit aggregates recomputed from raw ``fault_audit`` log events."""
    return audit_aggregates([e for e in events
                             if e.get("type") == "fault_audit"])


__all__ = ["FaultAuditRecord", "LATENCY_BINS", "LATENCY_BIN_WIDTH",
           "aggregates_from_events", "audit_aggregates", "audit_records",
           "detection_latency_histogram", "recovery_mix"]
