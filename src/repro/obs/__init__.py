"""Structured observability: event tracing, run manifests, audit trail.

The subsystem has four legs (see docs/observability.md):

- :mod:`repro.obs.events` — typed JSONL event log with nested spans,
  safe to feed from process-pool workers;
- :mod:`repro.obs.manifest` — provenance manifests written next to
  every cached artefact and figure;
- :mod:`repro.obs.audit` — one record per injected fault plus the
  recovery-mix and detection-latency aggregates;
- :mod:`repro.obs.profile` — opt-in cProfile and per-stage accounting.
"""

from .audit import (FaultAuditRecord, aggregates_from_events,
                    audit_aggregates, audit_records,
                    detection_latency_histogram, recovery_mix)
from .events import (EventLog, NULL_LOG, NullEventLog, WORKER_DIR_ENV,
                     read_events, worker_task_span)
from .manifest import (RunManifest, build_manifest, config_digest,
                       load_manifest, manifest_path_for, verify_manifest,
                       write_manifest)
from .profile import format_stage_seconds, profiled
from .schema import check_spans, summarize_events, validate_event, \
    validate_events

__all__ = [
    "EventLog",
    "FaultAuditRecord",
    "NULL_LOG",
    "NullEventLog",
    "RunManifest",
    "WORKER_DIR_ENV",
    "aggregates_from_events",
    "audit_aggregates",
    "audit_records",
    "build_manifest",
    "check_spans",
    "config_digest",
    "detection_latency_histogram",
    "format_stage_seconds",
    "load_manifest",
    "manifest_path_for",
    "profiled",
    "read_events",
    "recovery_mix",
    "summarize_events",
    "validate_event",
    "validate_events",
    "verify_manifest",
    "worker_task_span",
    "write_manifest",
]
