"""Structured observability: tracing, manifests, audit, live telemetry.

The subsystem has five legs (see docs/observability.md):

- :mod:`repro.obs.events` — typed JSONL event log with nested spans,
  safe to feed from process-pool workers;
- :mod:`repro.obs.manifest` — provenance manifests written next to
  every cached artefact and figure;
- :mod:`repro.obs.audit` — one record per injected fault plus the
  recovery-mix and detection-latency aggregates;
- :mod:`repro.obs.profile` — opt-in cProfile and per-stage accounting;
- :mod:`repro.obs.metrics` + :mod:`repro.obs.stream` — live campaign
  telemetry: a typed metrics registry threaded through the harness and
  a streaming monitor that tails a running campaign's logs into a
  :class:`~repro.obs.stream.CampaignStatus` snapshot (``repro top``).
"""

from .audit import (FaultAuditRecord, aggregates_from_events,
                    audit_aggregates, audit_records,
                    detection_latency_histogram, recovery_mix)
from .events import (EventLog, NULL_LOG, NullEventLog, WORKER_DIR_ENV,
                     read_events, worker_task_span)
from .manifest import (RunManifest, build_manifest, config_digest,
                       load_manifest, manifest_path_for, verify_manifest,
                       write_manifest)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_METRICS, NullMetricsRegistry,
                      drain_worker_metrics, snapshot_from_events,
                      to_prometheus, worker_metrics)
from .profile import format_stage_seconds, profiled
from .schema import check_spans, summarize_events, validate_event, \
    validate_events
from .stream import (CampaignMonitor, CampaignStatus, JsonlFollower,
                     PhaseProgress, render_status)

__all__ = [
    "CampaignMonitor",
    "CampaignStatus",
    "Counter",
    "EventLog",
    "FaultAuditRecord",
    "Gauge",
    "Histogram",
    "JsonlFollower",
    "MetricsRegistry",
    "NULL_LOG",
    "NULL_METRICS",
    "NullEventLog",
    "NullMetricsRegistry",
    "PhaseProgress",
    "RunManifest",
    "WORKER_DIR_ENV",
    "aggregates_from_events",
    "audit_aggregates",
    "audit_records",
    "build_manifest",
    "check_spans",
    "config_digest",
    "detection_latency_histogram",
    "drain_worker_metrics",
    "format_stage_seconds",
    "load_manifest",
    "manifest_path_for",
    "profiled",
    "read_events",
    "recovery_mix",
    "render_status",
    "snapshot_from_events",
    "summarize_events",
    "to_prometheus",
    "validate_event",
    "validate_events",
    "verify_manifest",
    "worker_metrics",
    "worker_task_span",
    "write_manifest",
]
