"""Live campaign telemetry: tail a running campaign's logs into a
:class:`CampaignStatus` snapshot.

A supervised campaign with ``--run-dir D`` leaves two append-only
JSONL trails under ``D`` while it runs: the structured event log
(``events.jsonl``, opened fresh per invocation) and the supervisor's
fsync'd journal (``journal.jsonl``, appended across invocations). The
:class:`CampaignMonitor` follows both *from a second process* — no
coordination with the writer — and folds every record into one live
snapshot: windows done/total per phase, per-chunk progress, worker
health from heartbeats, throughput/ETA from the ``campaign_progress``
counter trail, the merged metrics registry, and the running
recovery-mix / detection-latency aggregates via the exact
:func:`~repro.obs.audit.aggregates_from_events` the post-hoc report
uses — so a monitor attached for the whole run converges to the same
numbers ``repro report --events`` prints after it.

:class:`JsonlFollower` is the transport: resumable by byte offset,
safe against torn final lines (a writer killed mid-append) and file
rotation (``repro resume`` reopens ``events.jsonl`` with mode ``w``;
a shrink below the follower's offset *or* an inode change resets it to
zero and the monitor discards event-derived state while keeping the
journal-derived state).

Surfaces: ``repro top`` (live refresh), ``repro tail`` (filtered event
stream), ``repro status --json`` and ``repro metrics export`` all sit
on this module; see :func:`render_status`.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .audit import aggregates_from_events
from .metrics import MetricsRegistry

#: ``supervisor`` actions the monitor tallies for the status line.
_SUPERVISOR_TALLIES = ("retry", "timeout", "pool_rebuild", "bisect")

#: Snapshot states, from least to most settled.
STATES = ("unknown", "running", "aborted", "complete-with-quarantine",
          "complete")


class JsonlFollower:
    """Incrementally read a JSONL file that another process appends to.

    Each :meth:`poll` reads everything between the remembered byte
    offset and the current end of file, parses only *complete* lines
    (up to the last newline — a torn final line stays buffered in the
    file until the writer finishes it), and advances the offset, so a
    follower can be destroyed and rebuilt from ``(path, offset)`` at
    any time. Rotation (the file truncated or recreated by a new
    invocation) is detected by two independent signals: a size below
    the stored offset (in-place truncation) and an inode change (the
    file replaced) — the latter catches a rotation that *regrows past*
    the old offset between polls, which would otherwise be silently
    misread as growth and yield records spliced across generations.
    On filesystems that report no inodes (``st_ino == 0``) the size
    check alone applies. Either way the offset resets to zero and
    ``rotations`` increments so the consumer can reset derived state.
    """

    def __init__(self, path: str | os.PathLike, offset: int = 0):
        self.path = pathlib.Path(path)
        self.offset = int(offset)
        self.rotations = 0
        self.bad_lines = 0
        #: Bytes currently buffered as an unterminated (torn) tail.
        self.pending_tail = 0
        #: Inode of the generation being followed (None until first
        #: seen, or where the filesystem reports no inodes).
        self._ino: Optional[int] = None

    def poll(self) -> List[Dict[str, Any]]:
        """Every complete record appended since the last poll."""
        try:
            stat = self.path.stat()
        except OSError:
            return []
        size = stat.st_size
        ino = stat.st_ino or None
        # two independent rotation signals: a shrink below the offset
        # (in-place truncation, e.g. reopening with mode "w") and an
        # inode change (the file replaced — catches a rotation that
        # regrew past the old offset between polls, which size alone
        # would silently misread as plain growth)
        rotated = size < self.offset
        if ino is not None and self._ino is not None and ino != self._ino:
            rotated = True
        if rotated:
            self.offset = 0
            self.rotations += 1
        self._ino = ino
        if size <= self.offset:
            self.pending_tail = 0
            return []
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                blob = handle.read(size - self.offset)
        except OSError:
            return []
        cut = blob.rfind(b"\n")
        if cut < 0:
            self.pending_tail = len(blob)
            return []
        self.offset += cut + 1
        self.pending_tail = len(blob) - cut - 1
        records: List[Dict[str, Any]] = []
        for line in blob[:cut].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                self.bad_lines += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                self.bad_lines += 1
        return records


# ----------------------------------------------------------------------
# snapshot
# ----------------------------------------------------------------------
@dataclass
class PhaseProgress:
    """Per-phase roll-up (one campaign phase = one supervised fan-out)."""

    phase: str
    benchmark: str = "?"
    scheme: str = "?"
    windows_total: int = 0
    windows_done: int = 0
    chunks_total: int = 0
    chunks_done: int = 0
    quarantined: int = 0
    status: str = "pending"      # running | complete[-with-quarantine]
                                 # | aborted

    @property
    def windows_remaining(self) -> int:
        return max(0, self.windows_total - self.windows_done
                   - self.quarantined)

    def as_json(self) -> Dict[str, Any]:
        return {"phase": self.phase, "benchmark": self.benchmark,
                "scheme": self.scheme,
                "windows_total": self.windows_total,
                "windows_done": self.windows_done,
                "windows_remaining": self.windows_remaining,
                "chunks_total": self.chunks_total,
                "chunks_done": self.chunks_done,
                "quarantined": self.quarantined, "status": self.status}


@dataclass
class CampaignStatus:
    """One folded view of a campaign run directory at a point in time."""

    run_dir: str
    run_id: Optional[str] = None
    state: str = "unknown"
    phases: Dict[str, PhaseProgress] = field(default_factory=dict)
    #: worker pid -> timestamp of its last heartbeat/lifecycle event
    workers: Dict[int, float] = field(default_factory=dict)
    #: remote agent name -> {"state", "leases", "chunks_done", "ts"}
    #: (empty unless the campaign runs on a distributed fabric)
    agents: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    throughput: Optional[float] = None     # windows per second
    eta_seconds: Optional[float] = None
    aggregates: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    resumes: int = 0
    events_seen: int = 0
    journal_records: int = 0
    truncated_tails: int = 0
    rotations: int = 0
    updated_at: float = 0.0

    @property
    def windows_total(self) -> int:
        return sum(p.windows_total for p in self.phases.values())

    @property
    def windows_done(self) -> int:
        return sum(p.windows_done for p in self.phases.values())

    @property
    def quarantined(self) -> int:
        return sum(p.quarantined for p in self.phases.values())

    @property
    def finished(self) -> bool:
        return self.state in ("complete", "complete-with-quarantine",
                              "aborted")

    def as_json(self) -> Dict[str, Any]:
        return {
            "run_dir": self.run_dir, "run_id": self.run_id,
            "state": self.state,
            "windows_total": self.windows_total,
            "windows_done": self.windows_done,
            "quarantined": self.quarantined,
            "phases": {name: p.as_json()
                       for name, p in self.phases.items()},
            "workers": {str(pid): ts
                        for pid, ts in sorted(self.workers.items())},
            "agents": {name: dict(info)
                       for name, info in sorted(self.agents.items())},
            "throughput_windows_per_sec": self.throughput,
            "eta_seconds": self.eta_seconds,
            "aggregates": self.aggregates,
            "metrics": self.metrics,
            "supervisor": {"retries": self.retries,
                           "timeouts": self.timeouts,
                           "pool_rebuilds": self.pool_rebuilds,
                           "resumes": self.resumes},
            "stream": {"events_seen": self.events_seen,
                       "journal_records": self.journal_records,
                       "truncated_tails": self.truncated_tails,
                       "rotations": self.rotations},
            "updated_at": self.updated_at,
        }


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------
class CampaignMonitor:
    """Fold a run directory's journal + event log into live status.

    One monitor owns two followers. :meth:`poll` drains both and
    returns a fresh :class:`CampaignStatus`; call it in a loop (``repro
    top``) or once (``repro status``). The journal carries durable
    facts (plans, chunk completions, quarantines) that survive event-
    log rotation; everything event-derived (audits, heartbeats,
    metrics, progress samples) resets when ``events.jsonl`` is
    recreated by a new invocation.
    """

    def __init__(self, run_dir: str | os.PathLike):
        self.run_dir = pathlib.Path(run_dir)
        self.events_path = self.run_dir / "events.jsonl"
        self._events = JsonlFollower(self.events_path)
        self._journal = JsonlFollower(self.run_dir / "journal.jsonl")
        self._seen_rotations = 0
        # journal-derived state (survives event-log rotation)
        self._phases: Dict[str, PhaseProgress] = {}
        self._journal_records = 0
        self._resumes = 0
        self._aborted = False
        self._reset_event_state()

    def _reset_event_state(self) -> None:
        self._run_id: Optional[str] = None
        self._ended = False
        self._events_seen = 0
        self._truncated = 0
        self._last_ts = 0.0
        self._audits: List[Dict[str, Any]] = []
        self._workers: Dict[int, float] = {}
        self._samples: Dict[str, List[Tuple[float, float]]] = {}
        self._metrics = MetricsRegistry()
        self._tallies = {name: 0 for name in _SUPERVISOR_TALLIES}
        self._agents: Dict[str, Dict[str, Any]] = {}

    # -- folding -------------------------------------------------------
    def _phase(self, name: Optional[str]) -> PhaseProgress:
        name = name or "?"
        slot = self._phases.get(name)
        if slot is None:
            slot = PhaseProgress(phase=name)
            self._phases[name] = slot
        return slot

    def _fold_journal(self, entry: Dict[str, Any]) -> None:
        self._journal_records += 1
        entry_type = entry.get("type")
        if entry_type == "plan":
            slot = self._phase(entry.get("phase"))
            slot.benchmark = str(entry.get("benchmark", slot.benchmark))
            slot.scheme = str(entry.get("scheme", slot.scheme))
            slot.windows_total = int(entry.get("windows", 0))
            bounds = entry.get("bounds") or []
            gap = sum(int(hi) - int(lo) for lo, hi in bounds)
            resumed = int(entry.get("resumed_chunks", 0))
            slot.chunks_total = resumed + len(bounds)
            slot.chunks_done = max(slot.chunks_done, resumed)
            # windows already covered before this invocation: everything
            # outside the planned gaps, minus the quarantined singles
            covered = slot.windows_total - gap - slot.quarantined
            slot.windows_done = max(slot.windows_done, max(0, covered))
            slot.status = "running"
        elif entry_type == "chunk_done":
            slot = self._phase(entry.get("phase"))
            slot.chunks_done += 1
            slot.windows_done += int(entry.get("windows", 0))
            if slot.status == "pending":
                slot.status = "running"
        elif entry_type == "quarantine":
            self._phase(entry.get("phase")).quarantined += 1
        elif entry_type == "phase_done":
            slot = self._phase(entry.get("phase"))
            slot.status = str(entry.get("status", "complete"))
            slot.windows_done = int(entry.get("windows",
                                              slot.windows_done))
        elif entry_type == "resume":
            self._resumes += 1
        elif entry_type == "drain":
            self._aborted = True
            self._phase(entry.get("phase")).status = "aborted"

    def _fold_event(self, event: Dict[str, Any]) -> None:
        self._events_seen += 1
        ts = float(event.get("ts", 0.0) or 0.0)
        if ts > self._last_ts:
            self._last_ts = ts
        event_type = event.get("type")
        if event_type == "run_start":
            self._run_id = event.get("run")
            self._ended = False
        elif event_type == "run_end":
            self._ended = True
        elif event_type == "heartbeat":
            for pid in (event.get("workers") or [event.get("pid")]):
                if pid is not None:
                    self._workers[int(pid)] = ts
        elif event_type == "worker_start":
            pid = event.get("pid")
            if pid is not None:
                self._workers[int(pid)] = ts
        elif (event_type == "counter"
                and event.get("name") == "campaign_progress"):
            attrs = event.get("attrs") or {}
            phase = str(attrs.get("phase", "?"))
            self._samples.setdefault(phase, []).append(
                (ts, float(event.get("value", 0.0))))
        elif event_type == "fault_audit":
            self._audits.append(event)
        elif event_type == "metrics":
            snapshot = event.get("snapshot")
            if isinstance(snapshot, dict):
                self._metrics.merge(snapshot)
        elif event_type == "supervisor":
            action = event.get("action")
            if action in self._tallies:
                self._tallies[action] += 1
            elif action == "drain":
                self._aborted = True
        elif event_type == "agent":
            name = str(event.get("agent", "?"))
            slot = self._agents.setdefault(
                name, {"state": "?", "leases": 0, "chunks_done": 0,
                       "ts": 0.0})
            action = event.get("action")
            if action in ("join", "rejoin"):
                slot["state"] = "live"
            elif action == "lost":
                slot["state"] = "lost"
            elif action == "leave":
                slot["state"] = "gone"
            slot["ts"] = ts
        elif event_type == "lease":
            name = event.get("agent")
            # "adopt" credits the fabric store, not a live agent
            if name and name != "store":
                slot = self._agents.setdefault(
                    str(name), {"state": "?", "leases": 0,
                                "chunks_done": 0, "ts": 0.0})
                action = event.get("action")
                if action in ("grant", "speculate"):
                    slot["leases"] += 1
                elif action in ("complete", "expire", "cancel"):
                    slot["leases"] = max(0, slot["leases"] - 1)
                if action == "complete":
                    slot["chunks_done"] += 1
                slot["ts"] = ts
        elif event_type == "truncated_tail":
            self._truncated += 1

    # -- derived views -------------------------------------------------
    def _rate(self) -> Optional[float]:
        """Windows per second from the ``campaign_progress`` trail.

        Computed from first-to-last *deltas* per phase, so a resumed
        run's non-zero baseline (satellite: the journal seeds the first
        sample) never inflates the rate.
        """
        delta = 0.0
        lo_ts: Optional[float] = None
        hi_ts: Optional[float] = None
        for samples in self._samples.values():
            if not samples:
                continue
            first_ts, first_value = samples[0]
            last_ts, last_value = samples[-1]
            delta += max(0.0, last_value - first_value)
            lo_ts = first_ts if lo_ts is None else min(lo_ts, first_ts)
            hi_ts = last_ts if hi_ts is None else max(hi_ts, last_ts)
        if delta <= 0 or lo_ts is None or hi_ts is None or hi_ts <= lo_ts:
            return None
        return delta / (hi_ts - lo_ts)

    def _state(self) -> str:
        if self._aborted:
            return "aborted"
        if self._ended:
            if any(p.quarantined for p in self._phases.values()):
                return "complete-with-quarantine"
            return "complete"
        if (self._phases or self._run_id is not None
                or self._events_seen or self._journal_records):
            return "running"
        return "unknown"

    def poll(self) -> CampaignStatus:
        """Drain both followers and return the folded snapshot."""
        for entry in self._journal.poll():
            self._fold_journal(entry)
        events = self._events.poll()
        if self._events.rotations != self._seen_rotations:
            self._seen_rotations = self._events.rotations
            self._reset_event_state()
        for event in events:
            self._fold_event(event)
        rate = self._rate()
        remaining = sum(p.windows_remaining
                        for p in self._phases.values())
        eta = (remaining / rate if rate and remaining > 0
               and not self._ended else None)
        return CampaignStatus(
            run_dir=str(self.run_dir), run_id=self._run_id,
            state=self._state(),
            phases={name: PhaseProgress(**vars(slot))
                    for name, slot in self._phases.items()},
            workers=dict(self._workers),
            agents={name: dict(info)
                    for name, info in self._agents.items()},
            throughput=rate, eta_seconds=eta,
            aggregates=aggregates_from_events(self._audits),
            metrics=self._metrics.snapshot(),
            retries=self._tallies["retry"],
            timeouts=self._tallies["timeout"],
            pool_rebuilds=self._tallies["pool_rebuild"],
            resumes=self._resumes,
            events_seen=self._events_seen,
            journal_records=self._journal_records,
            truncated_tails=self._truncated + (
                1 if self._events.pending_tail else 0),
            rotations=self._events.rotations,
            updated_at=self._last_ts)


# ----------------------------------------------------------------------
# rendering (``repro status`` / ``repro top``)
# ----------------------------------------------------------------------
def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def _progress_bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "-" * width
    filled = min(width, int(round(width * done / total)))
    return "#" * filled + "." * (width - filled)


def render_status(status: CampaignStatus) -> str:
    """Human-readable multi-line snapshot (shared by status/top)."""
    lines = [f"campaign {status.run_dir}"]
    run = f"   run {status.run_id}" if status.run_id else ""
    lines.append(f"state {status.state}{run}   workers "
                 f"{len(status.workers)}   resumes {status.resumes}")
    if status.phases:
        lines.append(f"{'phase':14s} {'scheme':12s} "
                     f"{'windows':>13s}  {'bar':24s} {'chunks':>9s}  "
                     f"status")
        for slot in status.phases.values():
            windows = f"{slot.windows_done}/{slot.windows_total}"
            chunks = f"{slot.chunks_done}/{slot.chunks_total}"
            lines.append(
                f"{slot.phase:14s} {slot.scheme:12s} {windows:>13s}  "
                f"{_progress_bar(slot.windows_done, slot.windows_total)} "
                f"{chunks:>9s}  {slot.status}")
    if status.agents:
        parts = []
        for name, info in sorted(status.agents.items()):
            parts.append(f"{name}[{info.get('state', '?')}] "
                         f"leases {info.get('leases', 0)} "
                         f"done {info.get('chunks_done', 0)}")
        lines.append("agents " + "   ".join(parts))
    rate = (f"{status.throughput:.2f} windows/s"
            if status.throughput else "-")
    lines.append(f"throughput {rate}   eta {_format_eta(status.eta_seconds)}"
                 f"   quarantined {status.quarantined}")
    lines.append(f"retries {status.retries}   timeouts {status.timeouts}"
                 f"   pool rebuilds {status.pool_rebuilds}   events "
                 f"{status.events_seen}   journal {status.journal_records}")
    aggregates = status.aggregates
    if aggregates.get("applied"):
        mix = aggregates.get("recovery_mix", {})
        mix_text = "  ".join(f"{label}:{count}"
                             for label, count in mix.items() if count)
        lines.append(f"audited {aggregates['records']} faults "
                     f"({aggregates['applied']} applied)   "
                     f"recovery {mix_text or 'none yet'}")
    if status.truncated_tails:
        lines.append(f"note: {status.truncated_tails} torn line(s) "
                     f"buffered (writer mid-append)")
    return "\n".join(lines)


__all__ = ["CampaignMonitor", "CampaignStatus", "JsonlFollower",
           "PhaseProgress", "render_status", "STATES"]
