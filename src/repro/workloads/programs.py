"""Random, guaranteed-terminating program generator for differential
testing (promoted from ``tests/program_gen.py`` so the ``repro verify``
fuzz harness can use it outside the test tree).

Programs have the shape:

    <register/memory seeding>
    outer loop (countdown in r1):
        profile-dependent random body
    halt

Termination is structural: the only back-edge is the countdown loop and
every other branch jumps forward.

Three body profiles:

``mixed``
    The original blend — ALU ops, loads/stores in a bounded segment,
    forward conditional skips. Draws from the rng in exactly the
    historical order, so pre-promotion seeds reproduce bit-for-bit.
``forwarding``
    Store/load pairs hammering a tiny 8-word address pool, maximising
    store-to-load forwarding (and the stale-forwarding regression
    surface: loads racing stores to the same address).
``violation``
    Stores whose *address* resolves late — behind a long-latency
    multiply chain that ultimately collapses to the base register — while
    younger loads to the same address execute speculatively first,
    driving the memory-order-violation recovery path.
"""

from __future__ import annotations

import random
from typing import List

from ..isa import Instruction, Opcode, Program

_ALU_RR = [Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
           Opcode.SLT, Opcode.MUL, Opcode.FADD, Opcode.FMUL]
_ALU_RI = [Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
           Opcode.SLLI, Opcode.SRLI]

#: Registers the random body may use freely. r1 is the loop counter and
#: r2 the memory base; both are read-only for body instructions.
_BODY_REGS = list(range(3, 16))
_SEGMENT_WORDS = 64
#: The forwarding profile's deliberately tiny address pool (word offsets).
_FORWARD_WORDS = 8

#: The body profiles :func:`random_program` accepts.
GEN_PROFILES = ("mixed", "forwarding", "violation")


def random_program(rng: random.Random, body_len: int = 20,
                   iterations: int = 8, seed_regs: bool = True,
                   profile: str = "mixed",
                   name: str = "random") -> Program:
    """Build a random terminating program with the given body *profile*."""
    if profile not in GEN_PROFILES:
        raise ValueError(f"unknown generator profile {profile!r} "
                         f"(choose from {GEN_PROFILES})")
    instructions: List[Instruction] = [
        Instruction(Opcode.MOVI, rd=1, imm=iterations),
        Instruction(Opcode.MOVI, rd=2, imm=0x1000),
    ]
    if seed_regs:
        for reg in _BODY_REGS[:6]:
            instructions.append(
                Instruction(Opcode.MOVI, rd=reg, imm=rng.randrange(0, 1 << 16)))
    loop_top = len(instructions)

    if profile == "mixed":
        body = [_random_body_instruction(rng, position, body_len)
                for position in range(body_len)]
    elif profile == "forwarding":
        body = _forwarding_body(rng, body_len)
    else:
        body = _violation_body(rng, body_len)
    # resolve forward-skip placeholders now that body length is fixed
    resolved: List[Instruction] = []
    for index, inst in enumerate(body):
        if inst.is_branch and inst.opcode is not Opcode.JMP:
            target = loop_top + min(inst.imm, body_len)
            resolved.append(Instruction(inst.opcode, rs1=inst.rs1,
                                        rs2=inst.rs2, imm=target))
        else:
            resolved.append(inst)
    instructions.extend(resolved)

    back_edge_pc = loop_top + len(resolved)
    instructions.append(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=-1))
    instructions.append(Instruction(Opcode.BNE, rs1=1, rs2=0,
                                    imm=loop_top))
    instructions.append(Instruction(Opcode.HALT))
    assert instructions[back_edge_pc].opcode is Opcode.ADDI
    return Program(instructions=instructions, name=name)


def _random_body_instruction(rng: random.Random, position: int,
                             body_len: int) -> Instruction:
    roll = rng.random()
    if roll < 0.45:
        if rng.random() < 0.6:
            return Instruction(rng.choice(_ALU_RR),
                               rd=rng.choice(_BODY_REGS),
                               rs1=rng.choice(_BODY_REGS),
                               rs2=rng.choice(_BODY_REGS))
        imm = rng.randrange(0, 64)
        return Instruction(rng.choice(_ALU_RI),
                           rd=rng.choice(_BODY_REGS),
                           rs1=rng.choice(_BODY_REGS), imm=imm)
    if roll < 0.62:
        offset = 8 * rng.randrange(_SEGMENT_WORDS)
        return Instruction(Opcode.LD, rd=rng.choice(_BODY_REGS),
                           rs1=2, imm=offset)
    if roll < 0.78:
        offset = 8 * rng.randrange(_SEGMENT_WORDS)
        return Instruction(Opcode.ST, rs2=rng.choice(_BODY_REGS),
                           rs1=2, imm=offset)
    if roll < 0.9 and position < body_len - 1:
        # forward conditional skip; imm holds a body-relative target that
        # random_program resolves to an absolute pc
        skip_to = rng.randrange(position + 1, body_len + 1)
        op = rng.choice([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE])
        return Instruction(op, rs1=rng.choice(_BODY_REGS),
                           rs2=rng.choice(_BODY_REGS), imm=skip_to)
    return Instruction(Opcode.MOVI, rd=rng.choice(_BODY_REGS),
                       imm=rng.randrange(0, 1 << 12))


def _forwarding_body(rng: random.Random, body_len: int) -> List[Instruction]:
    """Store/load pairs over a tiny address pool, with a little ALU churn
    so stored values keep changing between iterations."""
    body: List[Instruction] = []
    while len(body) < body_len:
        roll = rng.random()
        offset = 8 * rng.randrange(_FORWARD_WORDS)
        if roll < 0.4 and len(body) + 2 <= body_len:
            value = rng.choice(_BODY_REGS)
            dest = rng.choice(_BODY_REGS)
            body.append(Instruction(Opcode.ST, rs2=value, rs1=2, imm=offset))
            body.append(Instruction(Opcode.LD, rd=dest, rs1=2, imm=offset))
        elif roll < 0.6:
            body.append(Instruction(Opcode.ST, rs2=rng.choice(_BODY_REGS),
                                    rs1=2, imm=offset))
        elif roll < 0.8:
            body.append(Instruction(Opcode.LD, rd=rng.choice(_BODY_REGS),
                                    rs1=2, imm=offset))
        else:
            body.append(Instruction(Opcode.ADD, rd=rng.choice(_BODY_REGS),
                                    rs1=rng.choice(_BODY_REGS),
                                    rs2=rng.choice(_BODY_REGS)))
    return body


def _violation_body(rng: random.Random, body_len: int) -> List[Instruction]:
    """Groups whose store address depends on a long multiply chain that
    collapses back to the base register: the store resolves its address
    *after* a younger same-address load has speculatively executed, so
    the load is caught (and squashed) by the memory-order check."""
    body: List[Instruction] = []
    while len(body) < body_len:
        if len(body) + 6 <= body_len and rng.random() < 0.7:
            scratch = rng.choice(_BODY_REGS)
            value = rng.choice(_BODY_REGS)
            dest = rng.choice(_BODY_REGS)
            offset = 8 * rng.randrange(_FORWARD_WORDS)
            body.extend([
                # long-latency chain ... that collapses to r2 exactly
                Instruction(Opcode.MUL, rd=scratch, rs1=value, rs2=value),
                Instruction(Opcode.MUL, rd=scratch, rs1=scratch, rs2=scratch),
                Instruction(Opcode.ANDI, rd=scratch, rs1=scratch, imm=0),
                Instruction(Opcode.ADD, rd=scratch, rs1=scratch, rs2=2),
                # late-resolving store vs. eagerly-executing younger load
                Instruction(Opcode.ST, rs2=value, rs1=scratch, imm=offset),
                Instruction(Opcode.LD, rd=dest, rs1=2, imm=offset),
            ])
        else:
            body.append(Instruction(Opcode.ADDI, rd=rng.choice(_BODY_REGS),
                                    rs1=rng.choice(_BODY_REGS),
                                    imm=rng.randrange(0, 64)))
    return body


__all__ = ["GEN_PROFILES", "random_program"]
