"""Data-layout builders for the workload generators."""

from __future__ import annotations

import random
from typing import Dict, List


def pointer_ring(rng: random.Random, base: int, words: int) -> Dict[int, int]:
    """Build a pointer-chasing ring: ``memory[a]`` holds the address of the
    next element, visiting all *words* slots in a random cyclic order.

    Chasing this ring produces the low-locality load-address stream of
    pointer-heavy workloads (mcf, OLTP): successive addresses differ in
    ``log2(words)`` low-order bits.
    """
    if words < 2:
        raise ValueError("pointer ring needs at least 2 words")
    slots = [base + 8 * i for i in range(words)]
    order = list(slots)
    rng.shuffle(order)
    image = {}
    for i, addr in enumerate(order):
        image[addr] = order[(i + 1) % words]
    return image


def region_bases(base: int, count: int, region_words: int) -> List[int]:
    """Base addresses of *count* disjoint data regions.

    Regions are spaced a full region apart so that switching between them
    changes high-order address bits — the neighbourhood switches that
    produce FaultHound's residual false positives.
    """
    return [base + 8 * region_words * i for i in range(count)]


def data_table(rng: random.Random, base: int, words: int,
               value_bits: int = 16) -> Dict[int, int]:
    """A table of small random payload values (drift/mix inputs)."""
    return {base + 8 * i: rng.getrandbits(value_bits) for i in range(words)}


__all__ = ["pointer_ring", "region_bases", "data_table"]
