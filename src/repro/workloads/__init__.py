"""Synthetic workloads reproducing the paper's benchmark suites.

We cannot run SPEC2006, Apache, SPECjbb, OLTP or SPLASH-2 binaries
(no SPARC/Solaris stack); instead each benchmark is a parameterised
generator whose *value-locality statistics* — load/store address patterns,
store-value bit-change profiles (Figure 6), branch predictability and
cache behaviour — are shaped to match the paper's description of that
workload class. The FaultHound mechanisms respond to exactly these
statistics, which is what makes the substitution sound (DESIGN.md §1).
"""

from .value_models import pointer_ring, region_bases
from .profiles import WorkloadProfile, PROFILES, SUITES
from .generator import build_program, build_smt_programs
from .programs import GEN_PROFILES, random_program

__all__ = [
    "pointer_ring",
    "region_bases",
    "WorkloadProfile",
    "PROFILES",
    "SUITES",
    "build_program",
    "build_smt_programs",
    "GEN_PROFILES",
    "random_program",
]
