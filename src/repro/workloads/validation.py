"""Workload-profile validation: measure what a profile actually produces.

The profiles in :mod:`repro.workloads.profiles` *intend* certain
behaviours (memory intensity, branchiness, value-locality width). This
module measures what a built program actually exhibits — on the golden
interpreter for stream statistics and on the pipeline for
micro-architectural character — so calibration drift is visible instead
of silent. The test suite pins the invariants each figure depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.locality import (bit_change_fractions, mean_bits_changed,
                                 neighbourhood_hit_rate)
from ..config import HardwareConfig
from ..isa.interpreter import Interpreter
from ..pipeline.core import PipelineCore
from .generator import build_program
from .profiles import PROFILES, WorkloadProfile


@dataclass
class ProfileReport:
    """Measured characteristics of one built workload."""

    name: str
    dynamic_instructions: int
    load_fraction: float
    store_fraction: float
    l1_miss_rate: float
    branch_mispredict_rate: float
    baseline_ipc: float
    store_value_bits_changed: float
    store_value_neighbourhood_hits: float
    quiet_value_bits: int      # store-value positions changing <1%

    def as_dict(self) -> Dict[str, float]:
        return {
            "dynamic_instructions": self.dynamic_instructions,
            "load_fraction": round(self.load_fraction, 4),
            "store_fraction": round(self.store_fraction, 4),
            "l1_miss_rate": round(self.l1_miss_rate, 4),
            "branch_mispredict_rate": round(self.branch_mispredict_rate, 4),
            "baseline_ipc": round(self.baseline_ipc, 4),
            "store_value_bits_changed":
                round(self.store_value_bits_changed, 3),
            "store_value_neighbourhood_hits":
                round(self.store_value_neighbourhood_hits, 4),
            "quiet_value_bits": self.quiet_value_bits,
        }


def validate_profile(profile: WorkloadProfile,
                     dynamic_target: int = 6_000,
                     hw: HardwareConfig | None = None) -> ProfileReport:
    """Build one copy of *profile* and measure it."""
    hw = hw or HardwareConfig()
    program = build_program(profile, dynamic_target)

    interp = Interpreter(program)
    interp.trace_memory_ops = True
    interp.run(max_instructions=dynamic_target * 4)
    loads = sum(1 for kind, _ in interp.mem_trace if kind == "load_addr")
    stores = sum(1 for kind, _ in interp.mem_trace if kind == "store_addr")
    values = [v for kind, v in interp.mem_trace if kind == "store_value"]
    instret = max(1, interp.state.instret)

    core = PipelineCore([program], hw=hw)
    core.run_until_commits(dynamic_target, max_cycles=5_000_000)

    fractions = bit_change_fractions(values)
    return ProfileReport(
        name=profile.name,
        dynamic_instructions=instret,
        load_fraction=loads / instret,
        store_fraction=stores / instret,
        l1_miss_rate=core.hierarchy.l1.stats.miss_rate,
        branch_mispredict_rate=core.predictors[0].misprediction_rate,
        baseline_ipc=core.stats.ipc,
        store_value_bits_changed=mean_bits_changed(values),
        store_value_neighbourhood_hits=neighbourhood_hit_rate(values),
        quiet_value_bits=sum(1 for f in fractions if f < 0.01),
    )


def validate_all(dynamic_target: int = 4_000) -> Dict[str, ProfileReport]:
    """Validate every Table 1 profile (slow: builds and runs all 14)."""
    return {name: validate_profile(profile, dynamic_target)
            for name, profile in PROFILES.items()}


__all__ = ["ProfileReport", "validate_profile", "validate_all"]
