"""Synthesise an ISA program from a :class:`WorkloadProfile`.

The generated program is one big loop whose body mixes sequential and
pointer-chasing loads, stores with a profile-selected value-evolution
model, address arithmetic, ALU filler and data-dependent branches. All the
layout randomness is drawn from the profile's seed, so builds are
reproducible bit-for-bit.

The bodies are built for *realistic fault-masking behaviour* (the paper's
~85% masked fraction, Figure 7): most values live in rotating temporaries
that die within one iteration (like bypass-consumed values in real code),
persistent cursors and accumulators are self-masking through their ANDI
wrap masks (a flipped high bit is scrubbed on the next iteration), and
constants are rematerialised every iteration the way compilers do. What
remains architecturally vulnerable — loop counters, the chase pointer's
in-ring bits, live accumulator bits — is the genuine SDC surface.

Register convention (all generated programs):

=======  =====================================================
r1       loop counter (counts down to zero; full fault surface)
r2       sequential cursor (byte offset; self-masking via ANDI)
r3       pointer-chase cursor (rebased into the ring every chase)
r4       store-value accumulator (self-masking per value model)
r5       current region offset (self-masking)
r10      store cursor (self-masking)
r12      heap base (rematerialised every iteration)
r13      region-switch countdown
r14      outlier-event countdown
r15      wide-model multiplier (rematerialised every iteration)
r19      this iteration's outlier address perturbation (usually 0)
r20-r28  rotating temporaries, dead within the iteration
=======  =====================================================
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..errors import WorkloadError
from ..isa.assembler import assemble
from ..isa.program import Program
from .profiles import WorkloadProfile
from .value_models import data_table, pointer_ring

#: Words of initial payload data seeded at the start of the sequential
#: region, so data-dependent value models (drift/mix/wide) see real values
#: from the first iteration.
SEED_DATA_WORDS = 1 << 12

#: Absolute base of the generated heap.
HEAP_BASE = 0x10_0000
#: Pointer-chase rings are capped (at the L1 capacity) so tandem-fork deep
#: copies stay cheap and chase-bound IPC lands in a realistic band; larger
#: working sets express themselves through the sequential span.
MAX_CHASE_WORDS = 1 << 12


def _mask_for(words: int) -> int:
    """AND-mask that wraps an 8-aligned byte offset inside *words* slots."""
    if words & (words - 1):
        raise WorkloadError("working-set word counts must be powers of two")
    return 8 * (words - 1)


def build_program(profile: WorkloadProfile, dynamic_target: int = 20_000,
                  copy_index: int = 0, swift: bool = False) -> Program:
    """Build one copy of *profile* long enough to commit roughly
    *dynamic_target* instructions.

    ``swift=True`` emits a SWIFT-style software-redundant variant (the
    paper's related-work class [22]): the store-value computation is
    duplicated into shadow registers (r29-r31), loaded values are copied
    rather than re-loaded, and every store is preceded by a main-vs-shadow
    compare that branches to an error handler on mismatch. The handler
    writes a sentinel and halts — software fault *detection*, at a
    permanent instruction-count cost.
    """
    rng = random.Random((profile.seed << 8) ^ copy_index)
    chase_words = min(profile.working_set_words, MAX_CHASE_WORDS)
    chase_base = HEAP_BASE
    seq_base = chase_base + 8 * chase_words
    seq_words = profile.working_set_words
    region_words = max(4, seq_words // max(1, profile.region_count))

    body = _body_lines(profile, rng, region_words, chase_base,
                       chase_words, seq_base)
    if swift:
        body = _swiftify(body)
    # Labels are not instructions and not-taken data branches skip their
    # two-op taken path, so the executed count per iteration runs below
    # the line count; 0.6 is a conservative floor.
    body_insts = sum(1 for line in body if not line.endswith(":"))
    iterations = max(4, int(dynamic_target / max(1.0, body_insts * 0.6)) + 2)

    lines: List[str] = []
    value_seed = rng.getrandbits(16)
    lines.append(f".reg r1 {iterations}")
    lines.append(".reg r2 0")
    lines.append(f".reg r3 {chase_base}")
    lines.append(f".reg r4 {value_seed}")
    lines.append(".reg r5 0")
    lines.append(f".reg r10 {8 * rng.randrange(region_words)}")
    lines.append(f".reg r12 {seq_base}")
    lines.append(".reg r15 0x9E3779B1")
    lines.append(f".reg r21 {rng.getrandbits(12)}")
    lines.append(".reg r19 0")
    if profile.region_switch_period:
        lines.append(f".reg r13 {profile.region_switch_period}")
    if profile.outlier_period:
        # first event early (so sticky counters are dead before the fault
        # campaign's first injections), then every outlier_period
        lines.append(f".reg r14 {min(8, profile.outlier_period)}")
    if swift:
        lines.append(f".reg r30 {value_seed}")  # shadow accumulator
    lines.append("loop:")
    lines.extend("    " + line for line in body)
    lines.append("    addi r1, r1, -1")
    lines.append("    bne  r1, r0, loop")
    lines.append("    halt")
    if swift:
        lines.append("swift_fail:")
        lines.append(f"    movi r28, 0xDEAD")
        lines.append(f"    st   r28, 0(r12)")
        lines.append("    halt")

    program = assemble("\n".join(lines),
                       name=f"{profile.name}.{copy_index}")
    program.initial_memory.update(
        pointer_ring(rng, chase_base, chase_words))
    program.initial_memory.update(
        data_table(rng, seq_base, min(seq_words, SEED_DATA_WORDS)))
    return program


def build_smt_programs(profile: WorkloadProfile, dynamic_target: int = 20_000,
                       copies: int = 2) -> List[Program]:
    """The paper runs two copies of each benchmark per 2-way-SMT core."""
    return [build_program(profile, dynamic_target, copy_index=i)
            for i in range(copies)]


# ----------------------------------------------------------------------
# body synthesis
# ----------------------------------------------------------------------
def _body_lines(profile: WorkloadProfile, rng: random.Random,
                region_words: int, chase_base: int,
                chase_words: int, seq_base: int) -> List[str]:
    lines: List[str] = []
    seq_mask = _mask_for(region_words)
    chase_mask = _mask_for(chase_words)
    skip_counter = 0

    # Rematerialise the constants every iteration (compiler-style): faults
    # in them are scrubbed within one loop trip.
    lines.append(f"movi r12, {seq_base}")
    lines.append("movi r15, 0x9E3779B1")

    if profile.region_switch_period:
        lines.extend(_region_switch(profile, rng))
    if profile.outlier_period:
        lines.extend(_outlier_block(profile))
    else:
        lines.append("movi r19, 0")

    for _load_index in range(profile.loads_per_iter):
        if rng.random() < profile.pointer_chase:
            # Rebase the pointer into the ring before dereferencing: an
            # identity on healthy pointers that scrubs out-of-ring fault
            # bits, leaving only the in-ring bits vulnerable.
            lines.append(f"andi r3, r3, {chase_mask}")
            lines.append(f"ori  r3, r3, {chase_base}")
            lines.append("ld   r3, 0(r3)")
            lines.append("or   r21, r3, r0")
        else:
            lines.append("addi r2, r2, 8")
            lines.append(f"andi r2, r2, {seq_mask}")
            lines.append("add  r20, r12, r2")
            lines.append("add  r20, r20, r5")
            lines.append("add  r20, r20, r19")
            lines.append("ld   r21, 0(r20)")
        if rng.random() < profile.branchiness:
            lines.extend(_data_branch(skip_counter, rng))
            skip_counter += 1

    for _store_index in range(profile.stores_per_iter):
        lines.extend(_value_update(profile.value_model))
        lines.append("addi r10, r10, 8")
        lines.append(f"andi r10, r10, {seq_mask}")
        lines.append("add  r23, r12, r10")
        lines.append("add  r23, r23, r5")
        lines.append("add  r23, r23, r19")
        lines.append("st   r4, 0(r23)")

    # ALU filler writes only rotating temporaries that die within the
    # iteration — the dominant masked-fault population, like real code's
    # bypass-consumed values.
    for _ in range(profile.alu_per_iter):
        lines.append(rng.choice([
            "add  r26, r21, r24",
            "xor  r27, r21, r26",
            "addi r26, r21, 7",
            "slli r28, r21, 3",
            "srli r28, r26, 2",
            "sub  r27, r28, r21",
            "mul  r26, r21, r15",
            "fadd r27, r26, r21",
        ]))
    return lines


def _value_update(model: str) -> List[str]:
    """Advance the store-value accumulator per the Figure 6 value model.

    Every model except "wide" wraps the accumulator with an ANDI, both to
    bound the changing bit positions (the Figure 6 low-order concentration)
    and to self-mask high-bit faults.
    """
    if model == "counter":
        return ["addi r4, r4, 1",
                f"andi r4, r4, {(1 << 20) - 1}"]
    if model == "drift":
        return ["andi r22, r21, 255",
                "add  r4, r4, r22",
                f"andi r4, r4, {(1 << 20) - 1}"]
    if model == "mix":
        return ["xor  r4, r4, r21",
                "addi r4, r4, 1",
                f"andi r4, r4, {(1 << 24) - 1}"]
    if model == "wide":
        # FP-like values (leslie3d): a wide band of noisy mantissa-ish
        # low bits under stable high bits — the widest change profile of
        # Figure 6 and the paper's lowest-coverage benchmark, but not
        # 64 random bits (real FP data keeps sign/exponent stable).
        return ["mul  r22, r21, r15",
                "srli r22, r22, 24",
                f"andi r22, r22, {(1 << 16) - 1}",
                "add  r4, r4, r22",
                f"andi r4, r4, {(1 << 30) - 1}"]
    raise WorkloadError(f"unknown value model {model!r}")


def _data_branch(index: int, rng: random.Random) -> List[str]:
    """A branch whose direction depends on loaded data — the hard-to-
    predict background of branchy workloads."""
    label = f"skip_{index}"
    # Bits 0-2 of pointer-chase values are always zero (8-byte alignment),
    # so sample decision bits above them.
    bit = rng.randrange(3, 12)
    return [
        f"srli r24, r21, {bit}",
        "andi r24, r24, 1",
        f"beq  r24, r0, {label}",
        "addi r25, r21, 3",
        "xor  r26, r25, r21",
        f"{label}:",
    ]


def _shadow_line(line: str) -> str:
    """Rewrite a value-chain instruction onto the shadow registers
    (r4→r30, r21→r31, r22→r29)."""
    import re
    mapping = {"r4": "r30", "r21": "r31", "r22": "r29"}
    return re.sub(r"\br(4|21|22)\b",
                  lambda m: mapping["r" + m.group(1)], line)


def _swiftify(body: List[str]) -> List[str]:
    """SWIFT-style duplication of the store-value dataflow.

    - a loaded value is *copied* into its shadow (`or r31, r21, r0`) —
      SWIFT does not re-execute loads;
    - every instruction that writes the value accumulator (r4) or its
      feeding temporaries (r22) is duplicated onto the shadow registers;
    - every store of r4 is preceded by a main-vs-shadow compare branching
      to the error handler.
    """
    out: List[str] = []
    for line in body:
        stripped = line.strip()
        if stripped.startswith("ld") and " r21," in stripped:
            out.append(line)
            out.append("or   r31, r21, r0")
            continue
        if stripped.startswith("st") and stripped.startswith("st   r4,"):
            out.append("bne  r4, r30, swift_fail")
            out.append(line)
            continue
        out.append(line)
        shadow = _shadow_line(line)
        if shadow != line and not stripped.endswith(":") \
                and not stripped.startswith(("bne", "beq", "srli r24")):
            # duplicate value-chain writes; skip control flow and the
            # branch-decision temps (SWIFT does not duplicate control)
            if stripped.split()[0] in ("addi", "andi", "add", "xor",
                                       "mul", "srli", "or"):
                target = shadow.strip().split()[1].rstrip(",")
                if target in ("r30", "r29", "r31"):
                    out.append(shadow)
    return out


#: The outlier kick: a fixed far offset whose XOR flips every bit in the
#: 3-30 band at once. One event therefore saturates the whole band of
#: sticky counters (PBFS stays blind there until its flash clear), while
#: the biased machines re-arm two quiet iterations later — and because the
#: alternate neighbourhood repeats, FaultHound's TCAM learns it as a
#: second filter entry and stops false-positive-ing on it.
OUTLIER_KICK = 0x7FFF_FFF8


def _outlier_block(profile: WorkloadProfile) -> List[str]:
    """Every ``outlier_period`` iterations, one iteration's addresses and
    store values jump to a far neighbourhood *through the same static
    instructions* (r19 carries the address perturbation; r4 absorbs a
    value kick, trimmed by the value model's cap)."""
    return [
        "addi r14, r14, -1",
        "bne  r14, r0, no_outlier",
        f"movi r14, {profile.outlier_period}",
        f"movi r19, {OUTLIER_KICK:#x}",
        "xor  r4, r4, r19",
        "jmp  outlier_done",
        "no_outlier:",
        "movi r19, 0",
        "outlier_done:",
    ]


def _region_switch(profile: WorkloadProfile,
                   rng: random.Random) -> List[str]:
    """Every ``region_switch_period`` iterations, hop to the next data
    region: a genuine value-neighbourhood change (false-positive source)."""
    region_words = max(4, profile.working_set_words
                       // max(1, profile.region_count))
    region_stride = 8 * region_words
    total_mask = _mask_for(profile.working_set_words)
    return [
        "addi r13, r13, -1",
        "bne  r13, r0, no_switch",
        f"movi r13, {profile.region_switch_period}",
        f"addi r5, r5, {region_stride}",
        f"andi r5, r5, {total_mask}",
        "no_switch:",
    ]


__all__ = ["build_program", "build_smt_programs", "HEAP_BASE",
           "MAX_CHASE_WORDS"]
