"""Per-benchmark locality profiles (paper Table 1).

Every knob maps to a behaviour the paper's evaluation depends on:

- ``working_set_words`` vs the 32KB L1 / 2MB L2 sets the cache-miss
  character (the commercial workloads hide recovery penalties under
  misses, Figure 9);
- ``pointer_chase`` controls load-address locality (mcf/OLTP are
  pointer-heavy, bzip2/leslie3d stream);
- ``value_model`` shapes the store-value bit-change profile of Figure 6
  ("counter" and "drift" change only low-order bits; "wide" scrambles many
  bits — leslie3d's low coverage across the board);
- ``branchiness`` sets the data-dependent branch rate (misprediction
  background that hides false-positive penalties);
- ``region_count``/``region_switch_period`` produce genuine value-
  neighbourhood changes — the false-positive source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class WorkloadProfile:
    """Locality profile of one synthetic benchmark."""

    name: str
    suite: str
    working_set_words: int = 1 << 12
    pointer_chase: float = 0.0          # fraction of loads chasing pointers
    loads_per_iter: int = 3
    stores_per_iter: int = 2
    alu_per_iter: int = 6
    value_model: str = "counter"        # counter | drift | mix | wide
    branchiness: float = 0.2            # data-dependent branches per iter
    region_count: int = 1
    region_switch_period: int = 0       # iterations; 0 = never switch
    #: Every this many iterations the loop emits an "outlier" — one
    #: iteration whose addresses and store values jump to a far
    #: neighbourhood through the *same static instructions* (a pointer to
    #: a different arena, an unusual value). These one-off changes are
    #: what saturate PBFS's sticky counters (killing its coverage until
    #: the periodic clear) while FaultHound's biased machines re-arm after
    #: two quiet observations — the paper's central contrast. The default
    #: keeps the outlier rate just under 1% of accesses so Figure 6's
    #: "most positions change in <1% of values" holds while sticky
    #: counters still see enough events to saturate. 0 disables.
    outlier_period: int = 120
    seed: int = 0

    def __post_init__(self):
        if self.working_set_words < 4:
            raise ValueError("working set too small")
        if not 0.0 <= self.pointer_chase <= 1.0:
            raise ValueError("pointer_chase must be a fraction")
        if self.value_model not in ("counter", "drift", "mix", "wide"):
            raise ValueError(f"unknown value model {self.value_model!r}")


def _p(name, suite, **kw) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite=suite, **kw)


#: The paper's Table 1 benchmarks as locality profiles.
PROFILES: Dict[str, WorkloadProfile] = {p.name: p for p in [
    # --- SPECint 2006 ---
    _p("perl", "specint", working_set_words=1 << 12, pointer_chase=0.3,
       value_model="mix", branchiness=0.5, alu_per_iter=8,
       region_count=2, region_switch_period=40, seed=11),
    _p("bzip2", "specint", working_set_words=1 << 14, pointer_chase=0.0,
       value_model="counter", branchiness=0.3, alu_per_iter=7, seed=12),
    _p("mcf", "specint", working_set_words=1 << 17, pointer_chase=0.8,
       value_model="drift", branchiness=0.35, loads_per_iter=4,
       stores_per_iter=1, alu_per_iter=4, seed=13),
    _p("astar", "specint", working_set_words=1 << 14, pointer_chase=0.5,
       value_model="drift", branchiness=0.45, alu_per_iter=6,
       region_count=2, region_switch_period=64, seed=14),
    # --- SPECfp 2006 ---
    _p("dealII", "specfp", working_set_words=1 << 13, pointer_chase=0.1,
       value_model="drift", branchiness=0.1, alu_per_iter=10,
       stores_per_iter=2, seed=15),
    _p("gamess", "specfp", working_set_words=1 << 11, pointer_chase=0.0,
       value_model="counter", branchiness=0.05, alu_per_iter=12, seed=16),
    _p("leslie3d", "specfp", working_set_words=1 << 15, pointer_chase=0.0,
       value_model="wide", branchiness=0.05, alu_per_iter=9,
       loads_per_iter=4, stores_per_iter=3, seed=17),
    # --- commercial ---
    _p("apache", "commercial", working_set_words=1 << 17, pointer_chase=0.5,
       value_model="mix", branchiness=0.5, loads_per_iter=4,
       stores_per_iter=2, alu_per_iter=5,
       region_count=4, region_switch_period=24, seed=18),
    _p("specjbb", "commercial", working_set_words=1 << 16, pointer_chase=0.4,
       value_model="mix", branchiness=0.45, loads_per_iter=4,
       stores_per_iter=2, alu_per_iter=6,
       region_count=4, region_switch_period=32, seed=19),
    _p("oltp", "commercial", working_set_words=1 << 17, pointer_chase=0.7,
       value_model="mix", branchiness=0.5, loads_per_iter=5,
       stores_per_iter=2, alu_per_iter=4,
       region_count=8, region_switch_period=16, seed=20),
    # --- SPLASH-2 ---
    _p("ocean", "splash", working_set_words=1 << 13, pointer_chase=0.0,
       value_model="drift", branchiness=0.15, loads_per_iter=4,
       stores_per_iter=2, alu_per_iter=8, seed=21),
    _p("raytrace", "splash", working_set_words=1 << 14, pointer_chase=0.4,
       value_model="drift", branchiness=0.35, alu_per_iter=7,
       region_count=2, region_switch_period=48, seed=22),
    _p("volrend", "splash", working_set_words=1 << 13, pointer_chase=0.2,
       value_model="counter", branchiness=0.4, alu_per_iter=6, seed=23),
    _p("water-nsquared", "splash", working_set_words=1 << 12,
       pointer_chase=0.0, value_model="drift", branchiness=0.1,
       alu_per_iter=10, loads_per_iter=3, stores_per_iter=2, seed=24),
]}

#: Suite membership, in the paper's presentation order.
SUITES: Dict[str, List[str]] = {
    "specint": ["perl", "bzip2", "mcf", "astar"],
    "specfp": ["dealII", "gamess", "leslie3d"],
    "commercial": ["apache", "specjbb", "oltp"],
    "splash": ["ocean", "raytrace", "volrend", "water-nsquared"],
}


__all__ = ["WorkloadProfile", "PROFILES", "SUITES"]
