"""Turn pipeline event counts into joules (Figure 10 machinery)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..core.faulthound import FaultHoundUnit
from ..core.pbfs import PBFSUnit
from ..pipeline.core import PipelineCore
from .cacti import sram_access_energy, tcam_access_energy
from .constants import DEFAULT_CONSTANTS, EnergyConstants


@dataclass
class EnergyBreakdown:
    """Energy by component, in picojoules."""

    pipeline_pj: float = 0.0
    regfile_pj: float = 0.0
    cache_pj: float = 0.0
    dram_pj: float = 0.0
    screening_pj: float = 0.0
    leakage_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return (self.pipeline_pj + self.regfile_pj + self.cache_pj
                + self.dram_pj + self.screening_pj + self.leakage_pj)

    def overhead_vs(self, baseline: "EnergyBreakdown") -> float:
        """Fractional energy overhead relative to *baseline* (0.25 = +25%)."""
        if baseline.total_pj <= 0:
            return 0.0
        return self.total_pj / baseline.total_pj - 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "pipeline_pj": self.pipeline_pj,
            "regfile_pj": self.regfile_pj,
            "cache_pj": self.cache_pj,
            "dram_pj": self.dram_pj,
            "screening_pj": self.screening_pj,
            "leakage_pj": self.leakage_pj,
            "total_pj": self.total_pj,
        }


class EnergyModel:
    """Computes a run's energy from its event counts.

    Replays, rollbacks and redundant SRT threads need no special terms:
    their re-executed instructions already show up in the fetch/issue/
    commit counters, which is how the overheads emerge naturally.
    """

    def __init__(self, constants: EnergyConstants | None = None):
        self.k = constants or DEFAULT_CONSTANTS

    def compute(self, core: PipelineCore) -> EnergyBreakdown:
        k = self.k
        stats = core.stats
        out = EnergyBreakdown()
        out.pipeline_pj = (
            stats.fetched * k.fetch_decode_pj
            + stats.dispatched * k.rename_pj
            + stats.issued * (k.issue_pj + k.execute_pj)
            + stats.committed * k.commit_pj
            + (stats.committed_loads + stats.committed_stores) * k.lsq_pj
        )
        out.regfile_pj = (stats.regfile_reads * k.regfile_read_pj
                          + stats.regfile_writes * k.regfile_write_pj)
        l1 = core.hierarchy.l1.stats.accesses \
            + core._ideal_hierarchy.l1.stats.accesses
        l2 = core.hierarchy.l2.stats.accesses
        dram = core.hierarchy.l2.stats.misses
        out.cache_pj = l1 * k.l1_access_pj + l2 * k.l2_access_pj
        out.dram_pj = dram * k.dram_access_pj
        out.screening_pj = self._screening_energy(core)
        out.leakage_pj = stats.cycles * k.leakage_per_cycle_pj
        return out

    def _screening_energy(self, core: PipelineCore) -> float:
        unit = core.screening
        if isinstance(unit, FaultHoundUnit):
            if unit.config.clustering:
                per_lookup = tcam_access_energy(unit.config.tcam_entries,
                                                2 * unit.config.value_bits)
            else:
                per_lookup = sram_access_energy(2048,
                                                2 * unit.config.value_bits)
            return (unit.total_table_lookups * per_lookup
                    + unit.trigger_count * self.k.screening_trigger_pj)
        if isinstance(unit, PBFSUnit):
            per_lookup = sram_access_energy(unit.config.table_entries, 128)
            return unit.total_table_lookups * per_lookup
        return 0.0


__all__ = ["EnergyBreakdown", "EnergyModel"]
