"""Event-based energy accounting (McPAT/CACTI substitute).

The paper reports *relative* energy overheads (Figure 10), which an
event-count × per-event-energy model captures: every fetched, renamed,
issued, executed, replayed or squashed instruction, every cache and
register-file access, and every filter-table lookup contributes its
32 nm-inspired per-event energy. The TCAM access energy comes from a small
analytic model in the spirit of CACTI (:mod:`.cacti`).
"""

from .constants import EnergyConstants, DEFAULT_CONSTANTS
from .cacti import tcam_access_energy, sram_access_energy
from .accounting import EnergyBreakdown, EnergyModel

__all__ = [
    "EnergyConstants",
    "DEFAULT_CONSTANTS",
    "tcam_access_energy",
    "sram_access_energy",
    "EnergyBreakdown",
    "EnergyModel",
]
