"""Analytic SRAM/TCAM access-energy estimates (CACTI stand-in).

CACTI itself is a large circuit-level tool; for relative comparisons we
only need access energies that scale plausibly with structure geometry at
a fixed technology node. The models below use the standard first-order
decomposition — wordline/bitline energy proportional to the number of
bits switched per access, plus a match-line term for CAM searches that
touches *every* entry. Constants are anchored so a 32KB SRAM access costs
a few tens of picojoules at 32 nm, in line with published CACTI numbers.
"""

from __future__ import annotations

#: SRAM energy coefficient: access energy grows with the square root of
#: the array's bit count (subarray bitline length), picojoules.
_SRAM_SQRT_PJ = 0.05
#: Fixed decode/sense overhead per access, picojoules.
_DECODE_PJ = 1.2
#: Energy per ternary cell searched on a TCAM match-line, picojoules.
#: TCAM searches are several times costlier per bit than SRAM reads
#: because every entry's match-line charges on every lookup.
_TCAM_CELL_PJ = 0.002


def sram_access_energy(entries: int, bits_per_entry: int) -> float:
    """Picojoules per read of one entry from an SRAM table.

    First-order CACTI shape: access energy scales with the subarray
    bitline length, i.e. with ``sqrt(total bits)``. Anchored so a 32KB
    array (PBFS's 2K x 128b filter table) costs ~27 pJ — comparable to an
    L1 D-cache access, which is exactly the paper's Section 2.2 complaint.
    """
    if entries <= 0 or bits_per_entry <= 0:
        raise ValueError("geometry must be positive")
    return _DECODE_PJ + _SRAM_SQRT_PJ * (entries * bits_per_entry) ** 0.5


def tcam_access_energy(entries: int, bits_per_entry: int) -> float:
    """Picojoules per search of a counting TCAM.

    Every entry participates in the search, so energy scales with
    ``entries * bits_per_entry`` — the reason FaultHound's 16-32-entry
    TCAMs stay cheap while a 2K-entry CAM would not.
    """
    if entries <= 0 or bits_per_entry <= 0:
        raise ValueError("geometry must be positive")
    return _DECODE_PJ + _TCAM_CELL_PJ * entries * bits_per_entry


__all__ = ["sram_access_energy", "tcam_access_energy"]
