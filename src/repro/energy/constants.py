"""Per-event dynamic energies and leakage (32 nm-inspired, picojoules).

Absolute values matter only through their ratios; they are anchored to
published McPAT-era figures: a few pJ per ALU op, tens of pJ per L1
access, nanojoule-scale DRAM accesses, and a leakage floor that makes
longer runs cost more energy even when stalls hide the latency (the
paper's point that SRT's energy cannot be hidden the way its time can).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyConstants:
    """All per-event energies in picojoules (pJ)."""

    fetch_decode_pj: float = 22.0   # I-cache read + decode, per instruction
    rename_pj: float = 12.0         # rename + dispatch bookkeeping
    issue_pj: float = 14.0          # select/wakeup per issued instruction
    execute_pj: float = 12.0        # blended FU energy per executed op
    regfile_read_pj: float = 4.0
    regfile_write_pj: float = 5.0
    lsq_pj: float = 6.0             # LSQ insert/search per memory op
    commit_pj: float = 7.0
    l1_access_pj: float = 25.0
    l2_access_pj: float = 90.0
    dram_access_pj: float = 1200.0
    #: Core leakage + clock per cycle (kept modest so the dynamic,
    #: instruction-proportional share dominates, as in McPAT-era cores).
    leakage_per_cycle_pj: float = 22.0
    #: Second-level filter / squash machine update per trigger (tiny).
    screening_trigger_pj: float = 2.0


DEFAULT_CONSTANTS = EnergyConstants()

__all__ = ["EnergyConstants", "DEFAULT_CONSTANTS"]
