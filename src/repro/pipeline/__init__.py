"""Out-of-order SMT pipeline substrate (stand-in for GEMS/Opal).

A value-accurate, cycle-driven model of the paper's Table 2 core: 4-wide
fetch/issue/commit, 40-entry issue queue with FaultHound's completed-
instruction delay buffer, 250-entry ROB, 64-entry LSQ, merged physical
register file with rename tables and commit-time freeing, bimodal branch
prediction with full mispredict recovery, and the three recovery actions
FaultHound needs: predecessor replay, full pipeline rollback, and singleton
re-execute.

Operand values are read at execution-completion time from the physical
register file; an in-flight consumer whose producer got replay-marked
bounces back to the issue queue. This keeps recovery semantics exact while
staying fast enough for laptop-scale campaigns (DESIGN.md Section 4).
"""

from .checkpoint import (CoreCheckpoint, capture_checkpoint,
                         restore_checkpoint)
from .core import PipelineCore
from .invariants import (InvariantError, InvariantSanitizer,
                         InvariantViolation, check_core)
from .lsq import ForwardStatus
from .stats import PipelineStats
from .thread import ThreadContext

__all__ = ["CoreCheckpoint", "ForwardStatus", "InvariantError",
           "InvariantSanitizer", "InvariantViolation", "PipelineCore",
           "PipelineStats", "ThreadContext", "capture_checkpoint",
           "check_core", "restore_checkpoint"]
