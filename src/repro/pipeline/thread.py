"""SMT thread context: fetch stream, rename tables, ROB, LSQ, memory."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import HardwareConfig
from ..isa.program import Program
from ..memory.main_memory import MainMemory
from .lsq import LoadStoreQueue
from .rename import RenameTable
from .rob import ReorderBuffer


class ThreadContext:
    """One hardware thread.

    Each context owns its program, data memory, rename tables, ROB and LSQ
    partitions; the issue queue, physical register file and functional
    units are shared with the other contexts of the core.

    ``ideal_memory`` / ``ideal_branch`` implement SRT-iso's trailing-thread
    optimisations; ``max_commits`` lets SRT-iso's partial redundancy stop a
    trailing copy at FaultHound's coverage fraction.
    """

    def __init__(self, thread_id: int, program: Program,
                 hw: HardwareConfig, initial_mapping: List[int],
                 ideal_memory: bool = False, ideal_branch: bool = False,
                 max_commits: Optional[int] = None):
        self.thread_id = thread_id
        self.program = program.ensure_halts()
        self.ideal_memory = ideal_memory
        self.ideal_branch = ideal_branch
        self.max_commits = max_commits

        self.memory = MainMemory(latency=hw.memory_latency,
                                 image=self.program.initial_memory)

        # ROB and LSQ capacity is shared dynamically across SMT contexts
        # (the core checks aggregate occupancy at dispatch; the ICOUNT
        # fetch policy keeps the sharing fair), so each thread's ordering
        # structure is sized at the full capacity.
        self.rob = ReorderBuffer(hw.rob_size)
        self.lsq = LoadStoreQueue(hw.lsq_size)
        self.spec_rat = RenameTable(initial_mapping, hw.phys_regs)
        self.committed_rat = RenameTable(initial_mapping, hw.phys_regs)

        #: Next pc the front end will fetch.
        self.fetch_pc = 0
        #: Fetch suspended until this cycle (redirect penalties).
        self.fetch_stalled_until = 0
        #: True once a HALT (or end of program) has been fetched; cleared
        #: by squashes that roll fetch back before it.
        self.fetch_stopped = False
        #: Architectural pc: the pc the next commit will execute at.
        self.arch_pc = 0
        self.halted = False
        self.committed_count = 0
        #: Number of remaining re-executed instructions whose screening
        #: triggers are suppressed after a screening rollback ("re-computed
        #: values are deemed final").
        self.screen_suppress_remaining = 0
        #: (instret, pc, address) records of architectural exceptions.
        self.exceptions: List[Tuple[int, int, int]] = []

    def clone(self, clone_op) -> "ThreadContext":
        """Independent copy for core forking (checkpoint protocol).

        *clone_op* maps each in-flight op to its clone so ROB and LSQ keep
        referencing the same objects as the core's shared containers. The
        program is shared — it is immutable once built (``ensure_halts``
        ran at construction).
        """
        twin = ThreadContext.__new__(ThreadContext)
        twin.thread_id = self.thread_id
        twin.program = self.program
        twin.ideal_memory = self.ideal_memory
        twin.ideal_branch = self.ideal_branch
        twin.max_commits = self.max_commits
        twin.memory = self.memory.clone()
        twin.rob = self.rob.clone(clone_op)
        twin.lsq = self.lsq.clone(clone_op)
        twin.spec_rat = self.spec_rat.clone()
        twin.committed_rat = self.committed_rat.clone()
        twin.fetch_pc = self.fetch_pc
        twin.fetch_stalled_until = self.fetch_stalled_until
        twin.fetch_stopped = self.fetch_stopped
        twin.arch_pc = self.arch_pc
        twin.halted = self.halted
        twin.committed_count = self.committed_count
        twin.screen_suppress_remaining = self.screen_suppress_remaining
        twin.exceptions = list(self.exceptions)
        return twin

    # -- architectural state ---------------------------------------------
    def arch_reg_value(self, logical: int, prf) -> int:
        if logical == 0:
            return 0
        return prf.read(self.committed_rat.get(logical))

    def arch_state_snapshot(self, prf) -> Tuple:
        """Digest comparable with the golden interpreter's snapshot."""
        regs = tuple(self.arch_reg_value(r, prf) for r in range(1, 32))
        return (regs, self.memory.nonzero_snapshot(), self.arch_pc,
                self.halted)

    def output_snapshot(self) -> Tuple:
        """Program-output digest: memory image plus control state.

        The fault classifier compares *this*, not the full register file:
        a flipped bit in a register the program never reads again is not
        silent data corruption — it can never reach the program's output.
        Register corruption that matters shows up here through the store
        stream (or as control-flow divergence via ``arch_pc``).
        """
        return (self.memory.nonzero_snapshot(), self.arch_pc, self.halted)

    @property
    def fetch_active(self) -> bool:
        return not self.halted and not self.fetch_stopped

    def stop_fetch(self) -> None:
        self.fetch_stopped = True

    def redirect_fetch(self, pc: int, resume_cycle: int) -> None:
        self.fetch_pc = pc
        self.fetch_stalled_until = resume_cycle
        self.fetch_stopped = False


__all__ = ["ThreadContext"]
