"""Per-cycle functional-unit issue bandwidth (Table 2: 4 ALU, 2 Mul, 2 FPU,
plus 2 data-cache ports for loads/stores)."""

from __future__ import annotations

from typing import Dict, Optional

from ..config import HardwareConfig
from ..isa.opcodes import OpClass

#: Data-cache ports — loads and stores issued per cycle. Table 2 does not
#: list this; two ports is the conventional value for a 4-wide core.
MEM_PORTS = 2


class FunctionalUnits:
    """Tracks how many ops of each class may still issue this cycle."""

    def __init__(self, hw: HardwareConfig):
        self._limits: Dict[OpClass, int] = {
            OpClass.ALU: hw.num_alus,
            OpClass.MUL: hw.num_muls,
            OpClass.FPU: hw.num_fpus,
            OpClass.LOAD: MEM_PORTS,
            OpClass.STORE: MEM_PORTS,
            OpClass.BRANCH: hw.num_alus,   # branches share the ALUs
            OpClass.OTHER: hw.num_alus,
        }
        self._available: Dict[OpClass, int] = {}
        self.new_cycle()

    def new_cycle(self) -> None:
        self._available = dict(self._limits)
        # loads and stores share the memory ports
        self._mem_available = MEM_PORTS

    def clone(self) -> "FunctionalUnits":
        """Independent copy for core forking. Per-cycle availability is
        carried over verbatim, though ``new_cycle()`` rebuilds it at the
        start of every step anyway."""
        twin = FunctionalUnits.__new__(FunctionalUnits)
        twin._limits = dict(self._limits)
        twin._available = dict(self._available)
        twin._mem_available = self._mem_available
        return twin

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-skip contract: bandwidth renews every cycle via
        ``new_cycle``, so exhausted units never block anything across a
        cycle boundary — no autonomous events."""
        return None

    def try_claim(self, op_class: OpClass) -> bool:
        """Claim an issue slot for *op_class*; False when exhausted.

        Hot path: identity comparisons against the enum members instead of
        containment tests — ``in`` on a tuple and dict indexing both go
        through the (Python-level) enum hash/eq machinery.
        """
        if op_class is OpClass.LOAD or op_class is OpClass.STORE:
            if self._mem_available <= 0:
                return False
            self._mem_available -= 1
            return True
        available = self._available
        if available[op_class] <= 0:
            return False
        if op_class is OpClass.BRANCH or op_class is OpClass.OTHER:
            # shared with plain ALU ops
            if available[OpClass.ALU] <= 0:
                return False
            available[OpClass.ALU] -= 1
            return True
        available[op_class] -= 1
        return True


__all__ = ["FunctionalUnits", "MEM_PORTS"]
