"""Per-cycle functional-unit issue bandwidth (Table 2: 4 ALU, 2 Mul, 2 FPU,
plus 2 data-cache ports for loads/stores)."""

from __future__ import annotations

from typing import Dict

from ..config import HardwareConfig
from ..isa.opcodes import OpClass

#: Data-cache ports — loads and stores issued per cycle. Table 2 does not
#: list this; two ports is the conventional value for a 4-wide core.
MEM_PORTS = 2


class FunctionalUnits:
    """Tracks how many ops of each class may still issue this cycle."""

    def __init__(self, hw: HardwareConfig):
        self._limits: Dict[OpClass, int] = {
            OpClass.ALU: hw.num_alus,
            OpClass.MUL: hw.num_muls,
            OpClass.FPU: hw.num_fpus,
            OpClass.LOAD: MEM_PORTS,
            OpClass.STORE: MEM_PORTS,
            OpClass.BRANCH: hw.num_alus,   # branches share the ALUs
            OpClass.OTHER: hw.num_alus,
        }
        self._available: Dict[OpClass, int] = {}
        self.new_cycle()

    def new_cycle(self) -> None:
        self._available = dict(self._limits)
        # loads and stores share the memory ports
        self._mem_available = MEM_PORTS

    def clone(self) -> "FunctionalUnits":
        """Independent copy for core forking. Per-cycle availability is
        carried over verbatim, though ``new_cycle()`` rebuilds it at the
        start of every step anyway."""
        twin = FunctionalUnits.__new__(FunctionalUnits)
        twin._limits = dict(self._limits)
        twin._available = dict(self._available)
        twin._mem_available = self._mem_available
        return twin

    def try_claim(self, op_class: OpClass) -> bool:
        """Claim an issue slot for *op_class*; False when exhausted."""
        if op_class in (OpClass.LOAD, OpClass.STORE):
            if self._mem_available <= 0:
                return False
            self._mem_available -= 1
            return True
        if self._available[op_class] <= 0:
            return False
        if op_class in (OpClass.BRANCH, OpClass.OTHER):
            # shared with plain ALU ops
            if self._available[OpClass.ALU] <= 0:
                return False
            self._available[OpClass.ALU] -= 1
            return True
        self._available[op_class] -= 1
        return True


__all__ = ["FunctionalUnits", "MEM_PORTS"]
