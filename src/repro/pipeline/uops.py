"""The in-flight micro-op: one dynamic instance of a static instruction."""

from __future__ import annotations

import enum
from typing import Optional, Tuple

from ..isa.instruction import Instruction


class OpState(enum.Enum):
    """Lifecycle of a micro-op through the back end."""

    FETCHED = "fetched"        # in the fetch buffer, pre-rename
    WAITING = "waiting"        # in the issue queue, sources not all ready
    EXECUTING = "executing"    # issued, execution timer running
    COMPLETED = "completed"    # result written back; may sit in delay buffer
    COMMITTED = "committed"
    SQUASHED = "squashed"


class MicroOp:
    """Mutable per-dynamic-instruction state.

    ``uid`` is a core-global monotone sequence number: program order within
    a thread, dispatch order across threads. FaultHound's "preceding
    instructions" are ops with smaller uid.
    """

    __slots__ = (
        "uid", "thread_id", "pc", "inst", "state",
        "phys_dest", "old_phys_dest", "phys_srcs",
        "result", "eff_addr", "store_value",
        "predicted_taken", "actual_taken", "mispredicted",
        "cycle_fetched", "dispatch_ready_at", "cycle_issued",
        "exec_done_at", "cycle_completed", "cycle_committed",
        "exception_addr", "forwarded_from",
        "replay_marked", "in_delay_buffer", "singleton_stall",
        "screen_suppressed", "lsq_checked",
        "is_load", "is_store", "is_mem", "is_branch", "writes_reg",
    )

    def __init__(self, uid: int, thread_id: int, pc: int, inst: Instruction,
                 cycle_fetched: int, dispatch_ready_at: int):
        self.uid = uid
        self.thread_id = thread_id
        self.pc = pc
        self.inst = inst
        self.state = OpState.FETCHED
        # static facts, copied out of the (shared, precomputed)
        # instruction: every stage tests these on every pass over the op
        self.is_load = inst.is_load
        self.is_store = inst.is_store
        self.is_mem = inst.is_mem
        self.is_branch = inst.is_branch
        self.writes_reg = inst.writes_reg and inst.rd != 0

        self.phys_dest: Optional[int] = None
        self.old_phys_dest: Optional[int] = None
        self.phys_srcs: Tuple[int, ...] = ()

        self.result: Optional[int] = None
        self.eff_addr: Optional[int] = None
        self.store_value: Optional[int] = None

        self.predicted_taken: Optional[bool] = None
        self.actual_taken: Optional[bool] = None
        self.mispredicted = False

        self.cycle_fetched = cycle_fetched
        self.dispatch_ready_at = dispatch_ready_at
        self.cycle_issued = -1
        self.exec_done_at = -1
        self.cycle_completed = -1
        self.cycle_committed = -1

        #: Address of an architectural memory fault raised by this op, to
        #: be delivered precisely at commit.
        self.exception_addr: Optional[int] = None
        #: uid of the store this load forwarded from, if any.
        self.forwarded_from: Optional[int] = None

        self.replay_marked = False
        self.in_delay_buffer = False
        #: Remaining stall cycles for a singleton re-execute at commit.
        self.singleton_stall = 0
        #: True when this op re-executes as part of screening recovery and
        #: must not re-trigger checks ("re-computed values deemed final").
        self.screen_suppressed = False
        #: True once the commit-time LSQ check has run for this op.
        self.lsq_checked = False

    def clone(self) -> "MicroOp":
        """An independent copy for core forking (checkpoint protocol).

        Every slot is transferred; ``inst`` and ``phys_srcs`` are shared
        (immutable once built). Callers that clone a whole core must memo
        clones by ``uid`` so an op living in several containers (ROB,
        LSQ, issue queue, delay buffer, executing list) stays one object
        on the cloned side.
        """
        twin = MicroOp.__new__(MicroOp)
        for slot in MicroOp.__slots__:
            setattr(twin, slot, getattr(self, slot))
        return twin

    def __setstate__(self, state) -> None:
        # ops pickled before the static facts became slots lack them;
        # re-derive from the instruction (checkpoint compatibility)
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        if "is_mem" not in slots:
            inst = self.inst
            self.is_load = inst.is_load
            self.is_store = inst.is_store
            self.is_mem = inst.is_mem
            self.is_branch = inst.is_branch
            self.writes_reg = inst.writes_reg and inst.rd != 0

    # -- convenience ------------------------------------------------------
    @property
    def completed(self) -> bool:
        return self.state is OpState.COMPLETED

    def mark_for_replay(self) -> None:
        """Return a completed op to the waiting state for re-execution."""
        self.replay_marked = True
        self.in_delay_buffer = False
        self.state = OpState.WAITING
        self.result = None
        self.eff_addr = None
        self.store_value = None
        self.exec_done_at = -1
        self.forwarded_from = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<uop {self.uid} t{self.thread_id} pc={self.pc} "
                f"{self.inst.opcode.value} {self.state.value}>")


__all__ = ["MicroOp", "OpState"]
