"""An interactive-style debugger for the pipeline core.

Built for poking at the simulator from a REPL or a script: run to a
condition, set breakpoints on pcs or events, inspect architectural and
micro-architectural state as text. The debugger never mutates simulation
state except by stepping the core.

Typical REPL session::

    from repro import PipelineCore, FaultHoundUnit, assemble
    from repro.pipeline.debugger import PipelineDebugger

    dbg = PipelineDebugger(PipelineCore([program], screening=FaultHoundUnit()))
    dbg.break_at_pc(7)
    dbg.cont()
    print(dbg.where())
    print(dbg.registers())
    dbg.step(20)
    print(dbg.in_flight())
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .core import PipelineCore
from .uops import MicroOp, OpState

#: Events breakpoints can watch, mapped to stat-counter names.
EVENT_COUNTERS = {
    "replay": "replay_events",
    "rollback": "rollback_events",
    "singleton": "singleton_reexecs",
    "mispredict": "branch_mispredicts",
    "exception": "exceptions",
    "violation": "memory_order_violations",
}


class Breakpoint:
    """A stop condition evaluated after every cycle."""

    def __init__(self, description: str,
                 condition: Callable[[PipelineCore], bool]):
        self.description = description
        self.condition = condition
        self.hits = 0

    def check(self, core: PipelineCore) -> bool:
        if self.condition(core):
            self.hits += 1
            return True
        return False


class PipelineDebugger:
    """Step/continue/inspect wrapper around a :class:`PipelineCore`."""

    def __init__(self, core: PipelineCore):
        self.core = core
        self.breakpoints: List[Breakpoint] = []
        self.last_stop: Optional[str] = None
        #: ``cont`` elides provably idle stretches (long cache misses,
        #: drain stalls) by default. Built-in breakpoints only fire on
        #: commits or stat-counter changes, which never happen inside an
        #: elided stretch, so they stop at exactly the same cycle either
        #: way. Set False before ``cont`` when a custom ``break_when``
        #: predicate watches something (e.g. ``core.cycle == N``) that an
        #: idle cycle could satisfy.
        self.fast_forward = True

    # -- breakpoints ------------------------------------------------------
    def break_at_pc(self, pc: int, thread_id: int = 0) -> Breakpoint:
        """Stop at the end of the cycle in which the instruction at *pc*
        commits (reads the core's recent-commit ring, so a pc that enters
        and leaves the ROB head inside one wide commit batch still hits)."""
        state = {"seen": self.core.stats.committed}

        def hit(core: PipelineCore) -> bool:
            new = core.stats.committed - state["seen"]
            state["seen"] = core.stats.committed
            if new <= 0:
                return False
            recent = list(core.stats.recent_commits)[-new:]
            return any(t == thread_id and p == pc for t, p in recent)
        bp = Breakpoint(f"pc=={pc} (t{thread_id}) committed", hit)
        self.breakpoints.append(bp)
        return bp

    def break_on_event(self, event: str) -> Breakpoint:
        """Stop when a pipeline event (replay/rollback/...) occurs."""
        try:
            counter = EVENT_COUNTERS[event]
        except KeyError:
            raise ValueError(f"unknown event {event!r}; "
                             f"known: {sorted(EVENT_COUNTERS)}") from None
        baseline = getattr(self.core.stats, counter)
        state = {"seen": baseline}

        def hit(core: PipelineCore) -> bool:
            current = getattr(core.stats, counter)
            if current > state["seen"]:
                state["seen"] = current
                return True
            return False
        bp = Breakpoint(f"event {event}", hit)
        self.breakpoints.append(bp)
        return bp

    def break_when(self, description: str,
                   condition: Callable[[PipelineCore], bool]) -> Breakpoint:
        bp = Breakpoint(description, condition)
        self.breakpoints.append(bp)
        return bp

    def clear_breakpoints(self) -> None:
        self.breakpoints.clear()

    # -- execution --------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance unconditionally (breakpoints are not evaluated)."""
        for _ in range(cycles):
            if self.core.all_halted:
                break
            self.core.step()

    def cont(self, max_cycles: int = 1_000_000) -> Optional[Breakpoint]:
        """Run until a breakpoint fires, the core halts, or *max_cycles*.

        Breakpoints are evaluated after every *eventful* cycle; with
        :attr:`fast_forward` set (the default) provably idle cycles in
        between are jumped over (see
        :meth:`PipelineCore.elide_idle_cycles`).
        """
        core = self.core
        bound = core.cycle + max_cycles
        signature = -1
        while core.cycle < bound:
            if core.all_halted:
                self.last_stop = "halted"
                return None
            if self.fast_forward:
                current = core.activity_signature()
                if (current == signature and core.elide_idle_cycles(bound)
                        and core.cycle >= bound):
                    break
                signature = current
            core.step()
            for bp in self.breakpoints:
                if bp.check(core):
                    self.last_stop = bp.description
                    return bp
        self.last_stop = "max_cycles"
        return None

    # -- inspection -------------------------------------------------------
    def where(self) -> str:
        """One line per thread: commit point and fetch point."""
        lines = [f"cycle {self.core.cycle}"
                 + (f"  (stopped: {self.last_stop})" if self.last_stop
                    else "")]
        for thread in self.core.threads:
            head = thread.rob.head()
            head_text = (f"head uid={head.uid} pc={head.pc} "
                         f"{head.inst.opcode.value} [{head.state.value}]"
                         if head else "rob empty")
            lines.append(f"  t{thread.thread_id}: committed="
                         f"{thread.committed_count} fetch_pc="
                         f"{thread.fetch_pc} {head_text}"
                         + ("  HALTED" if thread.halted else ""))
        return "\n".join(lines)

    def registers(self, thread_id: int = 0, count: int = 16) -> str:
        """Architectural register values (via the committed rename table)."""
        thread = self.core.threads[thread_id]
        cells = []
        for reg in range(count):
            value = thread.arch_reg_value(reg, self.core.prf)
            cells.append(f"r{reg:<2}={value:#x}")
        rows = [" ".join(cells[i:i + 4]) for i in range(0, len(cells), 4)]
        return "\n".join(rows)

    def in_flight(self, thread_id: Optional[int] = None,
                  limit: int = 20) -> str:
        """The ROB contents, oldest first."""
        lines = []
        for thread in self.core.threads:
            if thread_id is not None and thread.thread_id != thread_id:
                continue
            for op in list(thread.rob)[:limit]:
                lines.append(
                    f"  t{thread.thread_id} uid={op.uid:<5} pc={op.pc:<4} "
                    f"{str(op.inst):24s} {op.state.value}"
                    + (" [delay-buf]" if op.in_delay_buffer else "")
                    + (" [replay]" if op.replay_marked else ""))
        return "\n".join(lines) if lines else "  (nothing in flight)"

    def screening_state(self) -> str:
        """Summary of the attached screening unit."""
        unit = self.core.screening
        lines = [f"scheme: {unit.name}  checks={unit.checks} "
                 f"triggers={unit.trigger_count}"]
        for attr, label in (("addresses", "address TCAM"),
                            ("values", "value TCAM")):
            domain = getattr(unit, attr, None)
            if domain is not None and domain.tcam is not None:
                lines.append(f"  {label}: {domain.tcam.valid_entries}"
                             f"/{len(domain.tcam)} entries, "
                             f"{domain.tcam.triggers} triggers")
        return "\n".join(lines)

    def stats(self) -> Dict[str, float]:
        return self.core.stats.summary()


__all__ = ["Breakpoint", "PipelineDebugger", "EVENT_COUNTERS"]
