"""Per-thread re-order buffer: program-ordered in-flight ops."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from .uops import MicroOp, OpState


class ReorderBuffer:
    """FIFO of dispatched, uncommitted micro-ops for one thread."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._ops: Deque[MicroOp] = deque()

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self._ops)

    @property
    def full(self) -> bool:
        return len(self._ops) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._ops

    def push(self, op: MicroOp) -> None:
        self._ops.append(op)

    def head(self) -> Optional[MicroOp]:
        return self._ops[0] if self._ops else None

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-skip contract: the earliest future cycle at which the
        commit stage can act on this buffer, or None when no such cycle
        exists without outside help.

        Commit acts exactly when the head is COMPLETED — that covers
        retirement, exception delivery, and the per-cycle
        ``singleton_stall`` decrement. Any other head state (or an empty
        buffer) is a stall only the complete stage can clear, and
        completion has its own event source.
        """
        ops = self._ops
        if ops and ops[0].state is OpState.COMPLETED:
            return now + 1
        return None

    def pop_head(self) -> MicroOp:
        return self._ops.popleft()

    def drain_all(self) -> List[MicroOp]:
        """Remove and return every op (full rollback)."""
        drained = list(self._ops)
        self._ops.clear()
        return drained

    def clone(self, clone_op) -> "ReorderBuffer":
        """Copy for core forking; *clone_op* maps each op to its clone."""
        twin = ReorderBuffer(self.capacity)
        twin._ops = deque(clone_op(op) for op in self._ops)
        return twin

    def drain_younger_than(self, uid: int) -> List[MicroOp]:
        """Remove and return ops with uid greater than *uid*, youngest
        first (the order a walk-based rename restore needs)."""
        drained = []
        while self._ops and self._ops[-1].uid > uid:
            drained.append(self._ops.pop())
        return drained


__all__ = ["ReorderBuffer"]
