"""Pipeline tracing: Konata-style text diagrams of instruction flow.

The tracer drives a core cycle by cycle, registering every micro-op it
sees in flight; because :class:`~repro.pipeline.uops.MicroOp` carries its
full timing history (fetch, dispatch-ready, issue, completion, commit),
the lane diagram is reconstructed post-hoc:

====  ==========================================
 F    in the fetch buffer (front end)
 w    waiting in the issue queue
 E    executing
 c    completed, lingering (delay buffer window)
 R    committed (retired)
 x    squashed
====  ==========================================

Typical use::

    tracer = PipelineTracer(core)
    tracer.run(200)
    print(tracer.render(limit=30))
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .core import PipelineCore
from .uops import MicroOp, OpState


class PipelineTracer:
    """Collects in-flight micro-ops while stepping a core."""

    def __init__(self, core: PipelineCore, max_ops: int = 5000):
        self.core = core
        self.max_ops = max_ops
        self._ops: Dict[int, MicroOp] = {}

    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Register everything currently in flight (call after step())."""
        for op in self.core.inflight_ops():
            if len(self._ops) >= self.max_ops:
                return
            self._ops.setdefault(op.uid, op)

    def run(self, cycles: int) -> None:
        """Step the core *cycles* times, tracing along the way."""
        for _ in range(cycles):
            if self.core.all_halted:
                break
            self.core.step()
            self.tick()

    # ------------------------------------------------------------------
    @property
    def traced_ops(self) -> List[MicroOp]:
        return [self._ops[uid] for uid in sorted(self._ops)]

    def _lane(self, op: MicroOp, start: int, end: int) -> str:
        """One op's stage letters over [start, end)."""
        cells = []
        for cycle in range(start, end):
            cells.append(self._stage_at(op, cycle))
        return "".join(cells)

    @staticmethod
    def _stage_at(op: MicroOp, cycle: int) -> str:
        if cycle < op.cycle_fetched:
            return " "
        if op.state is OpState.SQUASHED:
            # timing of the squash is not recorded; mark the whole tail.
            # An op squashed before it ever issued has cycle_issued < 0 —
            # its tail starts when it would first have been eligible, so
            # it must not fall through to the stale stage letters below.
            if op.cycle_issued >= 0:
                if cycle >= op.cycle_issued:
                    return "x"
            elif cycle >= op.dispatch_ready_at:
                return "x"
        if op.cycle_committed >= 0 and cycle >= op.cycle_committed:
            return "R" if cycle == op.cycle_committed else " "
        if op.cycle_completed >= 0 and cycle >= op.cycle_completed:
            return "c"
        if op.cycle_issued >= 0 and cycle >= op.cycle_issued:
            return "E"
        if cycle >= op.dispatch_ready_at:
            return "w"
        return "F"

    def render(self, first_uid: Optional[int] = None, limit: int = 40,
               width: int = 64) -> str:
        """Text diagram: one row per op, lanes over a cycle window."""
        ops = self.traced_ops
        if first_uid is not None:
            ops = [op for op in ops if op.uid >= first_uid]
        ops = ops[:limit]
        if not ops:
            return "(no ops traced)"
        start = min(op.cycle_fetched for op in ops)
        end = min(start + width,
                  max(self._last_cycle(op) for op in ops) + 2)
        header = (f"{'uid':>5s} {'t':>1s} {'pc':>5s} {'op':20s} "
                  f"cycles {start}..{end - 1}")
        lines = [header]
        for op in ops:
            lane = self._lane(op, start, end)
            lines.append(f"{op.uid:5d} {op.thread_id:1d} {op.pc:5d} "
                         f"{str(op.inst)[:20]:20s} |{lane}|")
        return "\n".join(lines)

    @staticmethod
    def _last_cycle(op: MicroOp) -> int:
        return max(op.cycle_fetched, op.cycle_issued, op.cycle_completed,
                   op.cycle_committed, op.exec_done_at)

    # ------------------------------------------------------------------
    def stage_histogram(self) -> Dict[str, float]:
        """Mean per-op residency (in cycles) of each pipeline segment for
        committed ops — a quick bottleneck summary."""
        committed = [op for op in self.traced_ops
                     if op.state is OpState.COMMITTED
                     and op.cycle_issued >= 0]
        if not committed:
            return {}
        n = len(committed)
        return {
            "frontend": sum(op.dispatch_ready_at - op.cycle_fetched
                            for op in committed) / n,
            "wait": sum(max(0, op.cycle_issued - op.dispatch_ready_at)
                        for op in committed) / n,
            "execute": sum(max(1, op.cycle_completed - op.cycle_issued)
                           for op in committed) / n,
            "commit_wait": sum(max(0, op.cycle_committed - op.cycle_completed)
                               for op in committed) / n,
        }


__all__ = ["PipelineTracer"]
