"""Opt-in pipeline invariant sanitizer: structural self-checks for the core.

The tandem classifier (``repro.faults.classifier``) compares a faulty core
against a golden run, so any latent simulator bug is silently folded into
the masking/SDC numbers. This module is the guard against that: a
per-cycle (or per-capture-site) checker that asserts the structural
invariants every stage of :class:`~repro.pipeline.core.PipelineCore`
relies on, and reports violations through the ``invariant`` event type of
:mod:`repro.obs.schema`.

Invariants checked (names as reported in violations):

``rob-order``
    Each thread's ROB (and fetch buffer) holds its own ops in strictly
    increasing uid order — program order per thread.
``lsq-order`` / ``lsq-residency``
    Each thread's LSQ is in age order, holds only memory ops, and every
    LSQ resident is simultaneously resident in that thread's ROB.
``iq-coherence``
    Issue-queue and delay-buffer membership agree with the
    ``in_delay_buffer`` flag; delay-buffered ops are completed and still
    occupy issue-queue slots; completed ops never linger in the queue
    outside the delay buffer; WAITING ops are always schedulable (present
    in the queue); both structures respect their capacities.
``executing-list``
    The core's executing list holds exactly the EXECUTING ops, once each.
``squash-residue``
    Squashed (or committed) ops are absent from every structure.
``prf-ready``
    A physical register is marked pending exactly while an in-flight
    WAITING/EXECUTING op is its writer, and no register has two in-flight
    writers.
``freelist-disjoint``
    The free list is disjoint from every live rename mapping
    (speculative and committed tables) and from every in-flight op's
    source/destination tags, and holds no duplicates.

Relaxation: rename-fault injection deliberately corrupts mappings so that
commit frees *wrong* (live) registers — the double-free tolerance
documented on :class:`~repro.pipeline.regfile.FreeList`. Injecting a
rename fault (``PipelineCore.inject_rat_bit``) therefore flips
:attr:`InvariantSanitizer.relax_rename`, which disables the ``prf-ready``
and ``freelist-disjoint`` checks; the purely structural invariants stay
armed because they hold even under the paper's fault model.

Cost: nothing is imported or consulted on the default path —
``PipelineCore.step`` is only shadowed on the *instance* that opted in
(see :meth:`PipelineCore.enable_sanitizer`), so un-sanitized cores pay
zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from ..errors import SimulationError
from .uops import OpState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .core import PipelineCore


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, observed at the end of one cycle."""

    cycle: int
    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"cycle {self.cycle}: {self.invariant}: {self.detail}"


class InvariantError(SimulationError):
    """Raised by a sanitizer in raise mode on the first dirty check."""

    def __init__(self, violations: List[InvariantViolation]):
        first = violations[0]
        extra = f" (+{len(violations) - 1} more)" if len(violations) > 1 \
            else ""
        super().__init__(f"{first}{extra}")
        self.violations = violations


class InvariantSanitizer:
    """Structural invariant checker for one :class:`PipelineCore`.

    ``raise_on_violation`` (default) makes the first dirty check raise an
    :class:`InvariantError`; otherwise violations accumulate in
    :attr:`violations` for the caller to inspect. ``events`` is an
    optional :class:`repro.obs.events.EventLog`-like sink; each violation
    is emitted as one ``invariant`` event (merged with :attr:`context`,
    e.g. the fuzz seed). The sink is dropped on pickling — a checkpointed
    golden core carries its sanitizer but not an open log handle.
    """

    def __init__(self, raise_on_violation: bool = True,
                 relax_rename: bool = False,
                 events: Any = None,
                 max_recorded: int = 256):
        self.raise_on_violation = raise_on_violation
        self.relax_rename = relax_rename
        self.events = events
        self.max_recorded = max_recorded
        self.context: Dict[str, Any] = {}
        self.violations: List[InvariantViolation] = []
        self.checks_run = 0

    def __getstate__(self):
        state = self.__dict__.copy()
        state["events"] = None    # log handles never survive pickling
        return state

    def relax_for_rename_fault(self) -> None:
        """Disable the rename-liveness invariants: a rename fault makes
        wrong frees (and the resulting reallocation clobbers) part of the
        fault model, not simulator errors."""
        self.relax_rename = True

    # ------------------------------------------------------------------
    def check(self, core: "PipelineCore") -> List[InvariantViolation]:
        """Run every invariant against *core*; returns (and records) the
        violations found by this check."""
        self.checks_run += 1
        cycle = core.cycle
        found: List[InvariantViolation] = []

        def fail(invariant: str, detail: str) -> None:
            found.append(InvariantViolation(cycle, invariant, detail))

        WAITING = OpState.WAITING
        EXECUTING = OpState.EXECUTING
        COMPLETED = OpState.COMPLETED
        live_states = (WAITING, EXECUTING, COMPLETED)

        # -- per-thread ROB / LSQ ordering and residency ----------------
        all_rob_ops = []
        rob_sets = {}
        for thread in core.threads:
            tid = thread.thread_id
            rob_ops = list(thread.rob)
            rob_set = set(rob_ops)
            rob_sets[tid] = rob_set
            all_rob_ops.extend(rob_ops)
            if thread.halted and (rob_ops or len(thread.lsq)):
                fail("squash-residue",
                     f"thread {tid} halted with ops still in ROB/LSQ")
            prev = -1
            for op in rob_ops:
                if op.thread_id != tid:
                    fail("rob-order", f"t{tid} ROB holds uop {op.uid} "
                                      f"of thread {op.thread_id}")
                if op.uid <= prev:
                    fail("rob-order", f"t{tid} ROB order broken at uop "
                                      f"{op.uid} (previous {prev})")
                prev = op.uid
                if op.state not in live_states:
                    fail("squash-residue", f"t{tid} ROB holds uop {op.uid} "
                                           f"in state {op.state.value}")
            prev = -1
            for op in thread.lsq:
                if op.uid <= prev:
                    fail("lsq-order", f"t{tid} LSQ age order broken at uop "
                                      f"{op.uid} (previous {prev})")
                prev = op.uid
                if not op.is_mem:
                    fail("lsq-residency",
                         f"t{tid} LSQ holds non-memory uop {op.uid}")
                if op not in rob_set:
                    fail("lsq-residency", f"t{tid} LSQ uop {op.uid} is not "
                                          f"resident in its ROB")

        # -- fetch buffers ----------------------------------------------
        fetch_ops = []
        for buffer in core._fetch_buffers:
            prev = -1
            for op in buffer:
                fetch_ops.append(op)
                if op.state is not OpState.FETCHED:
                    fail("squash-residue",
                         f"fetch buffer holds uop {op.uid} in state "
                         f"{op.state.value}")
                if op.uid <= prev:
                    fail("rob-order", f"fetch buffer order broken at uop "
                                      f"{op.uid} (previous {prev})")
                prev = op.uid
                if op.in_delay_buffer:
                    fail("iq-coherence", f"pre-dispatch uop {op.uid} flagged "
                                         f"in_delay_buffer")

        # -- issue queue / delay buffer coherence -----------------------
        iq_ops = list(core.iq)
        db_ops = list(core.iq.delay_buffer)
        iq_set = set(iq_ops)
        db_set = set(db_ops)
        rob_union = set(all_rob_ops)
        if len(iq_ops) > core.iq.capacity:
            fail("iq-coherence", f"issue queue holds {len(iq_ops)} ops, "
                                 f"capacity {core.iq.capacity}")
        if len(db_ops) > core.iq.delay_buffer.capacity:
            fail("iq-coherence", f"delay buffer holds {len(db_ops)} ops, "
                                 f"capacity {core.iq.delay_buffer.capacity}")
        for op in db_ops:
            if not op.in_delay_buffer:
                fail("iq-coherence", f"uop {op.uid} buffered but its "
                                     f"in_delay_buffer flag is clear")
            if op not in iq_set:
                fail("iq-coherence", f"delay-buffered uop {op.uid} vacated "
                                     f"its issue-queue slot")
            if op.state is not COMPLETED:
                fail("iq-coherence", f"delay buffer holds uop {op.uid} in "
                                     f"state {op.state.value}")
        for op in iq_ops:
            if op.in_delay_buffer and op not in db_set:
                fail("iq-coherence", f"uop {op.uid} flagged in_delay_buffer "
                                     f"but absent from the deque")
            if op not in rob_union:
                fail("iq-coherence", f"issue-queue uop {op.uid} is not "
                                     f"resident in any ROB")
            if op.state is COMPLETED and op not in db_set:
                fail("iq-coherence", f"completed uop {op.uid} lingers in "
                                     f"the issue queue outside the delay "
                                     f"buffer")
            elif op.state not in live_states:
                fail("squash-residue", f"issue queue holds uop {op.uid} in "
                                       f"state {op.state.value}")

        # -- executing list ---------------------------------------------
        executing_seen = set()
        for op in core._executing:
            if op in executing_seen:
                fail("executing-list", f"uop {op.uid} listed twice")
            executing_seen.add(op)
            if op.state is not EXECUTING:
                fail("executing-list", f"stale entry: uop {op.uid} is "
                                       f"{op.state.value}")
            if op not in rob_union:
                fail("executing-list", f"executing uop {op.uid} is not in "
                                       f"any ROB")
        for op in all_rob_ops:
            if op.state is EXECUTING and op not in executing_seen:
                fail("executing-list", f"uop {op.uid} EXECUTING but missing "
                                       f"from the executing list")
            elif op.state is WAITING and op not in iq_set:
                fail("iq-coherence", f"uop {op.uid} WAITING but not in the "
                                     f"issue queue (unschedulable)")

        # -- register liveness: relaxed under rename-fault injection ----
        if not self.relax_rename:
            self._check_registers(core, all_rob_ops, fail)

        return self._record(found)

    def _check_registers(self, core: "PipelineCore", all_rob_ops,
                         fail) -> None:
        free_tags = core.free_list.tag_set()
        duplicates = core.free_list.duplicates()
        for tag in duplicates[:8]:
            fail("freelist-disjoint", f"tag p{tag} freed more than once")
        live = set()
        for thread in core.threads:
            live.update(thread.committed_rat.map)
            if not thread.halted:
                # a halting squash deliberately leaves the speculative
                # table stale (the thread never renames again)
                live.update(thread.spec_rat.map)
        ready = core.prf.ready
        pending_writers: Dict[int, Any] = {}
        for op in all_rob_ops:
            dest = op.phys_dest
            if dest is not None:
                live.add(dest)
                if op.state is OpState.WAITING \
                        or op.state is OpState.EXECUTING:
                    other = pending_writers.get(dest)
                    if other is not None:
                        fail("prf-ready", f"uops {other.uid} and {op.uid} "
                                          f"both in flight to p{dest}")
                    pending_writers[dest] = op
                    if ready[dest]:
                        fail("prf-ready", f"p{dest} ready while its writer "
                                          f"uop {op.uid} is "
                                          f"{op.state.value}")
            live.update(op.phys_srcs)
        overlap = free_tags & live
        for tag in sorted(overlap)[:8]:
            fail("freelist-disjoint", f"free tag p{tag} is still live "
                                      f"(rename mapping or in-flight op)")
        # Vectorised pending scan: the ready list is O(phys_regs) and the
        # set of pending registers is tiny, so collapse the Python loop
        # to a numpy nonzero before the (rare) membership checks.
        pending = np.flatnonzero(
            ~np.fromiter(ready, dtype=bool, count=len(ready)))
        for reg in pending.tolist():
            if reg not in pending_writers and reg not in free_tags:
                fail("prf-ready", f"p{reg} marked pending with no in-flight "
                                  f"writer and not on the free list")

    # ------------------------------------------------------------------
    def _record(self,
                found: List[InvariantViolation]) -> List[InvariantViolation]:
        if not found:
            return found
        room = self.max_recorded - len(self.violations)
        if room > 0:
            self.violations.extend(found[:room])
        if self.events is not None:
            for violation in found[:16]:
                self.events.emit("invariant",
                                 invariant=violation.invariant,
                                 cycle=violation.cycle,
                                 detail=violation.detail,
                                 **self.context)
        if self.raise_on_violation:
            raise InvariantError(found)
        return found


def check_core(core: "PipelineCore") -> List[InvariantViolation]:
    """One-shot convenience: check *core* without arming anything."""
    return InvariantSanitizer(raise_on_violation=False).check(core)


__all__ = ["InvariantError", "InvariantSanitizer", "InvariantViolation",
           "check_core"]
