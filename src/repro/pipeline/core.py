"""The out-of-order SMT pipeline core: cycle loop and recovery actions.

One :class:`PipelineCore` models one of the paper's cores: ``smt_contexts``
threads sharing the issue queue, physical register file, functional units
and data-cache hierarchy, each with private ROB/LSQ partitions and rename
tables. The screening unit (FaultHound, PBFS, or the null baseline) is
consulted at instruction completion and — for FaultHound's LSQ scheme — at
commit, and the core implements the three recovery actions: predecessor
replay out of the delay buffer, full pipeline rollback, and the singleton
re-execute with value comparison.

Stage order within a cycle is commit → complete → issue → dispatch →
fetch, the conventional reverse order that prevents same-cycle
flow-through.
"""

from __future__ import annotations

import weakref
from collections import deque
from time import perf_counter
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..config import HardwareConfig
from ..core.actions import CheckAction, CheckKind
from ..core.screening import NullScreeningUnit, ScreeningUnit
from ..errors import MemoryFault, SimulationError
from ..isa.interpreter import Interpreter
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.semantics import (alu_result, branch_taken, check_address,
                             effective_address)
from ..memory.hierarchy import MemoryHierarchy
from .branch import BranchPredictor
from .func_units import FunctionalUnits
from .issue_queue import IssueQueue
from .lsq import ForwardStatus
from .regfile import FreeList, PhysicalRegisterFile
from .stats import PipelineStats
from .thread import ThreadContext
from .uops import MicroOp, OpState

#: Fetch-to-dispatch latency in cycles (fetch + decode depth).
FRONTEND_DEPTH = 3
#: Fetch-buffer capacity per thread.
FETCH_BUFFER_CAP = 16

#: Ordering of screening actions by severity, for stores that produce two
#: check results (address and value).
_SEVERITY = {
    CheckAction.NONE: 0,
    CheckAction.SUPPRESSED: 1,
    CheckAction.REPLAY: 2,
    CheckAction.SINGLETON: 3,
    CheckAction.SQUASH: 4,
}
#: Hoisted bound method: the screening path runs once per memory op.
_SEVERITY_OF = _SEVERITY.__getitem__

#: Event horizon for :meth:`PipelineCore.quiescent_until`: returned when
#: nothing is pending at all, so a hung window jumps straight to its
#: cycle bound — exactly where cycle-by-cycle stepping would land.
_NO_EVENT = 1 << 62

#: Branch-oracle cache: ``(id(program), max_commits)`` → recorded
#: outcomes. Keyed by the program object the caller passed to the
#: constructor (campaigns hold and reuse those across every fresh core),
#: relying on Program's immutable-once-built convention. A finalizer
#: evicts entries when the program is collected, so recycled ids can
#: never alias.
_ORACLE_CACHE: Dict[Tuple[int, Optional[int]], Tuple[bool, ...]] = {}


class PipelineCore:
    """A value-accurate out-of-order core running one program per thread."""

    def __init__(self, programs: Sequence[Program],
                 hw: HardwareConfig | None = None,
                 screening: ScreeningUnit | None = None,
                 thread_options: Optional[Sequence[dict]] = None):
        self.hw = hw or HardwareConfig()
        if not programs:
            raise SimulationError("need at least one program")
        if len(programs) > self.hw.smt_contexts:
            raise SimulationError(
                f"{len(programs)} programs > {self.hw.smt_contexts} contexts")
        self.screening = screening or NullScreeningUnit()
        self.stats = PipelineStats()

        self.prf = PhysicalRegisterFile(self.hw.phys_regs)
        used = len(programs) * 32
        self.free_list = FreeList(range(used, self.hw.phys_regs))

        delay_size = (self.hw.delay_buffer_size
                      if self.screening.wants_delay_buffer else 0)
        self.iq = IssueQueue(self.hw.issue_queue_size, delay_size)

        self.hierarchy = MemoryHierarchy(self.hw)
        self._ideal_hierarchy = MemoryHierarchy(self.hw, ideal=True)

        thread_options = thread_options or [{} for _ in programs]
        self.threads: List[ThreadContext] = []
        self.predictors: List[BranchPredictor] = []
        for tid, (program, opts) in enumerate(zip(programs, thread_options)):
            mapping = list(range(tid * 32, tid * 32 + 32))
            thread = ThreadContext(tid, program, self.hw, mapping,
                                   ideal_memory=opts.get("ideal_memory", False),
                                   ideal_branch=opts.get("ideal_branch", False),
                                   max_commits=opts.get("max_commits"))
            for reg, value in thread.program.initial_regs.items():
                if reg != 0:
                    self.prf.write(mapping[reg], value)
            self.threads.append(thread)
            self.predictors.append(
                BranchPredictor(ideal=thread.ideal_branch))
        self._branch_oracles: Dict[int, Deque[bool]] = {}
        for program, thread in zip(programs, self.threads):
            if thread.ideal_branch:
                self._branch_oracles[thread.thread_id] = deque(
                    self._cached_branch_outcomes(program, thread))
        # every rotation of the round-robin thread priority, prebuilt so
        # the commit/dispatch stages never allocate per cycle
        self._thread_orders = self._build_thread_orders()

        self.fus = FunctionalUnits(self.hw)
        self.cycle = 0
        self._uid = 0
        self._fetch_buffers: List[Deque[MicroOp]] = [
            deque() for _ in self.threads]
        self._executing: List[MicroOp] = []
        self._replay_pending: set = set()
        # per-cycle aggregate occupancy snapshots (see _dispatch_stage)
        self._rob_total = 0
        self._lsq_total = 0
        #: Issue suspended until this cycle (singleton re-execute).
        self._issue_suspended_until = 0
        #: (cycle, uid, source) records of declared fault detections
        #: (singleton re-execute value mismatches, Section 3.5).
        self.declared_faults: List[Tuple[int, int, str]] = []
        #: Cycle of every screening filter trigger (any non-NONE check
        #: action, including second-level suppressions) — the raw series
        #: behind the audit trail's detection latencies.
        self.screen_trigger_cycles: List[int] = []
        #: Per-stage wall-clock accounting, populated only after
        #: :meth:`enable_stage_profiling` (the default step() path pays
        #: a single attribute test).
        self.stage_seconds: Dict[str, float] = {}
        self._stage_profiling = False
        #: Tandem-classification hooks: when a thread's committed count
        #: reaches its target, its architectural snapshot is captured
        #: exactly at that boundary (see repro.faults.classifier).
        self.snapshot_targets: Dict[int, int] = {}
        self.captured_snapshots: Dict[int, Tuple] = {}
        #: Armed invariant sanitizer, or None (the default — costs one
        #: attribute on the instance, nothing per cycle; see
        #: :meth:`enable_sanitizer` and repro.pipeline.invariants).
        self._sanitizer = None
        self._sanitize_every = 1
        #: Idle-cycle elision (event-skip fast-forward). On by default;
        #: :meth:`enable_fast_forward` turns it off for cycle-by-cycle
        #: reference runs (equivalence tests, before/after benchmarks).
        self.fast_forward = True
        #: Cycles jumped over by :meth:`elide_idle_cycles` (diagnostic).
        self.cycles_elided = 0
        #: Lazily built SoA mirror of fault-reachable state (see
        #: :meth:`soa_view`); never cloned or pickled — each core
        #: rebuilds its own on first use.
        self._soa_view = None
        self.stats.bind_cycle_source(self)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _cached_branch_outcomes(self, program: Program,
                                thread: ThreadContext) -> Tuple[bool, ...]:
        """Branch-oracle outcomes for *thread*, memoised per
        ``(program identity, max_commits)`` so campaigns constructing
        many fresh cores re-interpret each program once, not per core.
        *program* is the caller's object (pre-``ensure_halts``; appending
        a HALT never adds branch outcomes, so the recording is keyed on
        the object callers actually share)."""
        key = (id(program), thread.max_commits)
        outcomes = _ORACLE_CACHE.get(key)
        if outcomes is None:
            outcomes = tuple(self._build_branch_oracle(thread))
            _ORACLE_CACHE[key] = outcomes
            weakref.finalize(program, _ORACLE_CACHE.pop, key, None)
        return outcomes

    def _build_branch_oracle(self, thread: ThreadContext) -> Deque[bool]:
        """Pre-execute the program to record conditional-branch outcomes
        (SRT-iso's perfect trailing-thread branch prediction)."""
        interp = Interpreter(thread.program)
        outcomes: Deque[bool] = deque()
        limit = (thread.max_commits or 200_000) * 2 + 1000
        state = interp.state
        for _ in range(limit):
            if state.halted:
                break
            inst = thread.program.fetch(state.pc)
            if inst is None:
                break
            if inst.is_branch and inst.opcode is not Opcode.JMP:
                taken = branch_taken(inst.opcode, state.read_reg(inst.rs1),
                                     state.read_reg(inst.rs2))
                outcomes.append(taken)
            if interp.step() is None:
                break
        return outcomes

    # ------------------------------------------------------------------
    # public driving API
    # ------------------------------------------------------------------
    @property
    def all_halted(self) -> bool:
        return all(t.halted for t in self.threads)

    def step(self) -> None:
        """Advance the core by one cycle."""
        self.cycle += 1
        self.fus.new_cycle()
        if self._stage_profiling:
            self._step_stages_timed()
            return
        self._commit_stage()
        if self._executing:
            self._complete_stage()
        self._issue_stage()
        self._dispatch_stage()
        self._fetch_stage()

    def enable_stage_profiling(self, enabled: bool = True) -> None:
        """Opt into per-stage wall-clock accounting (``stage_seconds``).
        Fast-forward scans and jumps are attributed to the dedicated
        ``"idle-skip"`` bucket."""
        self._stage_profiling = enabled

    def _step_stages_timed(self) -> None:
        accumulate = self.stage_seconds
        for name, stage in (("commit", self._commit_stage),
                            ("complete", self._complete_stage),
                            ("issue", self._issue_stage),
                            ("dispatch", self._dispatch_stage),
                            ("fetch", self._fetch_stage)):
            started = perf_counter()
            stage()
            accumulate[name] = (accumulate.get(name, 0.0)
                                + perf_counter() - started)

    def record_metrics(self, metrics, prefix: str = "core") -> None:
        """Fold this core's cumulative state into a live-telemetry
        registry (repro.obs.metrics). Read-only over the core — called
        once per completed run, never per cycle, so it cannot perturb
        results and costs nothing against :data:`~repro.obs.metrics.
        NULL_METRICS`."""
        if not metrics.enabled:
            return
        stats = self.stats
        metrics.counter(f"{prefix}_cycles_total").inc(self.cycle)
        metrics.counter(f"{prefix}_cycles_elided_total").inc(
            self.cycles_elided)
        metrics.counter(f"{prefix}_commits_total").inc(stats.committed)
        metrics.counter(f"{prefix}_replay_events_total").inc(
            stats.replay_events)
        metrics.counter(f"{prefix}_rollback_events_total").inc(
            stats.rollback_events)
        metrics.counter(f"{prefix}_singleton_reexecs_total").inc(
            stats.singleton_reexecs)
        metrics.counter(f"{prefix}_branch_mispredicts_total").inc(
            stats.branch_mispredicts)
        metrics.gauge(f"{prefix}_ipc").set(stats.ipc)
        metrics.gauge(f"{prefix}_rob_occupancy").set(self._rob_total)
        metrics.gauge(f"{prefix}_lsq_occupancy").set(self._lsq_total)
        for stage, seconds in self.stage_seconds.items():
            metrics.counter(
                f"{prefix}_stage_{stage.replace('-', '_')}_seconds"
            ).inc(seconds)

    # ------------------------------------------------------------------
    # invariant sanitizer (repro.pipeline.invariants)
    # ------------------------------------------------------------------
    def enable_sanitizer(self, sanitizer=None, every: int = 1):
        """Arm an invariant sanitizer on this core; returns it.

        ``every=N`` checks after every Nth cycle by shadowing ``step``
        with a checking wrapper *on this instance only* — the class-level
        ``step`` is untouched, so cores that never opt in pay nothing.
        ``every=0`` arms the sanitizer for explicit
        :meth:`check_invariants` calls only (the tandem classifier's
        capture-site mode).
        """
        from .invariants import InvariantSanitizer
        if sanitizer is None:
            sanitizer = InvariantSanitizer()
        self._sanitizer = sanitizer
        # record the mode: 0 (explicit-check) imposes no per-cycle
        # cadence, so idle-cycle elision stays unrestricted; N >= 1 makes
        # elide_idle_cycles stop short of every Nth cycle so the periodic
        # checks run at exactly the legacy cycles
        self._sanitize_every = every
        if every:
            self.step = self._step_sanitized
        else:
            self.__dict__.pop("step", None)
        return sanitizer

    def disable_sanitizer(self) -> None:
        """Disarm: restores the un-instrumented class-level ``step``."""
        self._sanitizer = None
        self.__dict__.pop("step", None)

    def check_invariants(self):
        """Run the armed sanitizer once against the current state; a
        no-op (empty list) when no sanitizer is armed. ``getattr`` guards
        against cores unpickled from pre-sanitizer checkpoints."""
        sanitizer = getattr(self, "_sanitizer", None)
        if sanitizer is None:
            return []
        return sanitizer.check(self)

    def _step_sanitized(self) -> None:
        PipelineCore.step(self)
        if self.cycle % self._sanitize_every == 0:
            self._sanitizer.check(self)

    def inflight_ops(self):
        """Every micro-op currently tracked by the core: fetch buffers
        (pre-dispatch) then each thread's ROB. The supported iteration
        surface for tracers and debuggers — the underlying containers
        are private."""
        for buffer in self._fetch_buffers:
            yield from buffer
        for thread in self.threads:
            yield from thread.rob

    # ------------------------------------------------------------------
    # checkpoint protocol
    # ------------------------------------------------------------------
    def clone(self) -> "PipelineCore":
        """A fully independent copy of this core, mid-flight.

        Purpose-built replacement for ``copy.deepcopy`` in the tandem
        classifier's hot loop: every mutable structure is copied through
        its own ``clone()``, immutable state (hardware config, programs,
        instructions) is shared, and micro-op identity is preserved — an
        op resident in several containers at once (ROB, LSQ, issue
        queue, delay buffer, executing list) maps to exactly one clone,
        keyed by its core-global ``uid``.
        """
        twin = object.__new__(type(self))
        twin.hw = self.hw                     # frozen config, shared
        twin.screening = self.screening.clone()
        twin.stats = self.stats.clone()
        twin.prf = self.prf.clone()
        twin.free_list = self.free_list.clone()
        twin.hierarchy = self.hierarchy.clone()
        twin._ideal_hierarchy = self._ideal_hierarchy.clone()

        memo: Dict[int, MicroOp] = {}

        def clone_op(op: MicroOp) -> MicroOp:
            copy_ = memo.get(op.uid)
            if copy_ is None:
                copy_ = op.clone()
                memo[op.uid] = copy_
            return copy_

        twin.threads = [t.clone(clone_op) for t in self.threads]
        twin.predictors = [p.clone() for p in self.predictors]
        twin._branch_oracles = {tid: deque(oracle) for tid, oracle
                                in self._branch_oracles.items()}
        twin.iq = self.iq.clone(clone_op)
        twin.fus = self.fus.clone()
        twin.cycle = self.cycle
        twin._uid = self._uid
        twin._fetch_buffers = [deque(clone_op(op) for op in buffer)
                               for buffer in self._fetch_buffers]
        twin._executing = [clone_op(op) for op in self._executing]
        twin._replay_pending = set(self._replay_pending)
        twin._rob_total = self._rob_total
        twin._lsq_total = self._lsq_total
        twin._issue_suspended_until = self._issue_suspended_until
        twin.declared_faults = list(self.declared_faults)
        twin.screen_trigger_cycles = list(self.screen_trigger_cycles)
        twin.stage_seconds = dict(self.stage_seconds)
        twin._stage_profiling = self._stage_profiling
        twin.snapshot_targets = dict(self.snapshot_targets)
        twin.captured_snapshots = dict(self.captured_snapshots)
        # forks start unsanitized: the classifier's faulty copies *will*
        # break rename invariants by design, and the golden core re-arms
        # explicitly (clone never copies the instance-level step shadow)
        twin._sanitizer = None
        twin._sanitize_every = 1
        twin.fast_forward = self.fast_forward
        twin.cycles_elided = self.cycles_elided
        twin._soa_view = None    # mirrors are per-core, rebuilt lazily
        twin._thread_orders = twin._build_thread_orders()
        twin.stats.bind_cycle_source(twin)
        return twin

    def __getstate__(self):
        state = dict(self.__dict__)
        # The SoA view holds numpy mirrors plus a back-reference to this
        # core; it is rebuilt lazily on demand, so checkpoints never
        # carry it. (An instance-level ``step`` shadow — an armed
        # periodic sanitizer — stays: restored checkpoints keep their
        # sanitizer cadence by design.)
        state.pop("_soa_view", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # cores pickled before fast-forward existed restore with defaults
        self.__dict__.setdefault("fast_forward", True)
        self.__dict__.setdefault("cycles_elided", 0)
        self.__dict__.setdefault("_soa_view", None)
        if "_thread_orders" not in self.__dict__:
            self._thread_orders = self._build_thread_orders()
        stats = self.__dict__.get("stats")
        if stats is not None:
            stats.bind_cycle_source(self)

    def soa_view(self):
        """This core's structure-of-arrays state mirror
        (:class:`repro.faults.batched.CoreSoAView`), built lazily on
        first use and cached — the batched tandem engine's divergence
        probe refreshes it at most once per cycle. Imported lazily:
        repro.faults.batched imports the classifier, which imports this
        module."""
        view = self._soa_view
        if view is None:
            from ..faults.batched import CoreSoAView
            view = self._soa_view = CoreSoAView(self)
        return view

    # ------------------------------------------------------------------
    # event-skip fast-forward
    # ------------------------------------------------------------------
    def enable_fast_forward(self, enabled: bool = True) -> None:
        """Toggle idle-cycle elision in the run drivers. Disabling forces
        the cycle-by-cycle reference behaviour (the fast path is bit-for-
        bit equivalent; the toggle exists for before/after measurement
        and equivalence testing)."""
        self.fast_forward = enabled

    def activity_signature(self) -> int:
        """Cheap digest of the event counters that any state-changing
        cycle bumps in practice. Run drivers consult the (more expensive)
        :meth:`quiescent_until` scan only after a step that left this
        unchanged; the scan alone is authoritative, so a counter missed
        here costs one wasted scan, never correctness."""
        stats = self.stats
        return (stats.fetched + stats.dispatched + stats.issued
                + stats.completed + stats.committed + stats.squashed
                + stats.exceptions + stats.replay_events
                + stats.branch_mispredicts)

    def quiescent_until(self) -> int:
        """The earliest cycle > ``self.cycle`` at which any stage can
        change state, aggregated from every structure's
        ``next_event_cycle()`` contract.

        Conservative by construction: an event may be reported early
        (the core just steps normally through it) but never late, so
        jumping to ``quiescent_until() - 1`` is always safe. Returns
        ``cycle + 1`` when the core may be busy next cycle and the
        :data:`_NO_EVENT` horizon when nothing is pending at all (a
        deadlocked window then jumps straight to its cycle bound).
        """
        now = self.cycle
        horizon = now + 1

        # commit: acts exactly on a COMPLETED head (retire, exception,
        # singleton_stall decrement) — an event every cycle while true
        for thread in self.threads:
            if thread.rob.next_event_cycle(now) is not None:
                return horizon

        nxt = _NO_EVENT

        # complete: the earliest in-flight execution finish
        executing = self._executing
        if executing:
            done = min(op.exec_done_at for op in executing)
            if done <= horizon:
                return horizon
            if done < nxt:
                nxt = done

        # issue: a ready WAITING op issues next cycle (or once a
        # singleton suspension lifts); loads whose forwarding probe
        # stalls retry every cycle without changing anything
        event = self.iq.next_event_cycle(now, self.prf.ready,
                                         self._issue_blocked)
        if event is not None:
            event = max(event, self._issue_suspended_until)
            if event <= horizon:
                return horizon
            if event < nxt:
                nxt = event

        # frontend: fetch-buffer dispatch readiness and fetch eligibility
        event = self._frontend_next_event(now)
        if event is not None:
            if event <= horizon:
                return horizon
            if event < nxt:
                nxt = event

        # structures with no autonomous events today honour the contract
        # anyway, so future subclasses participate without core changes
        for source in (self.fus, self.screening, self.hierarchy,
                       self._ideal_hierarchy):
            event = source.next_event_cycle(now)
            if event is not None:
                if event <= horizon:
                    return horizon
                if event < nxt:
                    nxt = event
        for thread in self.threads:
            event = thread.lsq.next_event_cycle(now)
            if event is not None:
                if event <= horizon:
                    return horizon
                if event < nxt:
                    nxt = event
        return nxt

    def _issue_blocked(self, op: MicroOp) -> bool:
        """True when a ready WAITING op still cannot leave the issue
        stage: a valid-address load whose store-to-load forwarding probe
        stalls (it retries every cycle with no effect until the blocking
        store's value resolves — a completion event). Pure: mirrors the
        issue stage's own side-effect-free probe."""
        if not op.is_load:
            return False
        base = self.prf.read(op.phys_srcs[0])
        address = effective_address(base, op.inst.imm)
        if not check_address(address):
            return False    # would issue and resolve as an exception
        status, _value, _uid = self.threads[op.thread_id].lsq.forward_value(
            op, address)
        return status is ForwardStatus.STALL

    def _frontend_next_event(self, now: int) -> Optional[int]:
        """Dispatch/fetch events: the earliest cycle either front-end
        stage can act, or None when both are blocked on events tracked
        elsewhere (every resource that gates dispatch — ROB/IQ/LSQ slots,
        free-list tags — frees only in commit/complete/squash paths)."""
        nxt = None
        buffers = self._fetch_buffers
        threads = self.threads
        rob_total = -1
        for thread in threads:
            buffer = buffers[thread.thread_id]
            if not buffer:
                continue
            op = buffer[0]
            ready_at = op.dispatch_ready_at
            if ready_at > now:
                if nxt is None or ready_at < nxt:
                    nxt = ready_at
                continue
            # mirror _dispatch_op's resource gates without mutating
            if rob_total < 0:
                rob_total = sum(len(t.rob) for t in threads)
                lsq_total = sum(len(t.lsq) for t in threads)
            if thread.rob.full or rob_total >= self.hw.rob_size:
                continue
            if not self.iq.can_accept():
                continue
            if op.is_mem and (thread.lsq.full
                              or lsq_total >= self.hw.lsq_size):
                continue
            if (op.inst.writes_reg and op.inst.rd != 0
                    and self.free_list.empty):
                continue
            return now + 1    # dispatchable as soon as the stage runs
        for thread in threads:
            # program exhaustion still counts: the stage must run once to
            # latch stop_fetch, which feeds the ICOUNT fairness timing
            if (not thread.fetch_active
                    or len(buffers[thread.thread_id]) >= FETCH_BUFFER_CAP):
                continue
            event = thread.fetch_stalled_until
            if event <= now:
                return now + 1
            if nxt is None or event < nxt:
                nxt = event
        return nxt

    def elide_idle_cycles(self, bound: int) -> bool:
        """Jump ``self.cycle`` to one cycle before the next event (clamped
        to *bound*) when the core is provably idle; True when at least one
        cycle was elided. Safe to call at any time — the jump happens only
        when :meth:`quiescent_until` proves the skipped cycles are no-ops.
        A periodic sanitizer caps the jump so its checks still run at the
        legacy cycles; under stage profiling the scan/jump cost lands in
        the ``"idle-skip"`` bucket of ``stage_seconds``."""
        if not self.fast_forward:
            return False
        profiling = self._stage_profiling
        if profiling:
            started = perf_counter()
        landing = self.quiescent_until() - 1
        if landing > bound:
            landing = bound
        if self._sanitizer is not None and self._sanitize_every:
            every = self._sanitize_every
            next_check = (self.cycle // every + 1) * every
            if landing >= next_check:
                landing = next_check - 1
        elided = landing - self.cycle
        if elided > 0:
            self.cycle = landing
            self.cycles_elided += elided
        if profiling:
            self.stage_seconds["idle-skip"] = (
                self.stage_seconds.get("idle-skip", 0.0)
                + perf_counter() - started)
        return elided > 0

    # ------------------------------------------------------------------
    # run drivers
    # ------------------------------------------------------------------
    def step_until(self, target_cycle: int) -> None:
        """Advance to *target_cycle* (or until every thread halts),
        eliding provably idle stretches."""
        step = self.step
        signature = -1
        while self.cycle < target_cycle:
            if self.all_halted:
                return
            current = self.activity_signature()
            if (current == signature
                    and self.elide_idle_cycles(target_cycle)
                    and self.cycle >= target_cycle):
                return
            signature = current
            step()

    def run(self, max_cycles: int = 2_000_000) -> PipelineStats:
        """Run until every thread halts, or *max_cycles* more cycles."""
        self.step_until(self.cycle + max_cycles)
        return self.stats

    def run_to_commit(self, total_commits: int,
                      max_cycles: int = 2_000_000) -> bool:
        """Run until the all-thread committed count reaches the absolute
        coordinate *total_commits*; True when reached, False when every
        thread halted or the cycle budget ran out first."""
        bound = self.cycle + max_cycles
        step = self.step
        stats = self.stats
        signature = -1
        while stats.committed < total_commits:
            if self.all_halted or self.cycle >= bound:
                break
            current = self.activity_signature()
            if (current == signature and self.elide_idle_cycles(bound)
                    and self.cycle >= bound):
                break
            signature = current
            step()
        return stats.committed >= total_commits

    def run_until_commits(self, total_commits: int,
                          max_cycles: int = 2_000_000) -> int:
        """Run until *total_commits* more instructions commit (across all
        threads); returns the number actually committed (may be fewer if
        every thread halts first)."""
        before = self.stats.committed
        self.run_to_commit(before + total_commits, max_cycles)
        return self.stats.committed - before

    def run_to_capture(self, max_cycles: int) -> None:
        """Run until every armed snapshot target is captured or every
        thread halts, bounded by *max_cycles* more cycles (the tandem
        classifier's window driver)."""
        bound = self.cycle + max_cycles
        step = self.step
        signature = -1
        while not (self.all_snapshots_captured or self.all_halted) \
                and self.cycle < bound:
            current = self.activity_signature()
            if (current == signature and self.elide_idle_cycles(bound)
                    and self.cycle >= bound):
                return
            signature = current
            step()

    def arch_snapshot(self) -> Tuple:
        """Digest of every thread's architectural state (classifier input)."""
        return tuple(t.arch_state_snapshot(self.prf) for t in self.threads)

    # ------------------------------------------------------------------
    # fault-injection hooks (used by repro.faults.injector)
    # ------------------------------------------------------------------
    def inject_prf_bit(self, reg: int, bit: int) -> None:
        """Flip one bit of a physical register (back-end datapath fault)."""
        self.prf.flip_bit(reg % self.prf.num_regs, bit)

    def inject_rat_bit(self, thread_id: int, logical: int, bit: int) -> None:
        """Flip one bit of a speculative rename mapping (front-end fault)."""
        self.threads[thread_id].spec_rat.flip_bit(logical, bit)
        sanitizer = getattr(self, "_sanitizer", None)
        if sanitizer is not None:
            # wrong frees / reallocation clobbers are now part of the
            # fault model on this core, not simulator errors
            sanitizer.relax_for_rename_fault()

    def inject_lsq_bit(self, thread_id: int, entry_index: int,
                       field: str, bit: int) -> bool:
        """Flip one bit of an executed LSQ entry's address or store value.

        Returns False when the LSQ holds no executed entry to corrupt.
        """
        entries = self.threads[thread_id].lsq.executed_entries()
        if not entries:
            return False
        op = entries[entry_index % len(entries)]
        if field == "value" and op.is_store and op.store_value is not None:
            op.store_value ^= 1 << bit
        else:
            op.eff_addr ^= 1 << bit
        return True

    # ------------------------------------------------------------------
    # commit stage
    # ------------------------------------------------------------------
    def _commit_stage(self) -> None:
        # gate: commit acts only on a COMPLETED head; every other head
        # state (and an empty ROB) is a stall this stage cannot clear
        for thread in self.threads:
            head = thread.rob.head()
            if head is not None and head.state is OpState.COMPLETED:
                break
        else:
            return
        budget = self.hw.commit_width
        order = self._thread_order()
        for thread in order:
            while budget > 0:
                op = thread.rob.head()
                if op is None or op.state is not OpState.COMPLETED:
                    break
                if op.exception_addr is not None:
                    self._deliver_exception(thread, op)
                    budget -= 1
                    break
                if op.singleton_stall > 0:
                    op.singleton_stall -= 1
                    break
                if (op.is_mem and not op.lsq_checked
                        and self.screening.wants_commit_checks):
                    if self._commit_check(thread, op):
                        break  # singleton re-execute stalls this commit
                if not self._commit_op(thread, op):
                    budget -= 1
                    break
                budget -= 1
            if budget <= 0:
                break

    def _commit_check(self, thread: ThreadContext, op: MicroOp) -> bool:
        """Run the commit-time LSQ check; True when commit must stall for a
        singleton re-execute."""
        op.lsq_checked = True
        suppress = (thread.screen_suppress_remaining > 0
                    or op.screen_suppressed)
        action = self._screen(op, at_commit=True, suppress=suppress)
        if action is not CheckAction.SINGLETON:
            return False
        self.stats.singleton_reexecs += 1
        op.singleton_stall = self.hw.singleton_reexec_cycles
        self._issue_suspended_until = max(
            self._issue_suspended_until,
            self.cycle + self.hw.singleton_reexec_cycles)
        self._singleton_reexecute(thread, op)
        return True

    def _singleton_reexecute(self, thread: ThreadContext, op: MicroOp) -> None:
        """Re-execute a single load/store from register-file values and
        compare with the LSQ copy (Section 3.5): a mismatch means a fault
        in the register file or the LSQ and is *declared* (detection)."""
        base = self.prf.read(op.phys_srcs[0])
        new_addr = effective_address(base, op.inst.imm)
        self.stats.regfile_reads += 1
        mismatch = new_addr != op.eff_addr
        new_value = None
        if op.is_store:
            new_value = self.prf.read(op.phys_srcs[1])
            self.stats.regfile_reads += 1
            mismatch = mismatch or new_value != op.store_value
        if mismatch:
            self.stats.singleton_mismatch_detections += 1
            self.declared_faults.append((self.cycle, op.uid, "lsq-compare"))
        # The re-executed values are adopted (recovery for LSQ faults).
        op.eff_addr = new_addr
        if op.is_store:
            op.store_value = new_value
        if not check_address(new_addr):
            op.exception_addr = new_addr

    def _commit_op(self, thread: ThreadContext, op: MicroOp) -> bool:
        """Architecturally retire the ROB head; False on a late exception."""
        if op.is_store:
            try:
                thread.memory.write(op.eff_addr, op.store_value)
            except MemoryFault:
                op.exception_addr = op.eff_addr
                self._deliver_exception(thread, op)
                return False
            self.stats.committed_stores += 1
        elif op.is_load:
            self.stats.committed_loads += 1

        if op.writes_reg:
            # Free the physical register holding the previous committed
            # value of this logical register. A corrupted rename mapping
            # makes this free the *wrong* (live) register — the uncovered
            # rename-fault corruption of Section 5.5.
            if op.old_phys_dest is not None:
                self.free_list.free(op.old_phys_dest)
            thread.committed_rat.set(op.inst.rd, op.phys_dest)

        if op.is_mem:
            thread.lsq.remove(op)
        self.iq.remove(op)

        if op.is_branch:
            thread.arch_pc = (op.inst.imm if op.actual_taken else op.pc + 1)
        elif op.inst.opcode is Opcode.HALT:
            thread.arch_pc = op.pc + 1
        else:
            thread.arch_pc = op.pc + 1

        op.state = OpState.COMMITTED
        op.cycle_committed = self.cycle
        thread.rob.pop_head()
        thread.committed_count += 1
        self.stats.note_commit(thread.thread_id, op.pc)
        self._maybe_capture(thread)
        if thread.screen_suppress_remaining > 0:
            thread.screen_suppress_remaining -= 1

        if op.inst.opcode is Opcode.HALT:
            self._halt_thread(thread)
        elif (thread.max_commits is not None
                and thread.committed_count >= thread.max_commits):
            self._halt_thread(thread)
        return True

    def _maybe_capture(self, thread: ThreadContext) -> None:
        tid = thread.thread_id
        target = self.snapshot_targets.get(tid)
        if (target is not None and thread.committed_count >= target
                and tid not in self.captured_snapshots):
            self.captured_snapshots[tid] = thread.output_snapshot()

    @property
    def all_snapshots_captured(self) -> bool:
        return all(tid in self.captured_snapshots
                   for tid in self.snapshot_targets)

    def set_snapshot_targets(self, targets: Dict[int, int]) -> None:
        """Arm per-thread snapshot capture at the given committed counts.

        A thread already at or past its target (or halted) is captured
        immediately.
        """
        self.snapshot_targets = dict(targets)
        self.captured_snapshots = {}
        for thread in self.threads:
            target = self.snapshot_targets.get(thread.thread_id)
            if target is not None and (thread.committed_count >= target
                                       or thread.halted):
                self.captured_snapshots[thread.thread_id] = \
                    thread.output_snapshot()

    def _halt_thread(self, thread: ThreadContext) -> None:
        thread.halted = True
        thread.stop_fetch()
        tid = thread.thread_id
        if (tid in self.snapshot_targets
                and tid not in self.captured_snapshots):
            self.captured_snapshots[tid] = thread.output_snapshot()
        self._squash_ops(thread, thread.rob.drain_all(), restore_walk=False)
        self._fetch_buffers[thread.thread_id].clear()
        thread.lsq.clear()

    def _deliver_exception(self, thread: ThreadContext, op: MicroOp) -> None:
        """Precise architectural exception at commit: record, halt thread
        (the ISA has no trap handlers), squash everything younger."""
        self.stats.exceptions += 1
        thread.exceptions.append(
            (thread.committed_count, op.pc, op.exception_addr))
        thread.arch_pc = op.pc
        op.state = OpState.COMMITTED  # consumed by the exception
        thread.rob.pop_head()
        if op.is_mem:
            thread.lsq.remove(op)
        self.iq.remove(op)
        if op.phys_dest is not None:
            self.free_list.free(op.phys_dest)
        self._halt_thread(thread)

    # ------------------------------------------------------------------
    # complete stage
    # ------------------------------------------------------------------
    def _complete_stage(self) -> None:
        if not self._executing:
            return    # gate for the profiled path; step() gates inline
        finished = [op for op in self._executing
                    if op.exec_done_at <= self.cycle]
        if not finished:
            return
        finished.sort(key=lambda op: op.uid)
        for op in finished:
            if op.state is not OpState.EXECUTING:
                # squashed earlier this cycle (possibly already unlinked)
                if op in self._executing:
                    self._executing.remove(op)
                continue
            self._try_complete(op)
            # completed *and* bounced ops leave the list: a bounced op is
            # WAITING in the issue queue again, and leaving it here would
            # let it transiently appear twice if re-issued this cycle —
            # `_executing` holds exactly the EXECUTING ops, once each
            if op in self._executing:
                self._executing.remove(op)

    def _sources_ready(self, op: MicroOp) -> bool:
        # hot path: direct ready-bit indexing, no generator / method calls
        ready = self.prf.ready
        for phys in op.phys_srcs:
            if not ready[phys]:
                return False
        return True

    def _bounce(self, op: MicroOp) -> None:
        """Return an op whose operands became unready (producer replay) to
        the issue queue — the load-hit-speculation-style retry."""
        op.state = OpState.WAITING
        op.exec_done_at = -1
        if op.is_mem:
            op.eff_addr = None
            op.forwarded_from = None

    def _try_complete(self, op: MicroOp) -> bool:
        """Finish execution of *op*; returns False when it bounced."""
        if not self._sources_ready(op):
            self._bounce(op)
            return False
        thread = self.threads[op.thread_id]
        inst = op.inst
        opcode = inst.opcode

        if op.is_load:
            if not self._complete_load(thread, op):
                return False
        elif op.is_store:
            base = self.prf.read(op.phys_srcs[0])
            op.eff_addr = effective_address(base, inst.imm)
            op.store_value = self.prf.read(op.phys_srcs[1])
            self.stats.regfile_reads += 2
            if not check_address(op.eff_addr):
                op.exception_addr = op.eff_addr
            else:
                self._check_order_violation(thread, op)
        elif op.is_branch:
            self._complete_branch(thread, op)
        elif opcode in (Opcode.NOP, Opcode.HALT):
            pass
        else:
            srcs = [self.prf.read(p) for p in op.phys_srcs]
            self.stats.regfile_reads += len(srcs)
            a = srcs[0] if srcs else 0
            b = srcs[1] if len(srcs) > 1 else 0
            op.result = alu_result(opcode, a, b, inst.imm)

        if op.phys_dest is not None and op.result is not None:
            self.prf.write(op.phys_dest, op.result)
            self.stats.regfile_writes += 1
        elif op.phys_dest is not None:
            self.prf.write(op.phys_dest, 0)
            self.stats.regfile_writes += 1

        op.state = OpState.COMPLETED
        op.cycle_completed = self.cycle
        self.stats.completed += 1
        was_replay = op.replay_marked
        if was_replay:
            op.replay_marked = False
            self._replay_pending.discard(op.uid)
            if not self._replay_pending:
                self.screening.replaying = False
        self.iq.on_complete(op)

        if op.is_mem and op.exception_addr is None:
            # A re-completing replayed op must not re-trigger: its
            # re-computed value is deemed final (Section 3.3).
            self._screen_completion(thread, op, force_suppress=was_replay)
        return True

    def _complete_load(self, thread: ThreadContext, op: MicroOp) -> bool:
        """Produce a load's value: forward from the newest older resolved
        store to the same address, else read memory (speculatively past
        stores with unresolved *addresses*; a late-resolving store catches
        stale loads via the memory-order violation check). A matching
        store with a resolved address but unresolved *value* bounces the
        load instead — no check would ever revisit that stale read."""
        base = self.prf.read(op.phys_srcs[0])
        self.stats.regfile_reads += 1
        address = effective_address(base, op.inst.imm)
        op.eff_addr = address
        if not check_address(address):
            op.exception_addr = address
            op.result = 0
            return True
        status, value, store_uid = thread.lsq.forward_value(op, address)
        if status is ForwardStatus.STALL:
            # the newest matching older store has not produced its value
            # yet: reading memory here would consume a stale value that
            # no later check revisits — bounce and retry instead
            self._bounce(op)
            return False
        if status is ForwardStatus.HIT:
            op.result = value
            op.forwarded_from = store_uid
            self.stats.forwarded_loads += 1
        else:
            op.result = thread.memory.read(address)
        return True

    def _complete_branch(self, thread: ThreadContext, op: MicroOp) -> None:
        srcs = [self.prf.read(p) for p in op.phys_srcs]
        self.stats.regfile_reads += len(srcs)
        a = srcs[0] if srcs else 0
        b = srcs[1] if len(srcs) > 1 else 0
        op.actual_taken = branch_taken(op.inst.opcode, a, b)
        predictor = self.predictors[op.thread_id]
        if op.inst.opcode is not Opcode.JMP:
            op.mispredicted = op.actual_taken != op.predicted_taken
            predictor.update(op.thread_id, op.pc, op.actual_taken,
                             op.mispredicted)
            if op.mispredicted:
                self.stats.branch_mispredicts += 1
                self._recover_from_branch(thread, op)

    # ------------------------------------------------------------------
    # screening hooks
    # ------------------------------------------------------------------
    def _screen(self, op: MicroOp, at_commit: bool,
                suppress: bool) -> CheckAction:
        """Run the load/store checks for *op*; returns the strongest action."""
        unit = self.screening
        saved = unit.replaying
        if suppress:
            unit.replaying = True
        check = unit.check_at_commit if at_commit else unit.check_at_complete
        try:
            if op.is_load:
                # single check: no max() needed
                action = check(CheckKind.LOAD_ADDR, op.eff_addr, op.pc).action
            else:
                addr = check(CheckKind.STORE_ADDR, op.eff_addr, op.pc).action
                value = check(CheckKind.STORE_VALUE, op.store_value,
                              op.pc).action
                action = (addr if _SEVERITY_OF(addr) >= _SEVERITY_OF(value)
                          else value)
        finally:
            unit.replaying = saved
        if action is not CheckAction.NONE:
            self.screen_trigger_cycles.append(self.cycle)
        return action

    def _screen_completion(self, thread: ThreadContext, op: MicroOp,
                           force_suppress: bool = False) -> None:
        suppress = (force_suppress
                    or thread.screen_suppress_remaining > 0
                    or op.screen_suppressed)
        action = self._screen(op, at_commit=False, suppress=suppress)
        if action is CheckAction.REPLAY:
            self._initiate_replay(op)
        elif action is CheckAction.SQUASH:
            self._screening_rollback(thread)

    def _initiate_replay(self, trigger: MicroOp) -> None:
        """Predecessor replay (Section 3.3): the trigger and its delay-
        buffered predecessors return to the issue queue for re-execution."""
        marked = self.iq.mark_predecessors_for_replay(trigger.uid)
        if trigger.in_delay_buffer:
            self.iq.delay_buffer.remove(trigger)
        if trigger in self.iq and trigger.state is OpState.COMPLETED:
            trigger.mark_for_replay()
            marked.append(trigger)
        if not marked:
            return
        for op in marked:
            if op.phys_dest is not None:
                self.prf.mark_pending(op.phys_dest)
            self._replay_pending.add(op.uid)
        self.stats.replay_events += 1
        self.stats.replayed_ops += len(marked)
        self.screening.replaying = True

    def _screening_rollback(self, thread: ThreadContext) -> None:
        """Full pipeline rollback for this thread: squash every uncommitted
        instruction and refetch from the commit point. Recovers rename
        faults because the speculative rename table is restored from the
        committed one."""
        drained = thread.rob.drain_all()
        self._squash_ops(thread, drained, restore_walk=False)
        thread.spec_rat.copy_from(thread.committed_rat)
        thread.lsq.clear()
        self._fetch_buffers[thread.thread_id].clear()
        thread.redirect_fetch(thread.arch_pc,
                              self.cycle + self.hw.rollback_redirect_penalty)
        mem_ops = sum(1 for op in drained if op.is_mem)
        thread.screen_suppress_remaining += mem_ops
        self.stats.rollback_events += 1
        self.stats.rollback_squashed_ops += len(drained)

    # ------------------------------------------------------------------
    # squash machinery
    # ------------------------------------------------------------------
    def _squash_ops(self, thread: ThreadContext, ops: List[MicroOp],
                    restore_walk: bool) -> None:
        """Remove *ops* from every structure. With *restore_walk*, ops must
        be ordered youngest-first and the speculative rename table is
        restored mapping by mapping (branch-mispredict recovery); otherwise
        the caller restores the table wholesale (full rollback) or does not
        need it (halt)."""
        for op in ops:
            if restore_walk and op.phys_dest is not None:
                thread.spec_rat.set(op.inst.rd, op.old_phys_dest)
            if op.phys_dest is not None:
                self.free_list.free(op.phys_dest)
            self.iq.remove(op)
            if op.state is OpState.EXECUTING and op in self._executing:
                self._executing.remove(op)
            self._replay_pending.discard(op.uid)
            op.state = OpState.SQUASHED
            self.stats.squashed += 1
        if not self._replay_pending:
            self.screening.replaying = False

    def _check_order_violation(self, thread: ThreadContext,
                               store: MicroOp) -> None:
        """A resolving store exposes younger completed loads to the same
        address that consumed stale data: squash from the oldest such load
        and refetch (standard memory-order-violation recovery)."""
        violations = thread.lsq.violating_loads(store)
        if not violations:
            return
        oldest = min(violations, key=lambda op: op.uid)
        self.stats.memory_order_violations += 1
        drained = thread.rob.drain_younger_than(oldest.uid - 1)
        self._squash_ops(thread, drained, restore_walk=True)
        thread.lsq.remove_younger_than(oldest.uid - 1)
        self._fetch_buffers[thread.thread_id].clear()
        thread.redirect_fetch(oldest.pc,
                              self.cycle + self.hw.branch_mispredict_penalty)

    def _recover_from_branch(self, thread: ThreadContext,
                             branch: MicroOp) -> None:
        drained = thread.rob.drain_younger_than(branch.uid)
        self._squash_ops(thread, drained, restore_walk=True)
        thread.lsq.remove_younger_than(branch.uid)
        self._fetch_buffers[thread.thread_id].clear()
        target = branch.inst.imm if branch.actual_taken else branch.pc + 1
        thread.redirect_fetch(target,
                              self.cycle + self.hw.branch_mispredict_penalty)
        self.stats.branch_squashed_ops += len(drained)

    # ------------------------------------------------------------------
    # issue stage
    # ------------------------------------------------------------------
    def _issue_stage(self) -> None:
        if self.iq.empty or self.cycle < self._issue_suspended_until:
            return
        budget = self.hw.issue_width
        # hot loop: hoist the shared-structure attribute lookups and walk
        # the queue's list directly (waiting_ops() semantics inlined —
        # dispatch order, WAITING only; issuing flips states but never
        # mutates the list)
        threads = self.threads
        prf = self.prf
        fus = self.fus
        stats = self.stats
        ready_bits = prf.ready
        waiting = OpState.WAITING
        for op in self.iq._ops:
            if op.state is not waiting:
                continue
            if budget <= 0:
                break
            # hot path: inline operand-ready check
            srcs_ready = True
            for phys in op.phys_srcs:
                if not ready_bits[phys]:
                    srcs_ready = False
                    break
            if not srcs_ready:
                continue
            thread = threads[op.thread_id]
            inst = op.inst
            latency = inst.latency
            if op.is_load:
                base = prf.read(op.phys_srcs[0])
                address = effective_address(base, inst.imm)
                valid = check_address(address)
                status = ForwardStatus.MISS
                if valid:
                    # probe forwarding (side-effect free) before claiming
                    # a unit: a STALL must not issue at all, it would
                    # either read stale memory or burn the FU slot
                    status, _value, _uid = thread.lsq.forward_value(
                        op, address)
                    if status is ForwardStatus.STALL:
                        continue
                if not fus.try_claim(inst.op_class):
                    continue
                if not valid:
                    latency = 1  # exception resolved at completion
                elif status is ForwardStatus.HIT:
                    latency = self.hw.l1d_latency
                else:
                    hierarchy = (self._ideal_hierarchy
                                 if thread.ideal_memory else self.hierarchy)
                    latency = hierarchy.access(
                        address, now=self.cycle,
                        space=op.thread_id).latency
            elif not fus.try_claim(inst.op_class):
                continue
            op.state = OpState.EXECUTING
            op.cycle_issued = self.cycle
            op.exec_done_at = self.cycle + latency
            self._executing.append(op)
            stats.issued += 1
            budget -= 1

    # ------------------------------------------------------------------
    # dispatch stage
    # ------------------------------------------------------------------
    def _dispatch_stage(self) -> None:
        if not any(self._fetch_buffers):
            return    # nothing to dispatch: skip the occupancy sums too
        if not self.iq.can_accept():
            return    # dispatch only fills the IQ, so a full queue at
            # stage entry blocks every candidate this cycle
        budget = self.hw.decode_width
        # snapshot aggregate occupancies once per cycle; dispatches below
        # update the running totals
        self._rob_total = sum(len(t.rob) for t in self.threads)
        self._lsq_total = sum(len(t.lsq) for t in self.threads)
        for thread in self._thread_order():
            buffer = self._fetch_buffers[thread.thread_id]
            while budget > 0 and buffer:
                op = buffer[0]
                if op.dispatch_ready_at > self.cycle:
                    break
                if not self._dispatch_op(thread, op):
                    break
                buffer.popleft()
                budget -= 1
            if budget <= 0:
                break

    def _dispatch_op(self, thread: ThreadContext, op: MicroOp) -> bool:
        # ROB and LSQ are shared dynamically: dispatch checks aggregate
        # occupancy across all SMT contexts (cheapest comparisons first —
        # all the gates are pure, so order is free).
        if self._rob_total >= self.hw.rob_size or thread.rob.full \
                or not self.iq.can_accept():
            return False
        if op.is_mem and (thread.lsq.full
                          or self._lsq_total >= self.hw.lsq_size):
            return False
        # op.writes_reg already folds in the rd != 0 discard rule
        if op.writes_reg and self.free_list.empty:
            return False

        inst = op.inst
        op.phys_srcs = tuple(thread.spec_rat.get(r)
                             for r in inst.source_regs())
        if op.writes_reg:
            new_phys = self.free_list.allocate()
            op.old_phys_dest = thread.spec_rat.get(inst.rd)
            op.phys_dest = new_phys
            self.prf.mark_pending(new_phys)
            thread.spec_rat.set(inst.rd, new_phys)

        if not self.iq.insert(op):
            # roll the rename back; this should not happen after can_accept
            if op.phys_dest is not None:
                thread.spec_rat.set(op.inst.rd, op.old_phys_dest)
                self.free_list.free(op.phys_dest)
                op.phys_dest = None
            return False
        if self.iq.delay_buffer.squashes > self.stats.delay_buffer_squashes:
            self.stats.delay_buffer_squashes = self.iq.delay_buffer.squashes
        thread.rob.push(op)
        self._rob_total += 1
        if op.is_mem:
            thread.lsq.push(op)
            self._lsq_total += 1
        self.stats.dispatched += 1
        return True

    # ------------------------------------------------------------------
    # fetch stage
    # ------------------------------------------------------------------
    def _fetch_stage(self) -> None:
        thread = self._fetch_thread()
        if thread is None:
            return
        buffer = self._fetch_buffers[thread.thread_id]
        predictor = self.predictors[thread.thread_id]
        oracle = self._branch_oracles.get(thread.thread_id)
        for _ in range(self.hw.fetch_width):
            if len(buffer) >= FETCH_BUFFER_CAP:
                break
            inst = thread.program.fetch(thread.fetch_pc)
            if inst is None:
                thread.stop_fetch()
                break
            self._uid += 1
            op = MicroOp(self._uid, thread.thread_id, thread.fetch_pc, inst,
                         self.cycle, self.cycle + FRONTEND_DEPTH)
            if inst.opcode is Opcode.JMP:
                thread.fetch_pc = inst.imm
            elif inst.is_branch:
                hint = None
                if oracle is not None:
                    hint = oracle.popleft() if oracle else False
                op.predicted_taken = predictor.predict(
                    thread.thread_id, thread.fetch_pc, hint)
                thread.fetch_pc = (inst.imm if op.predicted_taken
                                   else thread.fetch_pc + 1)
            else:
                thread.fetch_pc += 1
            buffer.append(op)
            self.stats.fetched += 1
            if inst.opcode is Opcode.HALT:
                thread.stop_fetch()
                break
            if inst.is_branch and op.predicted_taken:
                break  # taken-branch redirect ends the fetch group

    def _fetch_thread(self) -> Optional[ThreadContext]:
        """ICOUNT fetch policy: the eligible thread with the fewest
        in-flight instructions gets the full fetch width this cycle.

        This is the classic SMT fairness rule — without it a thread
        stalled on a long miss chain fills its whole ROB partition and
        starves the shared free list and issue queue, collapsing the
        other thread's throughput.
        """
        best = None
        best_count = None
        n = len(self.threads)
        for offset in range(n):
            thread = self.threads[(self.cycle + offset) % n]
            if (not thread.fetch_active
                    or self.cycle < thread.fetch_stalled_until
                    or len(self._fetch_buffers[thread.thread_id])
                    >= FETCH_BUFFER_CAP):
                continue
            in_flight = (len(thread.rob)
                         + len(self._fetch_buffers[thread.thread_id]))
            if best_count is None or in_flight < best_count:
                best, best_count = thread, in_flight
        return best

    def _build_thread_orders(self) -> List[List[ThreadContext]]:
        threads = self.threads
        n = len(threads)
        return [threads[i:] + threads[:i] for i in range(n)]

    def _thread_order(self) -> List[ThreadContext]:
        orders = self._thread_orders
        return orders[self.cycle % len(orders)]


__all__ = ["PipelineCore", "FRONTEND_DEPTH"]
