"""Pipeline event counters: the raw material for performance and energy."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Tuple


@dataclass
class PipelineStats:
    """Per-run event counts. Every field feeds either the performance
    metrics (Figure 9), the energy model (Figure 10) or the breakdown
    analyses (Figures 11/12).

    ``cycles`` is *derived*: a core binds itself as the cycle source
    (:meth:`bind_cycle_source`) and the property reads ``core.cycle``
    live, so the hot loop never writes a per-cycle counter. Detached
    stats objects (clones, unpickled checkpoints, hand-built tests) fall
    back to the materialised ``_cycles`` field.
    """

    _cycles: int = 0
    fetched: int = 0
    dispatched: int = 0
    issued: int = 0
    completed: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    squashed: int = 0

    branch_mispredicts: int = 0
    branch_squashed_ops: int = 0
    memory_order_violations: int = 0
    #: Loads satisfied by store-to-load forwarding (diagnostic; not part
    #: of the energy/report surface, so deliberately absent from
    #: ``summary()``).
    forwarded_loads: int = 0

    # screening recovery actions
    replay_events: int = 0
    replayed_ops: int = 0
    rollback_events: int = 0
    rollback_squashed_ops: int = 0
    singleton_reexecs: int = 0
    singleton_mismatch_detections: int = 0
    delay_buffer_squashes: int = 0

    exceptions: int = 0

    # regfile traffic (energy)
    regfile_reads: int = 0
    regfile_writes: int = 0

    per_thread_committed: Dict[int, int] = field(default_factory=dict)
    #: Ring of the most recent commits as (thread_id, pc) — enough for a
    #: debugger to see everything committed since its last per-cycle check
    #: (commit width is far below the ring size).
    recent_commits: Deque[Tuple[int, int]] = field(
        default_factory=lambda: deque(maxlen=32))

    #: Live cycle source (the owning core), or None when detached. A
    #: plain class attribute, not a dataclass field: ``replace``-based
    #: clones and unpickled copies start detached by construction.
    _cycle_source = None

    @property
    def cycles(self) -> int:
        source = self._cycle_source
        if source is not None:
            return source.cycle
        return self._cycles

    @cycles.setter
    def cycles(self, value: int) -> None:
        self._cycles = value

    def bind_cycle_source(self, core) -> None:
        """Derive ``cycles`` from *core*.cycle at read time (no per-step
        write). The binding is dropped on pickle and on ``clone`` — both
        materialise the current count first."""
        self._cycle_source = core

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_cycle_source", None)
        state["_cycles"] = self.cycles
        return state

    def __setstate__(self, state):
        state.pop("_cycle_source", None)
        # stats pickled before cycles became derived carry the old field
        legacy = state.pop("cycles", None)
        if legacy is not None and "_cycles" not in state:
            state["_cycles"] = legacy
        self.__dict__.update(state)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.committed if self.committed else 0.0

    def clone(self) -> "PipelineStats":
        """Independent copy for core forking. ``replace`` carries every
        scalar counter (including any added later); only the two container
        fields need their own copies. The twin starts detached from any
        cycle source with the current count materialised — the cloning
        core re-binds it."""
        twin = replace(self)
        twin._cycles = self.cycles
        twin.per_thread_committed = dict(self.per_thread_committed)
        twin.recent_commits = deque(self.recent_commits,
                                    maxlen=self.recent_commits.maxlen)
        return twin

    def thread_committed(self, thread_id: int) -> int:
        return self.per_thread_committed.get(thread_id, 0)

    def note_commit(self, thread_id: int, pc: int = -1) -> None:
        self.committed += 1
        self.per_thread_committed[thread_id] = (
            self.per_thread_committed.get(thread_id, 0) + 1)
        self.recent_commits.append((thread_id, pc))

    def summary(self) -> Dict[str, float]:
        """Flat dict for reports, the event log and EXPERIMENTS.md tables.

        Covers every counter the energy model and breakdown analyses
        consume — reports must agree with the model inputs, so nothing
        that feeds :mod:`repro.energy` may be omitted here.
        """
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": round(self.ipc, 4),
            "branch_mispredicts": self.branch_mispredicts,
            "memory_order_violations": self.memory_order_violations,
            "replay_events": self.replay_events,
            "replayed_ops": self.replayed_ops,
            "rollback_events": self.rollback_events,
            "rollback_squashed_ops": self.rollback_squashed_ops,
            "singleton_reexecs": self.singleton_reexecs,
            "singleton_mismatch_detections": self.singleton_mismatch_detections,
            "delay_buffer_squashes": self.delay_buffer_squashes,
            "regfile_reads": self.regfile_reads,
            "regfile_writes": self.regfile_writes,
            "exceptions": self.exceptions,
        }


__all__ = ["PipelineStats"]
