"""Per-thread load-store queue.

Entries are the memory ops themselves in program order. Loads issue
speculatively past older stores with unresolved addresses; a load whose
address matches an older *resolved* store forwards the newest such store's
value. When a store resolves its address, younger already-completed loads
to the same address that did not forward from it (or something newer) are
memory-order violations and are squashed and re-fetched. Stores write
memory at commit. Between execution and commit the queue holds each op's
address (and store value) — the residency window the paper's LSQ fault
injection and commit-time check target (Section 3.5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .uops import MicroOp


class LoadStoreQueue:
    """Program-ordered window of in-flight memory operations."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._ops: List[MicroOp] = []

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    @property
    def full(self) -> bool:
        return len(self._ops) >= self.capacity

    def push(self, op: MicroOp) -> None:
        self._ops.append(op)

    def remove(self, op: MicroOp) -> None:
        self._ops.remove(op)

    def remove_younger_than(self, uid: int) -> None:
        self._ops = [op for op in self._ops if op.uid <= uid]

    def clear(self) -> None:
        self._ops.clear()

    def clone(self, clone_op) -> "LoadStoreQueue":
        """Copy for core forking; *clone_op* maps each op to its clone."""
        twin = LoadStoreQueue(self.capacity)
        twin._ops = [clone_op(op) for op in self._ops]
        return twin

    def older_stores_resolved(self, load: MicroOp) -> bool:
        """True when every store older than *load* has a known address."""
        for op in self._ops:
            if op.uid >= load.uid:
                break
            if op.is_store and op.eff_addr is None:
                return False
        return True

    def violating_loads(self, store: MicroOp) -> List[MicroOp]:
        """Younger completed loads to *store*'s address that consumed a
        stale value — memory-order violations exposed when *store*
        resolves. A load is safe only if it forwarded from this store or
        a younger one."""
        from .uops import OpState
        violations = []
        for op in self._ops:
            if (op.uid > store.uid and op.is_load
                    and op.state is OpState.COMPLETED
                    and op.eff_addr == store.eff_addr
                    and (op.forwarded_from is None
                         # <= : a load that forwarded from this very store
                         # is stale too when the store re-resolves after a
                         # replay (its value may have been corrected)
                         or op.forwarded_from <= store.uid)):
                violations.append(op)
        return violations

    def forward_value(self, load: MicroOp,
                      address: int) -> Tuple[bool, Optional[int], Optional[int]]:
        """Store-to-load forwarding: (hit, value, store_uid) from the newest
        older store to *address* whose value is resolved."""
        best: Optional[MicroOp] = None
        for op in self._ops:
            if op.uid >= load.uid:
                break
            if op.is_store and op.eff_addr == address:
                best = op
        if best is not None and best.store_value is not None:
            return True, best.store_value, best.uid
        return False, None, None

    def resident(self, op: MicroOp) -> bool:
        return op in self._ops

    def executed_entries(self) -> List[MicroOp]:
        """Ops whose address is resolved and which await commit — the
        fault-injection target population for the LSQ."""
        return [op for op in self._ops if op.eff_addr is not None]


__all__ = ["LoadStoreQueue"]
