"""Per-thread load-store queue.

Entries are the memory ops themselves in program order. Loads issue
speculatively past older stores with unresolved addresses; a load whose
address matches an older *resolved* store forwards the newest such store's
value. When a store resolves its address, younger already-completed loads
to the same address that did not forward from it (or something newer) are
memory-order violations and are squashed and re-fetched. Stores write
memory at commit. Between execution and commit the queue holds each op's
address (and store value) — the residency window the paper's LSQ fault
injection and commit-time check target (Section 3.5).
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from .uops import MicroOp


class ForwardStatus(enum.Enum):
    """Outcome of a store-to-load forwarding probe.

    ``HIT``: the newest address-matching older store has a resolved value
    — forward it. ``MISS``: no older store matches — read memory.
    ``STALL``: the newest matching older store exists but its *value* is
    still unresolved; the load must not read memory (it would consume a
    stale value that ``violating_loads`` can never catch, because that
    check only re-fires on *address* resolution) and must retry later.

    Truthiness is "did we get a value to forward", so legacy
    ``hit, value, uid = forward_value(...)`` call sites keep working.
    """

    HIT = "hit"
    MISS = "miss"
    STALL = "stall"

    def __bool__(self) -> bool:
        return self is ForwardStatus.HIT


class LoadStoreQueue:
    """Program-ordered window of in-flight memory operations."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._ops: List[MicroOp] = []

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    @property
    def full(self) -> bool:
        return len(self._ops) >= self.capacity

    def push(self, op: MicroOp) -> None:
        self._ops.append(op)

    def remove(self, op: MicroOp) -> None:
        self._ops.remove(op)

    def remove_younger_than(self, uid: int) -> None:
        self._ops = [op for op in self._ops if op.uid <= uid]

    def clear(self) -> None:
        self._ops.clear()

    def clone(self, clone_op) -> "LoadStoreQueue":
        """Copy for core forking; *clone_op* maps each op to its clone."""
        twin = LoadStoreQueue(self.capacity)
        twin._ops = [clone_op(op) for op in self._ops]
        return twin

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-skip contract: the queue never acts on its own. Entries
        resolve at issue/complete, forward at completion probes, and
        drain at commit — all driven by stages with their own event
        sources."""
        return None

    def older_stores_resolved(self, load: MicroOp) -> bool:
        """True when every store older than *load* has a known address."""
        for op in self._ops:
            if op.uid >= load.uid:
                break
            if op.is_store and op.eff_addr is None:
                return False
        return True

    def violating_loads(self, store: MicroOp) -> List[MicroOp]:
        """Younger completed loads to *store*'s address that consumed a
        stale value — memory-order violations exposed when *store*
        resolves. A load is safe only if it forwarded from this store or
        a younger one."""
        from .uops import OpState
        violations = []
        for op in self._ops:
            if (op.uid > store.uid and op.is_load
                    and op.state is OpState.COMPLETED
                    and op.eff_addr == store.eff_addr
                    and (op.forwarded_from is None
                         # <= : a load that forwarded from this very store
                         # is stale too when the store re-resolves after a
                         # replay (its value may have been corrected)
                         or op.forwarded_from <= store.uid)):
                violations.append(op)
        return violations

    def forward_value(
            self, load: MicroOp, address: int
    ) -> Tuple[ForwardStatus, Optional[int], Optional[int]]:
        """Store-to-load forwarding probe: ``(status, value, store_uid)``
        against the newest older store to *address*.

        A matching store whose value is still pending yields ``STALL``,
        never a memory read: treating it as a miss would hand the load a
        stale memory value that no later check revisits (the
        memory-order-violation sweep in :meth:`violating_loads` only runs
        when a store resolves its *address*, which has already happened
        here). The probe is side-effect free.
        """
        best: Optional[MicroOp] = None
        for op in self._ops:
            if op.uid >= load.uid:
                break
            if op.is_store and op.eff_addr == address:
                best = op
        if best is None:
            return ForwardStatus.MISS, None, None
        if best.store_value is None:
            return ForwardStatus.STALL, None, None
        return ForwardStatus.HIT, best.store_value, best.uid

    def resident(self, op: MicroOp) -> bool:
        return op in self._ops

    def executed_entries(self) -> List[MicroOp]:
        """Ops whose address is resolved and which await commit — the
        fault-injection target population for the LSQ."""
        return [op for op in self._ops if op.eff_addr is not None]


__all__ = ["ForwardStatus", "LoadStoreQueue"]
