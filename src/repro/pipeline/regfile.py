"""Merged physical register file with ready bits and a free list.

Architectural values live in physical registers until the next writer of
the same logical register commits — exactly the structure whose fault
behaviour the paper studies (most PRF faults are masked because consumers
read bypassed values; only distant consumers and recovery paths read the
register file).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..config import VALUE_MASK
from ..errors import SimulationError


class PhysicalRegisterFile:
    """``num_regs`` 64-bit physical registers, each with a ready bit."""

    def __init__(self, num_regs: int):
        if num_regs <= 0:
            raise SimulationError("register file needs at least one register")
        self.num_regs = num_regs
        self.values: List[int] = [0] * num_regs
        self.ready: List[bool] = [True] * num_regs

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & VALUE_MASK
        self.ready[reg] = True

    def mark_pending(self, reg: int) -> None:
        self.ready[reg] = False

    def is_ready(self, reg: int) -> bool:
        return self.ready[reg]

    def flip_bit(self, reg: int, bit: int) -> int:
        """Inject a single-bit soft fault; returns the corrupted value."""
        if not 0 <= bit < 64:
            raise SimulationError(f"bit {bit} out of range")
        self.values[reg] ^= 1 << bit
        return self.values[reg]

    def clone(self) -> "PhysicalRegisterFile":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = PhysicalRegisterFile.__new__(PhysicalRegisterFile)
        twin.num_regs = self.num_regs
        twin.values = list(self.values)
        twin.ready = list(self.ready)
        return twin


class FreeList:
    """FIFO free list of physical register tags.

    Deliberately tolerant of double-frees: a rename fault can cause commit
    to free a live register (paper Section 5.5, "freeing incorrect physical
    registers"), and the resulting reallocation-clobber is part of the fault
    model rather than a simulator error.
    """

    def __init__(self, tags):
        self._tags: Deque[int] = deque(tags)
        # Shadow multiset: tag → multiplicity. Keeps ``contains`` O(1)
        # (it sat on the rename hot path as a linear scan) while still
        # representing fault-induced double-frees exactly.
        self._counts: Dict[int, int] = {}
        for tag in self._tags:
            self._counts[tag] = self._counts.get(tag, 0) + 1

    def __len__(self) -> int:
        return len(self._tags)

    def __iter__(self):
        return iter(self._tags)

    @property
    def empty(self) -> bool:
        return not self._tags

    def allocate(self) -> Optional[int]:
        """Pop a free tag, or ``None`` when exhausted (dispatch stalls)."""
        if not self._tags:
            return None
        tag = self._tags.popleft()
        remaining = self._counts[tag] - 1
        if remaining:
            self._counts[tag] = remaining
        else:
            del self._counts[tag]
        return tag

    def free(self, tag: int) -> None:
        self._tags.append(tag)
        self._counts[tag] = self._counts.get(tag, 0) + 1

    def contains(self, tag: int) -> bool:
        return tag in self._counts

    def tag_set(self):
        """Live view of the distinct free tags (a dict keys view: O(1)
        membership and C-speed set intersection for the sanitizer,
        without materialising a fresh set per check)."""
        return self._counts.keys()

    def duplicates(self) -> List[int]:
        """Tags currently freed more than once (invariant sanitizer)."""
        if len(self._tags) == len(self._counts):
            # every tag counted once — skip the O(free) scan on the
            # (overwhelmingly common) duplicate-free list
            return []
        return sorted(t for t, n in self._counts.items() if n > 1)

    def clone(self) -> "FreeList":
        """Independent copy for core forking (checkpoint protocol)."""
        return FreeList(self._tags)


__all__ = ["PhysicalRegisterFile", "FreeList"]
