"""Merged physical register file with ready bits and a free list.

Architectural values live in physical registers until the next writer of
the same logical register commits — exactly the structure whose fault
behaviour the paper studies (most PRF faults are masked because consumers
read bypassed values; only distant consumers and recovery paths read the
register file).
"""

from __future__ import annotations

from typing import List, Optional

from ..config import VALUE_MASK
from ..errors import SimulationError


class PhysicalRegisterFile:
    """``num_regs`` 64-bit physical registers, each with a ready bit."""

    def __init__(self, num_regs: int):
        if num_regs <= 0:
            raise SimulationError("register file needs at least one register")
        self.num_regs = num_regs
        self.values: List[int] = [0] * num_regs
        self.ready: List[bool] = [True] * num_regs

    def read(self, reg: int) -> int:
        return self.values[reg]

    def write(self, reg: int, value: int) -> None:
        self.values[reg] = value & VALUE_MASK
        self.ready[reg] = True

    def mark_pending(self, reg: int) -> None:
        self.ready[reg] = False

    def is_ready(self, reg: int) -> bool:
        return self.ready[reg]

    def flip_bit(self, reg: int, bit: int) -> int:
        """Inject a single-bit soft fault; returns the corrupted value."""
        if not 0 <= bit < 64:
            raise SimulationError(f"bit {bit} out of range")
        self.values[reg] ^= 1 << bit
        return self.values[reg]

    def clone(self) -> "PhysicalRegisterFile":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = PhysicalRegisterFile.__new__(PhysicalRegisterFile)
        twin.num_regs = self.num_regs
        twin.values = list(self.values)
        twin.ready = list(self.ready)
        return twin


class FreeList:
    """FIFO free list of physical register tags.

    Deliberately tolerant of double-frees: a rename fault can cause commit
    to free a live register (paper Section 5.5, "freeing incorrect physical
    registers"), and the resulting reallocation-clobber is part of the fault
    model rather than a simulator error.
    """

    def __init__(self, tags):
        self._tags: List[int] = list(tags)

    def __len__(self) -> int:
        return len(self._tags)

    @property
    def empty(self) -> bool:
        return not self._tags

    def allocate(self) -> Optional[int]:
        """Pop a free tag, or ``None`` when exhausted (dispatch stalls)."""
        if self._tags:
            return self._tags.pop(0)
        return None

    def free(self, tag: int) -> None:
        self._tags.append(tag)

    def contains(self, tag: int) -> bool:
        return tag in self._tags

    def clone(self) -> "FreeList":
        """Independent copy for core forking (checkpoint protocol)."""
        return FreeList(self._tags)


__all__ = ["PhysicalRegisterFile", "FreeList"]
