"""Issue queue with FaultHound's completed-instruction delay buffer.

Conventionally, completed instructions vacate the issue queue immediately.
FaultHound (Section 3.3) delays that exit: the last few completed
instructions linger — tracked here by a small FIFO "delay buffer" — so a
soft-fault trigger can mark *preceding* instructions for replay. A
newly-dispatching instruction that needs a slot may evict a lingering
completed instruction, in which case the whole delay buffer is squashed
(the paper's best-effort rule), costing only marginal coverage.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from .uops import MicroOp, OpState


class DelayBuffer:
    """FIFO of recently completed ops still occupying issue-queue slots."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._ops: Deque[MicroOp] = deque()
        self.squashes = 0

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def push(self, op: MicroOp) -> Optional[MicroOp]:
        """Add a newly completed op; returns the op that aged out of the
        buffer (and thus finally vacates the issue queue), if any."""
        op.in_delay_buffer = True
        self._ops.append(op)
        if len(self._ops) > self.capacity:
            evicted = self._ops.popleft()
            evicted.in_delay_buffer = False
            return evicted
        return None

    def remove(self, op: MicroOp) -> None:
        if op.in_delay_buffer:
            op.in_delay_buffer = False
            self._ops.remove(op)

    def clone(self, clone_op) -> "DelayBuffer":
        """Copy for core forking; *clone_op* maps each op to its clone."""
        twin = DelayBuffer(self.capacity)
        twin._ops = deque(clone_op(op) for op in self._ops)
        twin.squashes = self.squashes
        return twin

    def squash(self) -> List[MicroOp]:
        """Drop every buffered op (they lose their replay opportunity)."""
        dropped = list(self._ops)
        for op in dropped:
            op.in_delay_buffer = False
        self._ops.clear()
        self.squashes += 1
        return dropped

    def predecessors_of(self, uid: int) -> List[MicroOp]:
        """Buffered ops older than *uid* — the replay candidates."""
        return [op for op in self._ops if op.uid < uid]

    def next_event_cycle(self, now: int) -> Optional[int]:
        """Event-skip contract: the delay buffer never acts on its own —
        aging is driven by completions and evictions by dispatches, both
        of which have their own event sources."""
        return None


class IssueQueue:
    """Shared out-of-order scheduling window.

    Ops occupy a slot from dispatch until they either commit-with-
    completion... more precisely: until they age out of the delay buffer
    after completing, are evicted by a dispatching newcomer, commit, or are
    squashed. Replay-marked ops revert to WAITING in place.
    """

    def __init__(self, capacity: int, delay_buffer_size: int):
        self.capacity = capacity
        self.delay_buffer = DelayBuffer(delay_buffer_size)
        self._ops: List[MicroOp] = []

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self):
        return iter(self._ops)

    def __contains__(self, op: MicroOp) -> bool:
        return op in self._ops

    @property
    def empty(self) -> bool:
        return not self._ops

    @property
    def has_free_slot(self) -> bool:
        return len(self._ops) < self.capacity

    def can_accept(self) -> bool:
        """A newcomer fits if there is a free slot or an evictable
        (completed, delay-buffered) op."""
        return self.has_free_slot or len(self.delay_buffer) > 0

    def insert(self, op: MicroOp) -> bool:
        """Dispatch *op* into the queue; returns False when full.

        Eviction of a completed op squashes the entire delay buffer
        (Section 3.3: later buffered ops must not wait on a replaced one).
        """
        if not self.has_free_slot:
            if not self.delay_buffer:
                return False
            for dropped in self.delay_buffer.squash():
                if dropped in self._ops:
                    self._ops.remove(dropped)
        self._ops.append(op)
        op.state = OpState.WAITING
        return True

    def remove(self, op: MicroOp) -> None:
        self.delay_buffer.remove(op)
        if op in self._ops:
            self._ops.remove(op)

    def on_complete(self, op: MicroOp) -> None:
        """Completion: the op enters the delay buffer instead of leaving;
        the op that ages out finally vacates its slot."""
        evicted = self.delay_buffer.push(op)
        if evicted is not None and evicted in self._ops:
            self._ops.remove(evicted)

    def clone(self, clone_op) -> "IssueQueue":
        """Copy for core forking; *clone_op* maps each op to its clone,
        preserving op identity with the cloned ROB/LSQ/executing list."""
        twin = IssueQueue.__new__(IssueQueue)
        twin.capacity = self.capacity
        twin.delay_buffer = self.delay_buffer.clone(clone_op)
        twin._ops = [clone_op(op) for op in self._ops]
        return twin

    def waiting_ops(self) -> Iterator[MicroOp]:
        """Schedulable candidates, oldest-first.

        ``_ops`` is kept in dispatch order, which is age order per thread
        (and nearly so globally); replay-marked ops re-enter WAITING in
        place, preserving their position. Avoiding a per-cycle sort is a
        measurable win in the hottest loop, and the lazy generator lets
        the issue stage stop scanning the moment its width budget runs
        out (issuing flips states but never mutates the list itself, so
        iterating live is safe)."""
        for op in self._ops:
            if op.state is OpState.WAITING:
                yield op

    def next_event_cycle(self, now: int, ready: List[bool],
                         cannot_issue=None) -> Optional[int]:
        """Event-skip contract: the earliest future cycle at which the
        issue stage can act, or None when every queued op is blocked on
        events tracked elsewhere (operand readiness changes only at
        completion; dispatch inserts have frontend events).

        A WAITING op with every source ready issues next cycle —
        functional-unit bandwidth renews every cycle, so readiness is the
        only persistent gate. *cannot_issue* (when given) is a pure
        predicate refining that: the core passes the store-to-load STALL
        probe, whose loads retry every cycle without changing any state.
        """
        for op in self._ops:
            if op.state is not OpState.WAITING:
                continue
            srcs_ready = True
            for phys in op.phys_srcs:
                if not ready[phys]:
                    srcs_ready = False
                    break
            if not srcs_ready:
                continue
            if cannot_issue is not None and cannot_issue(op):
                continue
            return now + 1
        return None

    def mark_predecessors_for_replay(self, trigger_uid: int) -> List[MicroOp]:
        """Flip every delay-buffered predecessor of *trigger_uid* back to
        WAITING; returns the marked ops."""
        marked = []
        for op in self.delay_buffer.predecessors_of(trigger_uid):
            self.delay_buffer.remove(op)
            op.mark_for_replay()
            marked.append(op)
        return marked


__all__ = ["DelayBuffer", "IssueQueue"]
