"""Bimodal branch predictor.

A table of two-bit saturating counters indexed by (thread, pc). Targets
are known from the instruction encoding (direct branches only), so only
direction is predicted. ``ideal=True`` gives SRT-iso's trailing threads the
paper's branch-outcome-queue optimisation (no trailing mispredictions).
"""

from __future__ import annotations

from typing import Dict, Tuple


class BranchPredictor:
    """2-bit bimodal counters: 0-1 predict not-taken, 2-3 predict taken."""

    def __init__(self, entries: int = 1024, ideal: bool = False):
        self.entries = entries
        self.ideal = ideal
        self._counters: Dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, thread_id: int, pc: int) -> int:
        return (pc * 2 + thread_id) % self.entries

    def predict(self, thread_id: int, pc: int,
                actual_hint: bool | None = None) -> bool:
        """Predict the direction of the branch at *pc*.

        *actual_hint* is consulted only in ideal mode (perfect prediction).
        """
        self.predictions += 1
        if self.ideal and actual_hint is not None:
            return actual_hint
        counter = self._counters.get(self._index(thread_id, pc), 2)
        return counter >= 2

    def update(self, thread_id: int, pc: int, taken: bool,
               mispredicted: bool) -> None:
        if mispredicted:
            self.mispredictions += 1
        if self.ideal:
            return
        index = self._index(thread_id, pc)
        counter = self._counters.get(index, 2)
        if taken:
            counter = min(3, counter + 1)
        else:
            counter = max(0, counter - 1)
        self._counters[index] = counter

    def clone(self) -> "BranchPredictor":
        """Independent copy for core forking (checkpoint protocol)."""
        twin = BranchPredictor(self.entries, self.ideal)
        twin._counters = dict(self._counters)
        twin.predictions = self.predictions
        twin.mispredictions = self.mispredictions
        return twin

    @property
    def misprediction_rate(self) -> float:
        return (self.mispredictions / self.predictions
                if self.predictions else 0.0)


__all__ = ["BranchPredictor"]
