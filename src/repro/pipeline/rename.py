"""Register renaming: speculative and committed rename tables.

The speculative table maps each logical register to the physical register
holding its newest (possibly uncommitted) value. The committed table holds
the architectural mapping and is the recovery point for full rollbacks.
Rename-table fault injection flips a bit of a speculative mapping — the
"unintended, albeit unchanged, value" fault class of Section 3.4.
"""

from __future__ import annotations

from typing import List

from ..errors import SimulationError


class RenameTable:
    """One logical-to-physical mapping table (32 logical registers)."""

    def __init__(self, initial_mapping: List[int], num_phys: int):
        if len(initial_mapping) != 32:
            raise SimulationError("rename table needs 32 entries")
        self.map: List[int] = list(initial_mapping)
        self.num_phys = num_phys

    def get(self, logical: int) -> int:
        return self.map[logical]

    def set(self, logical: int, phys: int) -> None:
        self.map[logical] = phys

    def copy_from(self, other: "RenameTable") -> None:
        self.map[:] = other.map

    def snapshot(self) -> List[int]:
        return list(self.map)

    def clone(self) -> "RenameTable":
        """Independent copy for core forking (checkpoint protocol)."""
        return RenameTable(self.map, self.num_phys)

    def flip_bit(self, logical: int, bit: int) -> int:
        """Inject a rename fault: flip one bit of a mapping.

        The corrupted pointer is wrapped into the valid physical-register
        range (a real out-of-range tag is undefined hardware behaviour; the
        wrap keeps the fault architecturally meaningful).
        """
        corrupted = (self.map[logical] ^ (1 << bit)) % self.num_phys
        self.map[logical] = corrupted
        return corrupted


__all__ = ["RenameTable"]
