"""Checkpoint/restore of mid-flight :class:`PipelineCore` state.

The tandem classifier and the parallel campaign dispatcher need the same
primitive: the exact state of a golden core at a window boundary,
reproducible later in another object (faulty fork) or another process
(chunk worker). Two layers provide it:

- :meth:`PipelineCore.clone` — an in-process fork built from the
  purpose-built ``clone()`` protocol every core structure implements
  (the deepcopy replacement for the per-window faulty fork);
- :class:`CoreCheckpoint` — a pickled core plus the window coordinates
  it was captured at, cheap to ship across processes and to persist in
  the content-addressed artifact cache.

A restored checkpoint and the serial golden core are bit-for-bit
indistinguishable: golden-side stepping is deterministic and resumable
(snapshot targets only choose loop stopping points, they never alter the
core's evolution), so the classifier's never-rewind contract carries
over — the checkpoint records the commit coordinate it has already
reached (``resume_at_commit``) and the classifier asserts subsequent
records never rewind past it.
"""

from __future__ import annotations

import pickle
from typing import Optional

from .core import PipelineCore


class CoreCheckpoint:
    """A serialized, restorable snapshot of a golden core.

    ``blob`` is a pickle of the whole core (programs included, so a
    worker process needs nothing but the checkpoint to resume).
    ``window_index`` is the index of the first record the restored core
    should classify; ``resume_at_commit`` is the highest
    ``inject_at_commit`` the core has already been advanced through
    (0 when the checkpoint is the fresh factory core), which feeds the
    classifier's never-rewind contract check.
    """

    __slots__ = ("blob", "window_index", "resume_at_commit",
                 "cycle", "committed")

    def __init__(self, blob: bytes, window_index: int,
                 resume_at_commit: int, cycle: int, committed: int):
        self.blob = blob
        self.window_index = window_index
        self.resume_at_commit = resume_at_commit
        self.cycle = cycle
        self.committed = committed

    @classmethod
    def capture(cls, core: PipelineCore, window_index: int = 0,
                resume_at_commit: int = 0) -> "CoreCheckpoint":
        """Serialize *core* as of now. The core is not disturbed —
        pickling reads but never mutates it, so the dispatcher keeps
        advancing the same golden core after each capture.

        The batched tandem engine arms unpicklable write-watch shadows
        on the golden core *inside* a window and always disarms them
        before the window ends; captures happen strictly between
        windows, and the guard below turns any violation into a clear
        error instead of a baffling pickle failure. (The core's lazily
        built SoA mirror is dropped by ``__getstate__`` and rebuilt on
        demand after restore.)
        """
        from ..faults.batched import assert_unwatched
        assert_unwatched(core)
        blob = pickle.dumps(core, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(blob, window_index, resume_at_commit,
                   core.cycle, core.stats.committed)

    def restore(self) -> PipelineCore:
        """A fresh, fully independent core in the captured state. Each
        call deserializes anew, so one checkpoint can seed any number of
        workers (or repeated runs) without aliasing."""
        return pickle.loads(self.blob)

    @property
    def nbytes(self) -> int:
        return len(self.blob)

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CoreCheckpoint window={self.window_index} "
                f"commit={self.resume_at_commit} cycle={self.cycle} "
                f"{self.nbytes}B>")


def capture_checkpoint(core: PipelineCore, window_index: int = 0,
                       resume_at_commit: int = 0) -> CoreCheckpoint:
    """Module-level convenience mirror of :meth:`CoreCheckpoint.capture`."""
    return CoreCheckpoint.capture(core, window_index, resume_at_commit)


def restore_checkpoint(checkpoint: CoreCheckpoint) -> PipelineCore:
    """Module-level convenience mirror of :meth:`CoreCheckpoint.restore`."""
    return checkpoint.restore()


__all__ = ["CoreCheckpoint", "capture_checkpoint", "restore_checkpoint"]
