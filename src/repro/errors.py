"""Exception hierarchy for the FaultHound reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by :mod:`repro`."""


class AssemblyError(ReproError):
    """Raised by the assembler on malformed source text."""

    def __init__(self, message: str, line_number: int | None = None):
        self.line_number = line_number
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """Raised when the pipeline or interpreter reaches an inconsistent state.

    This always indicates a bug in the simulator (or deliberately injected
    state corruption escaping containment), never a property of the simulated
    program.
    """


class MemoryFault(ReproError):
    """Architectural memory exception (e.g. access outside the valid segment).

    The fault classifier treats a :class:`MemoryFault` that occurs in the
    fault-injected run but not the golden run as a *noisy* fault.
    """

    def __init__(self, address: int, message: str = ""):
        self.address = address
        super().__init__(message or f"memory fault at address {address:#x}")


class ConfigurationError(ReproError):
    """Raised for invalid hardware or experiment configuration values."""


class WorkloadError(ReproError):
    """Raised when a workload profile or generator is misconfigured."""
