"""ASCII bar charts: the paper's figures, rendered in a terminal.

The evaluation figures are grouped bar charts (several schemes per
benchmark), two of them on a log Y axis. These renderers produce aligned
text charts good enough to eyeball the shapes EXPERIMENTS.md discusses,
without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BAR = "█"
_HALF = "▌"


def _bar(fraction: float, width: int) -> str:
    """Render *fraction* of *width* columns as a block bar."""
    fraction = max(0.0, min(1.0, fraction))
    cells = fraction * width
    whole = int(cells)
    text = _BAR * whole
    if cells - whole >= 0.5 and whole < width:
        text += _HALF
    return text


def bar_chart(title: str, rows: Mapping[str, float],
              width: int = 40, percent: bool = True,
              log_scale: bool = False,
              log_floor: float = 1e-4) -> str:
    """One bar per row label.

    ``log_scale`` maps values onto log10 between *log_floor* and the
    maximum — how the paper plots Figures 6 and 9.
    """
    if not rows:
        return f"{title}\n(no data)"
    label_width = max(len(label) for label in rows) + 2
    peak = max(max(rows.values()), log_floor)
    lines = [title]

    def scale(value: float) -> float:
        if log_scale:
            if value <= log_floor:
                return 0.0
            span = math.log10(peak / log_floor)
            if span <= 0:
                return 1.0
            return math.log10(value / log_floor) / span
        return value / peak if peak else 0.0

    for label, value in rows.items():
        shown = f"{100 * value:7.2f}%" if percent else f"{value:9.3f}"
        lines.append(f"  {label.ljust(label_width)}{shown}  "
                     f"{_bar(scale(value), width)}")
    if log_scale:
        lines.append(f"  (log scale, floor {100 * log_floor:.2f}%)"
                     if percent else f"  (log scale, floor {log_floor})")
    return "\n".join(lines)


def grouped_bar_chart(title: str,
                      rows: Mapping[str, Mapping[str, float]],
                      width: int = 36, percent: bool = True,
                      log_scale: bool = False) -> str:
    """Paper-style grouped chart: for each x label (benchmark), one bar
    per series (scheme)."""
    if not rows:
        return f"{title}\n(no data)"
    blocks = [title]
    flat = [value for cells in rows.values() for value in cells.values()]
    peak = max(flat) if flat else 1.0
    for x_label, cells in rows.items():
        blocks.append(f"{x_label}:")
        sub = bar_chart("", cells, width=width, percent=percent,
                        log_scale=log_scale)
        blocks.append("\n".join(sub.splitlines()[1:]))
    return "\n".join(blocks)


def sparkline(values: Sequence[float], buckets: str = " ▁▂▃▄▅▆▇█") -> str:
    """Compact one-line profile (used for the Figure 6 per-bit curves)."""
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return buckets[0] * len(values)
    steps = len(buckets) - 1
    return "".join(
        buckets[min(steps, int(round(steps * value / peak)))]
        for value in values)


def log_sparkline(values: Sequence[float], floor: float = 1e-4) -> str:
    """Sparkline on a log scale — Figure 6's log-Y per-bit profile."""
    scaled = []
    peak = max(max(values, default=floor), floor)
    span = math.log10(peak / floor) or 1.0
    for value in values:
        if value <= floor:
            scaled.append(0.0)
        else:
            scaled.append(math.log10(value / floor) / span)
    return sparkline(scaled)


__all__ = ["bar_chart", "grouped_bar_chart", "sparkline", "log_sparkline"]
