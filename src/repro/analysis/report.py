"""EXPERIMENTS.md builder: paper-vs-measured, generated from stored results.

``build_experiments_md`` reads the JSON payloads the benchmark suite
persists under ``benchmarks/results/`` and composes the full
paper-vs-measured report: for every table/figure it embeds the measured
series, states the paper's headline numbers, and machine-checks the shape
claims (orderings and rough factors) that the reproduction is supposed to
preserve. Regenerate with::

    python -m repro.cli report            # or: repro report
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..harness.store import ResultStore


@dataclass(frozen=True)
class ShapeClaim:
    """One checkable claim about a figure's shape."""

    description: str
    check: Callable[[dict], bool]

    def verdict(self, payload: dict) -> str:
        try:
            ok = self.check(payload)
        except (KeyError, TypeError, ZeroDivisionError):
            return f"- ? {self.description} (data missing)"
        return f"- {'PASS' if ok else 'MISS'}: {self.description}"


def _mean(payload: dict, table: str = "rows") -> dict:
    return payload[table]["MEAN"]


#: The paper's headline numbers, quoted from the abstract and Section 5.
PAPER_HEADLINES: Dict[str, str] = {
    "fig6": ("Most bit positions change in <1% of values; the changing "
             "positions concentrate at the low-order end; ~3 bits change "
             "per 64-bit write on average."),
    "fig7": "~85% of injected faults masked, ~5% noisy, ~10% SDC.",
    "fig8": ("PBFS: ~30% coverage at near-zero FP. PBFS-biased: coverage "
             "comparable to FaultHound but ~8% FP. FaultHound: ~75% "
             "coverage at ~3% FP."),
    "fig9": ("PBFS ~1%, PBFS-biased ~97%, FaultHound ~10% performance "
             "degradation; SRT-iso slightly above FaultHound; commercial "
             "workloads hide recovery under cache misses."),
    "fig10": ("FaultHound-backend ~10%, FaultHound ~25%, SRT-iso ~56% "
              "energy overhead — redundancy's energy cannot hide."),
    "fig11": ("Covered faults dominate; second-level masking costs "
              "little; completed/committed-register faults are a modest "
              "slice; uncovered rename and ~10% non-triggering faults "
              "make up the rest."),
    "fig12": ("Clustering and the second-level filter each cut the FP "
              "rate; replay dramatically beats full rollback; the LSQ "
              "check buys significant coverage."),
}

#: Machine-checkable shape claims per figure.
SHAPE_CLAIMS: Dict[str, List[ShapeClaim]] = {
    "fig7": [
        ShapeClaim("a large majority of faults are masked (>70%)",
                   lambda p: _mean(p)["masked"] > 0.70),
        ShapeClaim("SDC is a small minority (<25%)",
                   lambda p: _mean(p)["sdc"] < 0.25),
    ],
    "fig8": [
        ShapeClaim("sticky PBFS is near-zero FP (<1%)",
                   lambda p: p["fp_rate"]["MEAN"]["pbfs"] < 0.01),
        ShapeClaim("FaultHound cuts PBFS-biased's FP rate substantially",
                   lambda p: p["fp_rate"]["MEAN"]["pbfs-biased"]
                   > 1.5 * p["fp_rate"]["MEAN"]["faulthound"]),
        ShapeClaim("FaultHound out-covers sticky PBFS",
                   lambda p: p["coverage"]["MEAN"]["faulthound"]
                   > p["coverage"]["MEAN"]["pbfs"]),
        ShapeClaim("PBFS-biased's coverage is FaultHound-class",
                   lambda p: abs(p["coverage"]["MEAN"]["pbfs-biased"]
                                 - p["coverage"]["MEAN"]["faulthound"])
                   < 0.20),
    ],
    "fig9": [
        ShapeClaim("sticky PBFS costs almost nothing (<10%)",
                   lambda p: _mean(p)["pbfs"] < 0.10),
        ShapeClaim("PBFS-biased costs a multiple of FaultHound",
                   lambda p: _mean(p)["pbfs-biased"]
                   > 2 * _mean(p)["faulthound"]),
        ShapeClaim("FaultHound stays moderate (<30%)",
                   lambda p: _mean(p)["faulthound"] < 0.30),
        ShapeClaim("SRT-iso pays real resource pressure (>0)",
                   lambda p: _mean(p)["srt-iso"] > 0.0),
    ],
    "fig10": [
        ShapeClaim("backend-only < full FaultHound < SRT-iso",
                   lambda p: _mean(p)["fh-backend"]
                   < _mean(p)["faulthound"] < _mean(p)["srt-iso"]),
    ],
    "fig11": [
        ShapeClaim("the covered slice dominates",
                   lambda p: _mean(p)["covered"]
                   == max(_mean(p).values())),
        ShapeClaim("second-level masking costs little (<25%)",
                   lambda p: _mean(p)["second_level_masked"] < 0.25),
    ],
    "fig12": [
        ShapeClaim("clustering + second-level reduce the FP rate",
                   lambda p: p["left"]["FH-BE-nocluster-no2level"]["fp_rate"]
                   > p["left"]["FH-BE"]["fp_rate"]),
        ShapeClaim("replay beats full rollback on performance",
                   lambda p: p["middle"]["FH-BE-full-rollback"]
                   ["perf_overhead"] > p["middle"]["FH-BE"]
                   ["perf_overhead"]),
        ShapeClaim("the LSQ check does not lose coverage",
                   lambda p: p["right"]["FH-BE"]["coverage"]
                   >= p["right"]["FH-BE-noLSQ"]["coverage"]),
    ],
}

#: Shipped paper-vs-measured commentary, one note per figure. Kept in code
#: so `repro report` regenerates EXPERIMENTS.md reproducibly.
DEFAULT_COMMENTARY: Dict[str, str] = {
    "table1": (
        "**Substitution.** The real suites (SPEC2006 binaries, Apache/"
        "SPECjbb/OLTP setups, SPLASH-2 inputs) need a SPARC/Solaris stack "
        "we do not have; each benchmark is a synthetic generator whose "
        "value-locality statistics (address patterns, store-value "
        "bit-change profile, branchiness, cache footprint) match the "
        "paper's description of that workload class. DESIGN.md §1 "
        "documents the substitution; Figure 6 below shows the resulting "
        "streams have the paper's locality structure."),
    "table2": (
        "Configuration matches the paper's Table 2, with two documented "
        "deviations: one core is modelled instead of eight (fault "
        "injection and all mechanisms are per-core), and the unified "
        "physical register file gets the paper's INT+FP total (160+64)."),
    "fig6": (
        "Measured: the vast majority of bit positions change in <1% of "
        "consecutive values for all three checked streams, the busy "
        "positions sit at the low-order end (see the log sparklines), and "
        "store values average a few changed bits per 64-bit write — the "
        "paper's ~3-bit figure falls inside our per-benchmark range."),
    "fig7": (
        "Paper: ~85/5/10 masked/noisy/SDC. Measured means land within a "
        "few points of each band. Masking comes from the same physics — "
        "most values die young (bypass-consumed temporaries), persistent "
        "state self-masks through wrap masks — and noisy faults are "
        "address-forming corruptions that trip the memory-fault check."),
    "fig8": (
        "Paper: PBFS 30% coverage at ~0 FP; PBFS-biased ~75-80% coverage "
        "at 8% FP; FaultHound ~75% at 3%. Measured reproduces the FP "
        "ordering and magnitudes almost exactly (PBFS near zero, "
        "PBFS-biased ~7-8%, FaultHound ~3%) and the coverage ordering "
        "(FaultHound ≥ PBFS-biased > PBFS). The main quantitative gap is "
        "PBFS's coverage: our sticky counters retain more arming than the "
        "paper's because even outlier-laden synthetic streams are cleaner "
        "than real traces, so PBFS lands nearer 55-65% than 30%. The "
        "mechanism behind the gap is reproduced (one-off value changes "
        "kill sticky counters until the flash clear while biased machines "
        "re-arm in two quiet observations) — see the PBFS clear-interval "
        "ablation."),
    "fig9": (
        "Paper (log scale): PBFS ~1%, PBFS-biased ~97%, FaultHound ~10%, "
        "SRT-iso slightly above FaultHound, with commercial workloads "
        "hiding recovery under cache misses. Measured preserves every "
        "ordering and the crossover (commercial PBFS-biased degradation "
        "below compute-bound suites'). PBFS-biased lands at tens of "
        "percent rather than ~97% — our rollback penalty (~60-120 "
        "squashed ops, 12-cycle redirect) is milder than the authors' "
        "100-200-instruction figure, and our suppress-after-rollback "
        "window (their \"re-computed values are deemed final\" rule) "
        "caps back-to-back rollbacks. One inversion: SRT-iso lands "
        "slightly *below* FaultHound here (the paper has it slightly "
        "above) because our SMT baseline leaves enough issue slack for "
        "ideal trailing threads to hide in, while FaultHound's rename-"
        "squash rollbacks cost more on our shorter pipeline."),
    "fig10": (
        "Paper: FH-backend ~10%, FaultHound ~25%, SRT-iso ~56%. Measured "
        "keeps the ordering with FH-backend cheaper than the paper's "
        "(replay re-executions largely fill idle issue slots) and "
        "SRT-iso's redundancy unable to hide its energy even where its "
        "latency hides (compare its Figure 9 row)."),
    "fig11": (
        "Measured means: covered dominates (~3/4 of SDC faults), the "
        "second-level filter costs almost nothing, completed/committed-"
        "register faults are a small slice (bypass-style consumption "
        "masks the register file), and uncovered rename plus "
        "non-triggering faults (~10% each) make up the remainder — the "
        "paper's Figure 11 structure, including its ~10% non-triggering "
        "figure."),
    "fig12": (
        "The isolations reproduce with one caveat. Left: the combined "
        "mechanisms cut the FP rate ~3x, but in our synthetic streams the "
        "second-level filter does almost all of that work — clustering's "
        "isolated FP benefit (clear in the paper) barely registers, "
        "because each generated loop has few static load/store sites, so "
        "the PC-indexed ablation suffers little of the real-code "
        "spreading the paper describes. Middle: predecessor replay is "
        "dramatically cheaper than rolling back on every trigger (the "
        "paper's ~10x gap). Right: the commit-time LSQ check contributes "
        "a double-digit coverage slice."),
}

_ORDER = ["table1", "table2", "fig6", "fig7", "fig8", "fig9", "fig10",
          "fig11", "fig12"]

_TITLES = {
    "table1": "Table 1 — benchmarks",
    "table2": "Table 2 — hardware parameters",
    "fig6": "Figure 6 — percent change in bit positions",
    "fig7": "Figure 7 — fault characterisation",
    "fig8": "Figure 8 — SDC coverage and false-positive rates",
    "fig9": "Figure 9 — performance degradation",
    "fig10": "Figure 10 — energy overhead",
    "fig11": "Figure 11 — SDC fault breakdown",
    "fig12": "Figure 12 — isolating the back-end mechanisms",
}

_PREAMBLE = """# EXPERIMENTS — paper vs. measured

Every table and figure of the paper's evaluation, regenerated by
`pytest benchmarks/ --benchmark-only` and compared against the paper's
reported numbers. Measured series live in `benchmarks/results/`; this
document is rebuilt from them by `repro report`.

**Scale.** The paper simulates 50M-instruction SimPoints on GEMS/Opal and
injects 15,000 faults per run. The shipped results use the laptop-scale
default (tens of thousands of instructions per benchmark, ~120 faults per
campaign), so per-benchmark coverage figures carry small-sample noise —
pooled Wilson 95% intervals are reported for the coverage headline.
Absolute magnitudes are not expected to transfer from the authors'
testbed; the *shapes* — who wins, by roughly what factor, where the
crossovers fall — are the reproduction target, and each figure below ends
with its machine-checked shape claims.

**Scaling & parallel execution.** `REPRO_SCALE` picks the scale
(`quick`/`default`/`full`); `REPRO_JOBS` (or `repro figure --jobs N`)
fans independent runs, campaigns and fault windows across a process
pool, bit-for-bit identical to serial because every worker re-derives
its state from the explicit seeds. Finished artefacts persist in
`benchmarks/.cache/<kind>/<digest>.pkl`, keyed by the configs plus a
code-version salt over the package source, so reruns are incremental and
any simulator change invalidates the cache automatically (`REPRO_NO_CACHE=1`
or `--no-cache` forces recomputation). Parallel window workers start from
serialized golden-core checkpoints captured at chunk boundaries (and
persisted in the same cache), so repeated runs skip the golden prefix
entirely; and every run driver elides provably idle cycles (event-skip
fast-forward — 3.4× cycles/sec on the cache-miss-heavy profile,
`benchmarks/results/bench_fastforward.json`). See `docs/performance.md`
for both mechanisms and their bit-for-bit equivalence guarantees.

**Observability.** Any campaign/figure command accepts `--emit-events
PATH` (`REPRO_EVENTS=PATH` for the benchmark suite) to stream a typed
JSONL event log — nested spans around every phase and figure step, cache
hits/misses, worker lifecycle, and one `fault_audit` record per injected
fault (site, filter trigger, recovery action, detection latency,
outcome). `repro report --events PATH` validates the log against the
schema, verifies the run manifest's config digest, and prints a summary;
`--profile` adds a cProfile dump. Provenance manifests
(`*.manifest.json`) sit next to every cached artefact and recorded
figure. Campaigns run with `--run-dir` stream live telemetry too: a
typed metrics registry (zero-cost when off, bit-for-bit identical
results when on — `benchmarks/results/bench_metrics_overhead.json`)
and a second-process monitor behind `repro top` / `repro status --json`
/ `repro metrics export`, whose streamed aggregates equal the post-hoc
report's exactly. See `docs/observability.md`.

**Simulator validation.** Every number below rests on the simulator
being faithful, so the methodology includes self-checks: an invariant
sanitizer armed on the golden core of every campaign (one structural
check per run-window capture point) and an ISA-differential fuzz corpus
(`repro verify`, 200 fixed seeds in `tests/test_differential.py`)
diffing the out-of-order core against the golden interpreter at every
commit. See `docs/validation.md`.
"""


def render_text_for(store: ResultStore, name: str,
                    results_dir) -> Optional[str]:
    """Prefer the rendered .txt the benches wrote (it includes charts)."""
    import pathlib
    path = pathlib.Path(results_dir) / f"{name}.txt"
    if path.exists():
        return path.read_text().rstrip()
    if store.exists(name):
        payload = store.load(name)["payload"]
        return payload.get("text", "")
    return None


#: The abstract's headline numbers per scheme (coverage, FP, perf, energy).
PAPER_ABSTRACT = {
    "pbfs": {"coverage": 0.30, "fp_rate": 0.0, "perf": 0.01,
             "energy": None},
    "pbfs-biased": {"coverage": 0.75, "fp_rate": 0.08, "perf": 0.97,
                    "energy": None},
    "faulthound": {"coverage": 0.75, "fp_rate": 0.03, "perf": 0.10,
                   "energy": 0.25},
    "srt-iso": {"coverage": None, "fp_rate": None, "perf": 0.12,
                "energy": 0.56},
}


def headline_table(store: ResultStore) -> Optional[str]:
    """Synthesize the abstract's scheme comparison from the stored
    fig8/fig9/fig10 payloads (paper value in parentheses)."""
    if not (store.exists("fig8") and store.exists("fig9")
            and store.exists("fig10")):
        return None
    fig8 = store.load("fig8")["payload"]
    fig9 = store.load("fig9")["payload"]
    fig10 = store.load("fig10")["payload"]

    def cell(value, paper):
        if value is None:
            return "-"
        text = f"{100 * value:.1f}%"
        if paper is not None:
            text += f" ({100 * paper:.0f}%)"
        return text

    lines = ["| scheme | coverage | FP rate | perf overhead | "
             "energy overhead |",
             "|---|---|---|---|---|"]
    for scheme, paper in PAPER_ABSTRACT.items():
        coverage = fig8["coverage"]["MEAN"].get(scheme)
        fp = fig8["fp_rate"]["MEAN"].get(scheme)
        perf = fig9["rows"]["MEAN"].get(scheme)
        energy = fig10["rows"]["MEAN"].get(scheme)
        lines.append(
            f"| {scheme} | {cell(coverage, paper['coverage'])} "
            f"| {cell(fp, paper['fp_rate'])} "
            f"| {cell(perf, paper['perf'])} "
            f"| {cell(energy, paper['energy'])} |")
    lines.append("\nMeasured means with the paper's headline value in "
                 "parentheses; '-' where a figure does not report that "
                 "scheme.")
    return "\n".join(lines)


def build_experiments_md(results_dir,
                         commentary: Optional[Dict[str, str]] = None) -> str:
    """Compose the full EXPERIMENTS.md from a results directory."""
    store = ResultStore(results_dir)
    commentary = DEFAULT_COMMENTARY if commentary is None else commentary
    sections = [_PREAMBLE]
    headline = headline_table(store)
    if headline:
        sections.append("\n## Headline: the abstract's comparison\n")
        sections.append(headline + "\n")
    for name in _ORDER:
        text = render_text_for(store, name, results_dir)
        if text is None:
            continue
        sections.append(f"\n## {_TITLES.get(name, name)}\n")
        headline = PAPER_HEADLINES.get(name)
        if headline:
            sections.append(f"**Paper:** {headline}\n")
        sections.append("```\n" + text + "\n```\n")
        if name in SHAPE_CLAIMS and store.exists(name):
            payload = store.load(name)["payload"]
            sections.append("Shape claims:\n")
            for claim in SHAPE_CLAIMS[name]:
                sections.append(claim.verdict(payload))
            sections.append("")
        note = commentary.get(name)
        if note:
            sections.append(note + "\n")
    import pathlib
    known = set(store.names())
    known.update(p.stem for p in pathlib.Path(results_dir).glob("*.txt"))
    extra = sorted(n for n in known if n not in _ORDER)
    if extra:
        sections.append("\n## Additional ablations (paper prose claims)\n")
        sections.append(
            "Regenerated from the paper's in-text claims rather than its "
            "figures (see DESIGN.md §3 for the claim-to-bench map).\n")
        for name in extra:
            text = render_text_for(store, name, results_dir)
            if text:
                sections.append("```\n" + text + "\n```\n")
    return "\n".join(sections)


__all__ = ["ShapeClaim", "PAPER_HEADLINES", "SHAPE_CLAIMS",
           "build_experiments_md"]
