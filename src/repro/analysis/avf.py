"""Architectural vulnerability factor (AVF) estimation.

The paper's related work (Mukherjee et al. [16], SoftArch [34]) models how
many of a structure's bits are ACE — required for architecturally correct
execution — at any instant; a structure's AVF is that fraction averaged
over time, and `masked fraction ~ 1 - AVF` for uniform single-bit faults.

This estimator samples a live pipeline and produces occupancy-based AVF
upper bounds for the three structures the paper injects into (physical
register file, LSQ, rename table). It is deliberately simple — the point
is the cross-check: the fault-injection campaign's measured masked
fraction (Figure 7) should be *at least* ``1 - weighted AVF``, because
occupancy-based AVF over-approximates ACE-ness (a live register whose
consumers mask the faulty bit still counts as vulnerable here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..faults.model import SITE_PROPORTIONS, FaultSite
from ..pipeline.core import PipelineCore
from ..pipeline.uops import OpState


@dataclass
class AVFReport:
    """Per-structure AVF estimates (fractions in [0, 1])."""

    samples: int = 0
    regfile: float = 0.0
    lsq: float = 0.0
    rename: float = 0.0

    def weighted(self,
                 proportions: Optional[Dict[FaultSite, float]] = None
                 ) -> float:
        """Area-weighted overall AVF, using the paper's injection
        proportions by default."""
        proportions = proportions or SITE_PROPORTIONS
        return (proportions[FaultSite.REGFILE] * self.regfile
                + proportions[FaultSite.LSQ] * self.lsq
                + proportions[FaultSite.RENAME] * self.rename)

    def predicted_masked_floor(self) -> float:
        """A lower bound on the masked fraction implied by occupancy."""
        return 1.0 - self.weighted()

    def as_dict(self) -> Dict[str, float]:
        return {"regfile": self.regfile, "lsq": self.lsq,
                "rename": self.rename, "weighted": self.weighted()}


class AVFEstimator:
    """Samples a core's structures while it runs."""

    def __init__(self, core: PipelineCore):
        self.core = core
        self._samples = 0
        self._acc = {"regfile": 0.0, "lsq": 0.0, "rename": 0.0}

    # ------------------------------------------------------------------
    def sample(self) -> None:
        """Take one occupancy sample (call between steps)."""
        core = self.core
        self._samples += 1

        # PRF: registers that hold architecturally reachable values —
        # committed mappings plus completed-but-uncommitted results. A
        # *pending* destination is not vulnerable: its writeback
        # overwrites any earlier flip.
        live = set()
        for thread in core.threads:
            for logical in range(1, 32):
                live.add(thread.committed_rat.get(logical))
            for op in thread.rob:
                if (op.phys_dest is not None
                        and op.state is OpState.COMPLETED):
                    live.add(op.phys_dest)
        self._acc["regfile"] += len(live) / core.prf.num_regs

        # LSQ: resident executed entries' address/value bits are ACE from
        # execution to commit; unresolved entries carry no payload yet.
        lsq_total = core.hw.lsq_size
        executed = sum(len(t.lsq.executed_entries()) for t in core.threads)
        self._acc["lsq"] += min(1.0, executed / lsq_total)

        # Rename table: a mapping is vulnerable while its logical register
        # is architecturally live; without liveness analysis every written
        # mapping counts (upper bound). Mappings still at their reset
        # values (thread never wrote the register) are excluded.
        vulnerable = 0
        total = 0
        for thread in core.threads:
            for logical in range(1, 32):
                total += 1
                if (thread.spec_rat.get(logical)
                        != thread.committed_rat.get(logical)):
                    vulnerable += 1
                elif any(op.inst.rd == logical and op.phys_dest is not None
                         for op in thread.rob):
                    vulnerable += 1
                else:
                    vulnerable += bool(
                        thread.committed_rat.get(logical)
                        != logical + 32 * thread.thread_id)
        self._acc["rename"] += vulnerable / max(1, total)

    def run(self, cycles: int, sample_every: int = 5) -> AVFReport:
        """Drive the core for *cycles*, sampling periodically."""
        for i in range(cycles):
            if self.core.all_halted:
                break
            self.core.step()
            if i % sample_every == 0:
                self.sample()
        return self.report()

    def report(self) -> AVFReport:
        if self._samples == 0:
            return AVFReport()
        return AVFReport(
            samples=self._samples,
            regfile=self._acc["regfile"] / self._samples,
            lsq=self._acc["lsq"] / self._samples,
            rename=self._acc["rename"] / self._samples)


__all__ = ["AVFEstimator", "AVFReport"]
