"""Plain-text rendering of paper-style tables and bar-series."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def format_table(title: str, rows: Mapping[str, Mapping[str, float]],
                 percent: bool = False, decimals: int = 3) -> str:
    """Render ``rows`` (row label -> {column -> value}) as aligned text.

    With ``percent=True`` values are shown as percentages, the way the
    paper's Y axes label coverage, false-positive rates and overheads.
    """
    if not rows:
        return f"{title}\n(no data)"
    columns = list(next(iter(rows.values())).keys())
    label_width = max(len(title), *(len(r) for r in rows)) + 2

    def fmt(value) -> str:
        if isinstance(value, str):
            return value
        if percent:
            return f"{100.0 * value:.{max(0, decimals - 2)}f}%"
        return f"{value:.{decimals}f}"

    col_width = max(10, *(len(c) for c in columns)) + 2
    lines = [title,
             "-" * (label_width + col_width * len(columns))]
    header = " " * label_width + "".join(c.rjust(col_width) for c in columns)
    lines.append(header)
    for label, cells in rows.items():
        line = label.ljust(label_width) + "".join(
            fmt(cells.get(c, 0.0)).rjust(col_width) for c in columns)
        lines.append(line)
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Sequence[float]],
                  x_labels: Sequence[str] | None = None,
                  percent: bool = False) -> str:
    """Render named series (one per scheme) over an x-axis (benchmarks)."""
    rows: Dict[str, Dict[str, float]] = {}
    for name, values in series.items():
        labels = x_labels or [str(i) for i in range(len(values))]
        rows[name] = dict(zip(labels, values))
    return format_table(title, rows, percent=percent)


__all__ = ["format_table", "format_series"]
