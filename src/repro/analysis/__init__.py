"""Analysis utilities: locality characterisation, metrics, reporting."""

from .locality import bit_change_fractions, collect_mem_streams
from .metrics import fp_rate, perf_overhead, arithmetic_mean, geo_mean
from .tables import format_table, format_series

__all__ = [
    "bit_change_fractions",
    "collect_mem_streams",
    "fp_rate",
    "perf_overhead",
    "arithmetic_mean",
    "geo_mean",
    "format_table",
    "format_series",
]
