"""Analysis utilities: locality characterisation, metrics, reporting.

The audit-trail aggregations (recovery mix, detection-latency histogram)
live in :mod:`repro.obs.audit` but are analysis views, so they are
re-exported here.
"""

from ..obs.audit import (aggregates_from_events, audit_aggregates,
                         audit_records, detection_latency_histogram,
                         recovery_mix)
from .locality import bit_change_fractions, collect_mem_streams
from .metrics import fp_rate, perf_overhead, arithmetic_mean, geo_mean
from .tables import format_table, format_series

__all__ = [
    "bit_change_fractions",
    "collect_mem_streams",
    "fp_rate",
    "perf_overhead",
    "arithmetic_mean",
    "geo_mean",
    "format_table",
    "format_series",
    "aggregates_from_events",
    "audit_aggregates",
    "audit_records",
    "detection_latency_histogram",
    "recovery_mix",
]
