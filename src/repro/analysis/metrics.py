"""Scalar metrics for the evaluation figures."""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..core.actions import CheckAction
from ..core.screening import ScreeningUnit


def perf_overhead(scheme_cycles: int, baseline_cycles: int) -> float:
    """Fractional performance degradation (0.10 == 10% slower)."""
    if baseline_cycles <= 0:
        return 0.0
    return scheme_cycles / baseline_cycles - 1.0


def fp_rate(unit: ScreeningUnit, committed: int) -> float:
    """False-positive rate as a fraction of all committed instructions
    (the paper's denominator): the rate of recovery-triggering actions in
    a fault-free run."""
    if committed <= 0:
        return 0.0
    actions = (unit.count(CheckAction.REPLAY)
               + unit.count(CheckAction.SQUASH)
               + unit.count(CheckAction.SINGLETON))
    return actions / committed


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean of (1 + x) ratios minus 1; standard for overheads."""
    if not values:
        return 0.0
    log_sum = sum(math.log(max(1e-9, 1.0 + v)) for v in values)
    return math.exp(log_sum / len(values)) - 1.0


__all__ = ["perf_overhead", "fp_rate", "arithmetic_mean", "geo_mean"]
